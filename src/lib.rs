//! Facade crate for the reproduction of *Hardness of Exact Distance Queries
//! in Sparse Graphs Through Hub Labeling* (Kosowski, Uznański, Viennot;
//! PODC 2019).
//!
//! Re-exports every workspace crate under one roof so examples,
//! integration tests and downstream users can depend on a single package:
//!
//! * [`graph`] — CSR graph substrate, traversal, generators, transforms;
//! * [`core`] — hub labelings and all constructions (PLL, greedy,
//!   random-threshold, the Theorem 4.1 RS-based algorithm, centroid trees);
//! * [`build`] — parallel, ordering-aware PLL construction for
//!   million-vertex graphs (bit-identical to sequential PLL);
//! * [`rs`] — Behrend sets, Ruzsa–Szemerédi graphs, induced matchings;
//! * [`lowerbound`] — the `H_{b,ℓ}` / `G_{b,ℓ}` gadgets of Theorem 2.1,
//!   Lemma 2.2 verification and hub-size accounting;
//! * [`sumindex`] — the Sum-Index problem and the Theorem 1.6 reduction;
//! * [`labeling`] — bit-level distance labeling schemes;
//! * [`oracles`] — ALT and Contraction Hierarchies baselines;
//! * [`server`] — binary label store, worker-pool query engine, metrics;
//! * [`net`] — the HLNP TCP wire protocol, serving daemon and client.
//!
//! # Quickstart
//!
//! ```
//! use hub_labeling::graph::generators;
//! use hub_labeling::core::pll::PrunedLandmarkLabeling;
//!
//! let g = generators::grid(4, 4);
//! let labels = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
//! assert_eq!(labels.query(0, 15), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hl_build as build;
pub use hl_core as core;
pub use hl_graph as graph;
pub use hl_labeling as labeling;
pub use hl_lowerbound as lowerbound;
pub use hl_net as net;
pub use hl_oracles as oracles;
pub use hl_rs as rs;
pub use hl_server as server;
pub use hl_sumindex as sumindex;
