//! [`ServedLabeling`] — the arena a [`crate::engine::QueryEngine`] epoch
//! mounts: either the flat CSR ([`FlatLabeling`]) or the byte-tuned
//! compact form ([`CompactLabeling`]).
//!
//! The flat arena answers queries from borrowed slices; the compact one
//! decodes hub deltas on the fly, so it cannot implement the slice-based
//! [`hl_core::LabelingView`]. This enum is the serving-layer seam: one
//! dispatch at the epoch boundary, monomorphized query loops underneath,
//! and every construction path (`impl Into<ServedLabeling>`) keeps
//! accepting the nested [`HubLabeling`] and the flat arena unchanged.

use hl_core::{CompactLabeling, FlatLabeling, HubLabeling};
use hl_graph::{Distance, NodeId};

/// One of the two query-time arenas, behind a single mountable type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServedLabeling {
    /// The canonical flat CSR arena (12 bytes per entry).
    Flat(FlatLabeling),
    /// The compact arena: delta-coded hubs, narrow distances (4–8 bytes
    /// per entry), decoded on the fly inside the merge-join.
    Compact(CompactLabeling),
}

impl ServedLabeling {
    /// Which arena is mounted, for stats output: `"flat"` or `"compact"`.
    pub fn kind(&self) -> &'static str {
        match self {
            ServedLabeling::Flat(_) => "flat",
            ServedLabeling::Compact(_) => "compact",
        }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        match self {
            ServedLabeling::Flat(l) => l.num_nodes(),
            ServedLabeling::Compact(l) => l.num_nodes(),
        }
    }

    /// Total `(hub, distance)` entries, `Σ_v |S_v|`.
    pub fn num_entries(&self) -> usize {
        match self {
            ServedLabeling::Flat(l) => l.num_entries(),
            ServedLabeling::Compact(l) => l.num_entries(),
        }
    }

    /// Exact heap footprint of the mounted arena, in bytes.
    pub fn heap_bytes(&self) -> usize {
        match self {
            ServedLabeling::Flat(l) => l.heap_bytes(),
            ServedLabeling::Compact(l) => l.heap_bytes(),
        }
    }

    /// Average hubs per vertex, `Σ_v |S_v| / n`.
    pub fn average_hubs(&self) -> f64 {
        match self {
            ServedLabeling::Flat(l) => l.average_hubs(),
            ServedLabeling::Compact(l) => l.average_hubs(),
        }
    }

    /// Largest label size.
    pub fn max_hubs(&self) -> usize {
        match self {
            ServedLabeling::Flat(l) => l.max_hubs(),
            ServedLabeling::Compact(l) => l.max_hubs(),
        }
    }

    /// Answers the distance query `u, v`; [`hl_graph::INFINITY`] when the
    /// labels share no hub (or every common-hub sum saturated).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range (the engine validates first).
    pub fn query(&self, u: NodeId, v: NodeId) -> Distance {
        match self {
            ServedLabeling::Flat(l) => l.query(u, v),
            ServedLabeling::Compact(l) => l.query(u, v),
        }
    }

    /// Like [`ServedLabeling::query`] but also reports the hub realizing
    /// the minimum.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn query_with_witness(&self, u: NodeId, v: NodeId) -> Option<(Distance, NodeId)> {
        match self {
            ServedLabeling::Flat(l) => l.query_with_witness(u, v),
            ServedLabeling::Compact(l) => l.query_with_witness(u, v),
        }
    }

    /// The label of vertex `v` as owned parallel arrays — what the wire
    /// layer ships for router-side merge joins. Decoded for the compact
    /// arena, copied for the flat one.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_of(&self, v: NodeId) -> (Vec<NodeId>, Vec<Distance>) {
        match self {
            ServedLabeling::Flat(l) => (l.hubs_of(v).to_vec(), l.dists_of(v).to_vec()),
            ServedLabeling::Compact(l) => l.label_of(v),
        }
    }

    /// The labeling in flat form — by move for [`ServedLabeling::Flat`],
    /// decoded for [`ServedLabeling::Compact`].
    pub fn into_flat(self) -> FlatLabeling {
        match self {
            ServedLabeling::Flat(l) => l,
            ServedLabeling::Compact(l) => l.to_flat(),
        }
    }
}

impl From<FlatLabeling> for ServedLabeling {
    fn from(l: FlatLabeling) -> Self {
        ServedLabeling::Flat(l)
    }
}

impl From<CompactLabeling> for ServedLabeling {
    fn from(l: CompactLabeling) -> Self {
        ServedLabeling::Compact(l)
    }
}

impl From<HubLabeling> for ServedLabeling {
    fn from(l: HubLabeling) -> Self {
        ServedLabeling::Flat(FlatLabeling::from(l))
    }
}

impl From<&HubLabeling> for ServedLabeling {
    fn from(l: &HubLabeling) -> Self {
        ServedLabeling::Flat(FlatLabeling::from(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    #[test]
    fn both_arenas_agree_through_the_seam() {
        let g = generators::grid(5, 5);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let flat = FlatLabeling::from(&hl);
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        let served_f = ServedLabeling::from(flat.clone());
        let served_c = ServedLabeling::from(compact);
        assert_eq!(served_f.kind(), "flat");
        assert_eq!(served_c.kind(), "compact");
        assert_eq!(served_f.num_nodes(), served_c.num_nodes());
        assert_eq!(served_f.num_entries(), served_c.num_entries());
        assert!(served_c.heap_bytes() < served_f.heap_bytes());
        for u in 0..25 {
            for v in 0..25 {
                assert_eq!(served_f.query(u, v), served_c.query(u, v));
                assert_eq!(
                    served_f.query_with_witness(u, v),
                    served_c.query_with_witness(u, v)
                );
            }
            assert_eq!(served_f.label_of(u), served_c.label_of(u));
        }
        // Nested input mounts as flat; into_flat round-trips both.
        assert_eq!(ServedLabeling::from(hl).into_flat(), flat);
        assert_eq!(served_c.into_flat(), flat);
    }
}
