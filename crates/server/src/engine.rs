//! The query engine: a fixed-size worker pool answering distance queries
//! from a decoded, read-only labeling shared across threads.
//!
//! Labels are decoded from the store once at construction — into a
//! [`ServedLabeling`]: either the canonical [`hl_core::FlatLabeling`] CSR
//! arena or the byte-tuned [`hl_core::CompactLabeling`] form.
//! The arena (plus its LRU cache) lives inside an immutable **epoch**
//! behind a versioned `Arc` cell: every query snapshots the current epoch
//! with one brief read-lock clone and then runs lock-free against that
//! generation. [`QueryEngine::reload`] swaps in a new epoch atomically —
//! in-flight queries finish on the old one, which is freed when its last
//! snapshot drops. Construction-time code hands the engine a nested
//! [`hl_core::HubLabeling`] if that is what it has; the engine flattens
//! it once at startup.
//!
//! Two paths:
//!
//! - [`QueryEngine::query_batch`] shards a batch of pairs across the pool
//!   over an mpsc channel and reassembles results in input order. Batches
//!   bypass the cache: bulk workloads rarely repeat pairs, and the merge
//!   join is cheap enough that cache traffic would only add contention.
//!   Batches of at most [`SMALL_BATCH_INLINE`] pairs skip the pool
//!   entirely and are answered on the calling thread — for tiny batches
//!   the channel round-trip costs more than the queries themselves.
//! - [`QueryEngine::query`] answers one pair on the calling thread through
//!   the sharded LRU cache — the point-lookup path, where skew is common.
//!
//! Both paths record into the shared [`Metrics`].

use std::fmt;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use hl_graph::sync::{lock_unpoisoned, read_unpoisoned, write_unpoisoned};
use hl_graph::{Distance, NodeId};

use crate::cache::ShardedLruCache;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::served::ServedLabeling;
use crate::store::{LabelStore, StoreError};

/// Default number of entries the single-query cache holds.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// Largest batch answered inline on the calling thread instead of being
/// sharded across the worker pool (the mpsc round-trip dominates below
/// this; `bench_server` measures the crossover).
pub const SMALL_BATCH_INLINE: usize = 4;

/// Errors surfaced by the serving paths.
#[derive(Debug)]
pub enum EngineError {
    /// A query named a vertex outside the labeling.
    NodeOutOfRange { node: NodeId, num_nodes: usize },
    /// The worker pool is gone (the engine is mid-drop).
    PoolShutdown,
    /// The OS refused to start a worker thread at construction.
    WorkerSpawn(std::io::Error),
    /// The backing label store failed to decode.
    Store(StoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for labeling with {num_nodes} nodes"
                )
            }
            EngineError::PoolShutdown => write!(f, "worker pool is shut down"),
            EngineError::WorkerSpawn(e) => write!(f, "failed to spawn worker thread: {e}"),
            EngineError::Store(e) => write!(f, "label store error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::WorkerSpawn(e) => Some(e),
            EngineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// One immutable generation of served data: the arena plus its own LRU
/// cache. The cache lives *inside* the epoch so a reload can never serve
/// a distance cached from a different store — swapping the epoch swaps
/// the cache with it, atomically.
struct Epoch {
    /// Monotonically increasing generation number, starting at 0.
    serial: u64,
    labeling: ServedLabeling,
    cache: ShardedLruCache,
}

/// State shared between the engine handle and its workers. Queries
/// snapshot the current epoch `Arc` (one brief read-lock clone) and then
/// run lock-free against that immutable generation; a concurrent
/// [`QueryEngine::reload`] write-locks only for the pointer swap.
/// In-flight queries keep the old epoch alive through their clone, and
/// the old arena + cache are freed when the last such clone drops.
struct Shared {
    epoch: RwLock<Arc<Epoch>>,
    metrics: Metrics,
    cache_capacity: usize,
    cache_shards: usize,
}

impl Shared {
    fn snapshot(&self) -> Arc<Epoch> {
        Arc::clone(&read_unpoisoned(&self.epoch))
    }
}

struct BatchJob {
    pairs: Vec<(NodeId, NodeId)>,
    /// Index of this shard's first pair within the original batch.
    offset: usize,
    /// The generation this batch was validated against: every shard of a
    /// batch answers from the same epoch even if a reload lands mid-batch.
    epoch: Arc<Epoch>,
    reply: Sender<(usize, Vec<Distance>)>,
}

/// A multi-threaded distance-query server over one immutable labeling.
pub struct QueryEngine {
    shared: Arc<Shared>,
    /// `Some` while serving; taken and dropped on shutdown so workers see
    /// a closed channel and exit their receive loops.
    sender: Mutex<Option<Sender<BatchJob>>>,
    workers: Vec<JoinHandle<()>>,
    num_workers: usize,
}

impl QueryEngine {
    /// Decodes every label out of `store` — straight into the flat arena,
    /// with no intermediate per-vertex allocations — and starts
    /// `num_workers` worker threads (at least one) with the default cache
    /// size.
    pub fn from_store(store: &LabelStore, num_workers: usize) -> Result<Self, EngineError> {
        Self::new(store.to_flat()?, num_workers)
    }

    /// Starts an engine over an already-decoded labeling. Accepts either
    /// query-time arena (the flat CSR or the compact form) or anything
    /// convertible into one — a nested [`hl_core::HubLabeling`] is
    /// flattened once, here.
    pub fn new(
        labeling: impl Into<ServedLabeling>,
        num_workers: usize,
    ) -> Result<Self, EngineError> {
        Self::with_cache_capacity(labeling, num_workers, DEFAULT_CACHE_CAPACITY)
    }

    /// Starts an engine with an explicit single-query cache capacity.
    ///
    /// Fails with [`EngineError::WorkerSpawn`] if the OS cannot start a
    /// worker thread; any workers already started are reaped first.
    pub fn with_cache_capacity(
        labeling: impl Into<ServedLabeling>,
        num_workers: usize,
        cache_capacity: usize,
    ) -> Result<Self, EngineError> {
        let num_workers = num_workers.max(1);
        let cache_shards = num_workers.max(4);
        let shared = Arc::new(Shared {
            epoch: RwLock::new(Arc::new(Epoch {
                serial: 0,
                labeling: labeling.into(),
                cache: ShardedLruCache::new(cache_capacity, cache_shards),
            })),
            metrics: Metrics::new(),
            cache_capacity,
            cache_shards,
        });
        let (tx, rx) = channel::<BatchJob>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(num_workers);
        for i in 0..num_workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let spawned = std::thread::Builder::new()
                .name(format!("hubserve-worker-{i}"))
                .spawn(move || worker_loop(shared, rx));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Close the channel so the workers that did start see
                    // a disconnect and exit, then reap them before failing.
                    drop(tx);
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(EngineError::WorkerSpawn(e));
                }
            }
        }
        Ok(QueryEngine {
            shared,
            sender: Mutex::new(Some(tx)),
            workers,
            num_workers,
        })
    }

    /// Number of worker threads in the pool.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of vertices the engine currently serves.
    pub fn num_nodes(&self) -> usize {
        self.shared.snapshot().labeling.num_nodes()
    }

    /// Total `(hub, distance)` entries in the served arena, `Σ_v |S_v|`.
    pub fn num_entries(&self) -> usize {
        self.shared.snapshot().labeling.num_entries()
    }

    /// Heap footprint of the served arena, in bytes — exact for both
    /// arena forms.
    pub fn heap_bytes(&self) -> usize {
        self.shared.snapshot().labeling.heap_bytes()
    }

    /// Which arena form the current epoch serves: `"flat"` or `"compact"`.
    pub fn arena_kind(&self) -> &'static str {
        self.shared.snapshot().labeling.kind()
    }

    /// Serial number of the epoch currently being served. Starts at 0 and
    /// increments on every successful [`QueryEngine::reload`].
    pub fn epoch(&self) -> u64 {
        self.shared.snapshot().serial
    }

    /// Atomically replaces the served labeling with `labeling` and
    /// returns the new epoch serial. Queries that already snapshotted the
    /// old epoch finish against it — consistently, including whole
    /// batches — and the old arena and its cache are freed when the last
    /// such query retires. The new epoch starts with a fresh, empty cache
    /// so no stale distance can cross the swap.
    ///
    /// Validation is the *caller's* job: hand this only a store that
    /// already parsed cleanly (the serving daemon opens and validates the
    /// file before calling reload, so a corrupt file never evicts the
    /// healthy epoch).
    pub fn reload(&self, labeling: impl Into<ServedLabeling>) -> u64 {
        let labeling = labeling.into();
        let cache = ShardedLruCache::new(self.shared.cache_capacity, self.shared.cache_shards);
        let mut slot = write_unpoisoned(&self.shared.epoch);
        let serial = slot.serial + 1;
        *slot = Arc::new(Epoch {
            serial,
            labeling,
            cache,
        });
        serial
    }

    /// The label of vertex `v` in the current epoch, as owned parallel
    /// arrays — what the wire layer ships for router-side merge joins.
    pub fn label_of(&self, v: NodeId) -> Result<(Vec<NodeId>, Vec<Distance>), EngineError> {
        let epoch = self.shared.snapshot();
        check_node_in(&epoch, v)?;
        Ok(epoch.labeling.label_of(v))
    }

    /// Live metrics for this engine.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Convenience for [`Metrics::snapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Answers one query through the current epoch's LRU cache, on the
    /// calling thread.
    pub fn query(&self, u: NodeId, v: NodeId) -> Result<Distance, EngineError> {
        let epoch = self.shared.snapshot();
        check_node_in(&epoch, u)?;
        check_node_in(&epoch, v)?;
        let started = Instant::now();
        let key = ShardedLruCache::pair_key(u, v);
        let m = &self.shared.metrics;
        let d = match epoch.cache.get(key) {
            Some(d) => {
                m.cache_hits.fetch_add(1, Relaxed);
                d
            }
            None => {
                let d = epoch.labeling.query(u, v);
                epoch.cache.insert(key, d);
                m.cache_misses.fetch_add(1, Relaxed);
                d
            }
        };
        m.single_queries.fetch_add(1, Relaxed);
        m.latency.record(elapsed_ns(started));
        Ok(d)
    }

    /// Answers a batch of queries, sharded across the worker pool.
    /// Results come back in input order. The whole batch is validated
    /// before any work is dispatched, so an out-of-range pair costs
    /// nothing but the scan — and the epoch snapshotted for validation is
    /// the one every shard answers from, so a reload landing mid-batch
    /// cannot mix two stores in one result.
    pub fn query_batch(&self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<Distance>, EngineError> {
        let epoch = self.shared.snapshot();
        for &(u, v) in pairs {
            check_node_in(&epoch, u)?;
            check_node_in(&epoch, v)?;
        }
        let m = &self.shared.metrics;
        m.batches.fetch_add(1, Relaxed);
        if pairs.is_empty() {
            return Ok(Vec::new());
        }

        // Small-batch fast path: answer on the calling thread. The pool
        // exists to spread *work*, and a handful of merge joins is less
        // work than one channel send plus a reply-channel wakeup.
        if pairs.len() <= SMALL_BATCH_INLINE {
            let mut out = Vec::with_capacity(pairs.len());
            for &(u, v) in pairs {
                let started = Instant::now();
                out.push(epoch.labeling.query(u, v));
                m.latency.record(elapsed_ns(started));
            }
            m.batch_queries.fetch_add(pairs.len() as u64, Relaxed);
            return Ok(out);
        }

        let chunk = pairs.len().div_ceil(self.num_workers);
        let (reply_tx, reply_rx) = channel();
        let mut shards = 0;
        {
            let guard = lock_unpoisoned(&self.sender);
            let tx = guard.as_ref().ok_or(EngineError::PoolShutdown)?;
            for (i, part) in pairs.chunks(chunk).enumerate() {
                tx.send(BatchJob {
                    pairs: part.to_vec(),
                    offset: i * chunk,
                    epoch: Arc::clone(&epoch),
                    reply: reply_tx.clone(),
                })
                .map_err(|_| EngineError::PoolShutdown)?;
                shards += 1;
            }
        }
        drop(reply_tx);

        let mut out = vec![0 as Distance; pairs.len()];
        for _ in 0..shards {
            let (offset, distances) = reply_rx.recv().map_err(|_| EngineError::PoolShutdown)?;
            out[offset..offset + distances.len()].copy_from_slice(&distances);
        }
        Ok(out)
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        // Closing the channel wakes every worker out of `recv`.
        drop(lock_unpoisoned(&self.sender).take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn check_node_in(epoch: &Epoch, v: NodeId) -> Result<(), EngineError> {
    if (v as usize) < epoch.labeling.num_nodes() {
        Ok(())
    } else {
        Err(EngineError::NodeOutOfRange {
            node: v,
            num_nodes: epoch.labeling.num_nodes(),
        })
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<Receiver<BatchJob>>>) {
    loop {
        // Hold the receiver lock only while dequeuing, never while working.
        let job = match lock_unpoisoned(&rx).recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: engine dropped
        };
        let mut distances = Vec::with_capacity(job.pairs.len());
        for &(u, v) in &job.pairs {
            let started = Instant::now();
            // The job's pinned epoch, not the current one: the batch was
            // validated against it, and all shards must agree on a store.
            distances.push(job.epoch.labeling.query(u, v));
            shared.metrics.latency.record(elapsed_ns(started));
        }
        shared
            .metrics
            .batch_queries
            .fetch_add(job.pairs.len() as u64, Relaxed);
        // A dead reply receiver just means the caller gave up; drop the result.
        let _ = job.reply.send((job.offset, distances));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;
    use hl_graph::INFINITY;

    fn engine(workers: usize) -> (hl_graph::Graph, QueryEngine) {
        let g = generators::grid(6, 7);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        (g, QueryEngine::new(hl, workers).unwrap())
    }

    #[test]
    fn batch_matches_bfs() {
        let (g, eng) = engine(3);
        let n = g.num_nodes() as NodeId;
        let pairs: Vec<(NodeId, NodeId)> =
            (0..n).flat_map(|u| (0..n).map(move |v| (u, v))).collect();
        let got = eng.query_batch(&pairs).unwrap();
        let mut at = 0;
        for u in 0..n {
            let dist = hl_graph::bfs::bfs_distances(&g, u);
            for v in 0..n {
                assert_eq!(got[at], dist[v as usize], "d({u},{v})");
                at += 1;
            }
        }
        assert_eq!(eng.snapshot().batch_queries, pairs.len() as u64);
    }

    #[test]
    fn single_path_uses_cache() {
        let (_, eng) = engine(2);
        let a = eng.query(0, 5).unwrap();
        let b = eng.query(5, 0).unwrap(); // symmetric pair shares the entry
        assert_eq!(a, b);
        let s = eng.snapshot();
        assert_eq!(s.single_queries, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn out_of_range_is_typed_error() {
        let (_, eng) = engine(1);
        let n = eng.num_nodes() as NodeId;
        assert!(matches!(
            eng.query(0, n),
            Err(EngineError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            eng.query_batch(&[(0, 1), (n + 3, 0)]),
            Err(EngineError::NodeOutOfRange { .. })
        ));
        // The failed batch must not have dispatched partial work.
        assert_eq!(eng.snapshot().batch_queries, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, eng) = engine(2);
        assert_eq!(eng.query_batch(&[]).unwrap(), Vec::<Distance>::new());
    }

    #[test]
    fn batch_smaller_than_pool() {
        let (g, eng) = engine(8);
        let d = eng.query_batch(&[(0, 1)]).unwrap();
        assert_eq!(d, vec![hl_graph::bfs::bfs_distances(&g, 0)[1]]);
    }

    #[test]
    fn small_batches_take_the_inline_path_and_still_count() {
        let (g, eng) = engine(4);
        let dist0 = hl_graph::bfs::bfs_distances(&g, 0);
        // Exactly at, and just over, the inline threshold.
        let small: Vec<(NodeId, NodeId)> =
            (1..=SMALL_BATCH_INLINE as NodeId).map(|v| (0, v)).collect();
        let over: Vec<(NodeId, NodeId)> = (1..=SMALL_BATCH_INLINE as NodeId + 1)
            .map(|v| (0, v))
            .collect();
        let got_small = eng.query_batch(&small).unwrap();
        let got_over = eng.query_batch(&over).unwrap();
        for (i, &(_, v)) in small.iter().enumerate() {
            assert_eq!(got_small[i], dist0[v as usize]);
        }
        for (i, &(_, v)) in over.iter().enumerate() {
            assert_eq!(got_over[i], dist0[v as usize]);
        }
        let s = eng.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.batch_queries, (small.len() + over.len()) as u64);
        assert_eq!(s.latency_count, s.batch_queries);
        // The inline path must not touch the single-query cache.
        assert_eq!(s.cache_hits + s.cache_misses, 0);
    }

    #[test]
    fn disconnected_pairs_serve_infinity() {
        // Two disjoint copies of a 3x3 grid: distance across them is ∞.
        let base = generators::grid(3, 3);
        let n = base.num_nodes();
        let mut all: Vec<(NodeId, NodeId)> = base.edges().map(|(u, v, _)| (u, v)).collect();
        all.extend(
            base.edges()
                .map(|(u, v, _)| (u + n as NodeId, v + n as NodeId)),
        );
        let g = hl_graph::builder::graph_from_edges(2 * n, &all).unwrap();
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let eng = QueryEngine::new(hl, 2).unwrap();
        assert_eq!(eng.query(0, n as NodeId).unwrap(), INFINITY);
    }
}
