//! Serving layer for hub labelings: a versioned binary label store, a
//! multi-threaded query engine with an LRU cache, and serving metrics.
//!
//! The rest of the workspace is about *constructing* labelings and proving
//! bounds on their size; this crate is about *answering queries from them*
//! at volume. The pieces:
//!
//! - [`store`]: an on-disk binary format for γ-coded labels
//!   ([`store::LabelStore`]) with corruption detection — truncation, bad
//!   magic and checksum mismatches surface as typed [`store::StoreError`]s,
//!   never as wrong distances.
//! - [`engine`]: [`engine::QueryEngine`], a fixed-size worker pool over a
//!   shared read-only [`hl_core::FlatLabeling`] arena — the store decodes
//!   straight into the flat form and the serving path never touches the
//!   nested per-vertex representation. Batches shard across workers;
//!   single queries go through a sharded LRU cache.
//! - [`cache`]: the [`cache::ShardedLruCache`] used by the engine.
//! - [`metrics`]: atomic counters and a latency histogram with
//!   p50/p95/p99 snapshots ([`metrics::Metrics`]).
//!
//! The `hubserve` binary (in `hl-net`, which also adds the TCP serving
//! stack on top of this crate) wires these into a CLI: `build` a store
//! from a graph, `query` it over a line protocol, `bench` it under
//! synthetic load, and `serve` it over the network.

#![forbid(unsafe_code)]

pub mod any_store;
pub mod cache;
pub mod engine;
pub mod metrics;
pub mod served;
pub mod store;
pub mod store_v2;

pub use any_store::AnyStore;
pub use cache::{CacheStats, ShardedLruCache};
pub use engine::{EngineError, QueryEngine};
pub use metrics::{LatencyHistogram, Metrics, MetricsSnapshot};
pub use served::ServedLabeling;
pub use store::{LabelStore, StoreError};
pub use store_v2::{CompactStore, FlatStore};
