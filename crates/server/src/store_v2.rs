//! HLBS version 2 — the on-disk body *is* the [`FlatLabeling`] arena.
//!
//! Version 1 stores labels γ-coded: minimal bytes on disk, but opening a
//! multi-GB store means bit-decoding 100M+ entries before the first query.
//! Version 2 inverts the trade: the three CSR arrays (`offsets`, `hubs`,
//! `dists`) are laid out verbatim, little-endian, each in its own aligned,
//! individually checksummed section — so a load is one sequential read,
//! one fused checksum-and-decode pass, and one structural scan. No bit
//! twiddling, no per-label work. v1 remains the archival/transport encoding (`hubserve
//! convert` moves between them losslessly); v2 is what a daemon mounts.
//!
//! ## Format (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HLBS"
//! 4       2     format version (2)
//! 6       2     flags (0 = flat flavor; see below for the compact flavor)
//! 8       8     node count n
//! 16      8     entry count e  (Σ_v |S_v|)
//! 24      8     FNV-1a-64 checksum of the section table (bytes 32..104)
//! 32      72    section table: 3 records of
//!                 (file offset u64, byte length u64, checksum u64)
//!               for the offsets, hubs and dists sections in that order;
//!               the section checksum is the word-folded, four-lane FNV
//!               variant of [`section_checksum`] (bulk data would be
//!               bottlenecked by byte-serial FNV)
//! 104     ...   zero padding to each section's 64-byte-aligned start
//! ```
//!
//! The `offsets` section holds `(n + 1)` u64s, `hubs` holds `e` u32s,
//! `dists` holds `e` u64s. Sections start at 64-byte-aligned file offsets
//! in table order, every gap byte is zero, and the file ends exactly where
//! the `dists` section does.
//!
//! ## The compact flavor (`flags != 0`)
//!
//! The same frame — header, section table, alignment, lane checksums,
//! zero padding, no trailing bytes — can carry the byte-tuned
//! [`CompactLabeling`] arena instead. Flag bits declare it:
//!
//! * [`FLAG_COMPACT`] (bit 0): the body is the compact arena — `hubs`
//!   holds per-run delta-coded ids, `dists` the narrow distance lane;
//! * [`FLAG_HUBS_WIDE`] (bit 1): hub deltas are u32 (u16 when clear);
//! * [`FLAG_DISTS_WIDE`] (bit 2): distances are u32 (u16 when clear).
//!
//! Section byte lengths scale with the declared widths; everything else
//! is unchanged, so the two flavors share one checksum scheme and one
//! frame validator. Readers that predate the compact flavor reject it
//! cleanly ([`StoreError::UnsupportedFlags`]) because they require
//! `flags == 0` — the flag word doubles as the flavor version gate.
//!
//! A reader validates, in order: header length, magic/version/flags, the
//! table checksum, then each section record (alignment, exact length for
//! the declared `n`/`e`, in-bounds, ascending and non-overlapping), the
//! zero padding, each section checksum (computed in the same pass that
//! decodes the section — decoded data is discarded unless every checksum
//! matches), and finally the structural
//! invariants of the decoded arena via
//! [`FlatLabeling::from_raw_parts`]. Anything malformed is a typed
//! [`StoreError`], never a panic or a wrong distance — the same untrusted-
//! bytes discipline as v1, with the checksum catching accidents and the
//! structural pass catching crafted stores.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use hl_core::{CompactDists, CompactLabeling, FlatLabeling, HubDeltas};

use crate::store::{fnv1a64, StoreError, MAGIC};

/// Format version this module reads and writes.
pub const VERSION: u16 = 2;
/// Size of the fixed header plus the section table, in bytes.
pub const HEADER_LEN: usize = 104;
/// Every section starts at a multiple of this file offset.
pub const SECTION_ALIGN: usize = 64;
/// Section names, in table order.
pub const SECTION_NAMES: [&str; 3] = ["offsets", "hubs", "dists"];

/// Flag bit: the body is the compact arena (delta-coded hubs, narrow
/// distances) rather than the flat one.
pub const FLAG_COMPACT: u16 = 1;
/// Flag bit: hub deltas are u32 (u16 when clear). Meaningful only with
/// [`FLAG_COMPACT`].
pub const FLAG_HUBS_WIDE: u16 = 1 << 1;
/// Flag bit: distances are u32 (u16 when clear). Meaningful only with
/// [`FLAG_COMPACT`].
pub const FLAG_DISTS_WIDE: u16 = 1 << 2;
/// Every flag bit this reader understands; anything else is rejected.
pub const FLAGS_KNOWN: u16 = FLAG_COMPACT | FLAG_HUBS_WIDE | FLAG_DISTS_WIDE;

const TABLE_OFF: usize = 32;
const RECORD_LEN: usize = 24;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The v2 *section* checksum: FNV-1a-64 folded over little-endian u64
/// words in four independent lanes, with the byte-FNV of the tail and
/// the section length absorbed into the combining hash.
///
/// Plain byte-at-a-time FNV-1a is a single serial xor/multiply chain —
/// ~4 cycles of multiply latency *per byte*, which would dominate the
/// load of a multi-GB store and defeat the format's purpose. Folding
/// whole words cuts the work to one multiply per 8 bytes, and four
/// independent lanes let those multiplies overlap in flight, pushing
/// checksum throughput to memory-bandwidth territory while staying
/// std-only and allocation-free.
///
/// Detection is as strong as plain FNV where it matters: every absorb
/// step `s' = (s ^ w) * PRIME` is a bijection in both `s` and `w`
/// (the prime is odd, hence invertible mod 2^64), so corrupting any
/// single word — in a lane stream, the tail hash, or the length —
/// changes that lane's state and therefore the final hash
/// *deterministically*; broader corruption collides with probability
/// ~2^-64 as usual. The 72-byte table keeps the classic byte-wise
/// [`fnv1a64`]; only bulk section data uses the folded form.
pub fn section_checksum(bytes: &[u8]) -> u64 {
    let mut lanes = LANE_SEEDS;
    let mut chunks = bytes.chunks_exact(32);
    for c in chunks.by_ref() {
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane = (*lane ^ u64_le(&c[j * 8..j * 8 + 8])).wrapping_mul(FNV_PRIME);
        }
    }
    let mut tail = FNV_OFFSET;
    for &b in chunks.remainder() {
        tail = (tail ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    combine_lanes(lanes, tail, bytes.len())
}

/// Placement of one section within the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section {
    /// Absolute file offset of the section's first byte.
    pub file_offset: u64,
    /// Exact byte length of the section.
    pub byte_len: u64,
}

/// The canonical (writer) placement of the three sections for a store
/// with the given node and entry counts, plus the resulting file length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// `offsets`, `hubs`, `dists` placements in table order.
    pub sections: [Section; 3],
    /// Total file length: the end of the `dists` section.
    pub file_len: u64,
}

fn align_up(off: u64) -> u64 {
    let a = SECTION_ALIGN as u64;
    off.div_ceil(a) * a
}

/// Computes the canonical layout for `num_nodes` vertices and
/// `num_entries` label entries in the flat flavor (4-byte hubs, 8-byte
/// distances): sections in table order, each aligned to
/// [`SECTION_ALIGN`], no trailing bytes.
pub fn layout(num_nodes: usize, num_entries: usize) -> Layout {
    layout_with(num_nodes, num_entries, 4, 8)
}

/// [`layout`] generalized over per-entry lane widths — the compact
/// flavor's sections shrink with its `u16`/`u32` lanes while the frame
/// rules (order, alignment, density) stay identical.
pub fn layout_with(
    num_nodes: usize,
    num_entries: usize,
    hub_bytes: usize,
    dist_bytes: usize,
) -> Layout {
    let lens = [
        (num_nodes as u64 + 1) * 8,
        num_entries as u64 * hub_bytes as u64,
        num_entries as u64 * dist_bytes as u64,
    ];
    let mut sections = [Section {
        file_offset: 0,
        byte_len: 0,
    }; 3];
    let mut at = HEADER_LEN as u64;
    for (i, &len) in lens.iter().enumerate() {
        at = align_up(at);
        sections[i] = Section {
            file_offset: at,
            byte_len: len,
        };
        at += len;
    }
    Layout {
        sections,
        file_len: at,
    }
}

/// A validated HLBS v2 store: a thin wrapper holding the decoded arena.
/// Unlike v1's [`crate::store::LabelStore`] there is nothing left to
/// decode — [`FlatStore::into_flat`] hands the arena to the engine by
/// move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatStore {
    flat: FlatLabeling,
}

impl FlatStore {
    /// Wraps an arena for serialization.
    pub fn from_flat(flat: FlatLabeling) -> Self {
        FlatStore { flat }
    }

    /// Borrows the arena.
    pub fn flat(&self) -> &FlatLabeling {
        &self.flat
    }

    /// Unwraps the arena (no copy).
    pub fn into_flat(self) -> FlatLabeling {
        self.flat
    }

    /// Number of vertices the store holds labels for.
    pub fn num_nodes(&self) -> usize {
        self.flat.num_nodes()
    }

    /// Total `(hub, distance)` entries, `Σ_v |S_v|`.
    pub fn num_entries(&self) -> usize {
        self.flat.num_entries()
    }

    /// Per-section byte sizes in table order, for stats reporting.
    pub fn section_bytes(&self) -> [(&'static str, u64); 3] {
        let lay = layout(self.num_nodes(), self.num_entries());
        [
            (SECTION_NAMES[0], lay.sections[0].byte_len),
            (SECTION_NAMES[1], lay.sections[1].byte_len),
            (SECTION_NAMES[2], lay.sections[2].byte_len),
        ]
    }

    /// Size of the serialized file in bytes.
    pub fn file_len(&self) -> u64 {
        layout(self.num_nodes(), self.num_entries()).file_len
    }

    /// Serializes the store into a fresh byte buffer.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.num_nodes();
        let e = self.num_entries();
        let lay = layout(n, e);
        let mut buf = vec![0u8; lay.file_len as usize];

        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        buf[6..8].copy_from_slice(&0u16.to_le_bytes()); // flags
        buf[8..16].copy_from_slice(&(n as u64).to_le_bytes());
        buf[16..24].copy_from_slice(&(e as u64).to_le_bytes());

        write_u64s(&mut buf, lay.sections[0], self.flat.raw_offsets());
        write_u32s(&mut buf, lay.sections[1], self.flat.raw_hubs());
        write_u64s(&mut buf, lay.sections[2], self.flat.raw_dists());

        for (i, sec) in lay.sections.iter().enumerate() {
            let (lo, hi) = (
                sec.file_offset as usize,
                (sec.file_offset + sec.byte_len) as usize,
            );
            let sum = section_checksum(&buf[lo..hi]);
            let rec = TABLE_OFF + i * RECORD_LEN;
            buf[rec..rec + 8].copy_from_slice(&sec.file_offset.to_le_bytes());
            buf[rec + 8..rec + 16].copy_from_slice(&sec.byte_len.to_le_bytes());
            buf[rec + 16..rec + 24].copy_from_slice(&sum.to_le_bytes());
        }
        let table_sum = fnv1a64(&buf[TABLE_OFF..HEADER_LEN]);
        buf[24..32].copy_from_slice(&table_sum.to_le_bytes());
        buf
    }

    /// Serializes the store to a writer.
    pub fn write_to<W: Write>(&self, mut out: W) -> Result<(), StoreError> {
        out.write_all(&self.encode())?;
        out.flush()?;
        Ok(())
    }

    /// Serializes the store to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), StoreError> {
        let file = File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Reads and fully validates a store from a reader.
    pub fn read_from<R: Read>(mut input: R) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        Self::parse(&bytes)
    }

    /// Reads and fully validates a store from a file: one sequential read
    /// plus validation — the whole point of the format.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        Self::read_from(File::open(path)?)
    }

    /// Parses and validates a serialized v2 store (flat flavor;
    /// `flags != 0` — including the compact flavor — is rejected here,
    /// [`crate::any_store::AnyStore`] dispatches on the flag word).
    pub fn parse(bytes: &[u8]) -> Result<Self, StoreError> {
        let (flags, n, e) = parse_header(bytes)?;
        if flags != 0 {
            return Err(StoreError::UnsupportedFlags(flags));
        }

        let n_usize = usize::try_from(n)
            .map_err(|_| StoreError::Corrupt(format!("node count {n} exceeds address space")))?;
        let e_usize = usize::try_from(e)
            .map_err(|_| StoreError::Corrupt(format!("entry count {e} exceeds address space")))?;
        let expect_lens = expected_section_lens(n, e, 4, 8)?;
        let sections = validate_frame(bytes, &expect_lens)?;
        let slices = section_slices(bytes, &sections);

        // Checksum and little-endian decode fused into ONE pass per
        // section: every word is read once, absorbed into the lane hash,
        // and stored decoded. A separate verify pass would stream the
        // whole multi-GB file through memory a second time. Decoding
        // ahead of verification is safe because the decode is pure
        // element-wise arithmetic — nothing indexes by the untrusted
        // values — and the vectors are dropped unused unless every
        // checksum matches its table record just below. The computed
        // hashes are bit-identical to [`section_checksum`].
        debug_assert_eq!(slices[0].len(), (n_usize + 1) * 8);
        debug_assert_eq!(slices[1].len(), e_usize * 4);
        debug_assert_eq!(slices[2].len(), e_usize * 8);
        // Sections are independent, so on multi-core hosts the two big
        // ones (hubs, dists) decode on scoped threads while this thread
        // takes offsets — the load is memory-bandwidth-bound, and per-
        // core bandwidth is usually well below the socket's.
        let parallel = std::thread::available_parallelism().map_or(1, |n| n.get()) > 1;
        let ((offsets, offsets_sum), (hubs, hubs_sum), (dists, dists_sum)) = if parallel {
            std::thread::scope(|scope| -> Result<_, StoreError> {
                let hubs = scope.spawn(|| decode_u32_section(slices[1]));
                let dists = scope.spawn(|| decode_u64_section(slices[2]));
                let offsets = decode_u64_section(slices[0]);
                // The decoders are pure arithmetic and cannot panic; a
                // join error still maps to a typed StoreError rather
                // than propagating as a panic.
                let joined = |name: &str| StoreError::Corrupt(format!("{name} decode thread died"));
                Ok((
                    offsets,
                    hubs.join().map_err(|_| joined("hubs"))?,
                    dists.join().map_err(|_| joined("dists"))?,
                ))
            })?
        } else {
            (
                decode_u64_section(slices[0]),
                decode_u32_section(slices[1]),
                decode_u64_section(slices[2]),
            )
        };
        verify_section_checksums(bytes, [offsets_sum, hubs_sum, dists_sum])?;

        let flat = FlatLabeling::from_raw_parts(offsets, hubs, dists)
            .map_err(|e| StoreError::Corrupt(format!("arena invariant violated: {e}")))?;
        Ok(FlatStore { flat })
    }
}

impl From<FlatLabeling> for FlatStore {
    fn from(flat: FlatLabeling) -> Self {
        FlatStore::from_flat(flat)
    }
}

/// The flag word of a v2 header, for flavor dispatch before a full parse.
/// Validates only what the peek needs: length, magic, version.
pub fn header_flags(bytes: &[u8]) -> Result<u16, StoreError> {
    let magic: [u8; 4] = read_array(bytes, 0)?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(read_array(bytes, 4)?);
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    Ok(u16::from_le_bytes(read_array(bytes, 6)?))
}

/// Validates the fixed header shared by both flavors — length, magic,
/// version, table checksum — and returns `(flags, n, e)`. Flavor-specific
/// flag interpretation stays with the caller.
fn parse_header(bytes: &[u8]) -> Result<(u16, u64, u64), StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    let flags = header_flags(bytes)?;
    let n = u64::from_le_bytes(read_array(bytes, 8)?);
    let e = u64::from_le_bytes(read_array(bytes, 16)?);
    let table_checksum = u64::from_le_bytes(read_array(bytes, 24)?);

    let actual_table = fnv1a64(&bytes[TABLE_OFF..HEADER_LEN]);
    if actual_table != table_checksum {
        return Err(StoreError::ChecksumMismatch {
            expected: table_checksum,
            actual: actual_table,
        });
    }
    Ok((flags, n, e))
}

/// Expected exact section lengths for the declared counts and lane
/// widths; checked arithmetic so a lying header cannot wrap into a small
/// number.
fn expected_section_lens(
    n: u64,
    e: u64,
    hub_bytes: u64,
    dist_bytes: u64,
) -> Result<[u64; 3], StoreError> {
    Ok([
        n.checked_add(1)
            .and_then(|c| c.checked_mul(8))
            .ok_or_else(|| {
                StoreError::Corrupt(format!("node count {n} overflows offsets section"))
            })?,
        e.checked_mul(hub_bytes).ok_or_else(|| {
            StoreError::Corrupt(format!("entry count {e} overflows hubs section"))
        })?,
        e.checked_mul(dist_bytes).ok_or_else(|| {
            StoreError::Corrupt(format!("entry count {e} overflows dists section"))
        })?,
    ])
}

/// Validates the section table records (aligned, exact-length, in-bounds,
/// ascending, non-overlapping — all against the *actual* file length
/// before any section-sized allocation happens), the zero padding between
/// sections, and the absence of trailing bytes. Shared by both flavors;
/// only the expected lengths differ.
fn validate_frame(bytes: &[u8], expect_lens: &[u64; 3]) -> Result<[Section; 3], StoreError> {
    let file_len = bytes.len() as u64;
    let mut sections = [Section {
        file_offset: 0,
        byte_len: 0,
    }; 3];
    let mut prev_end = HEADER_LEN as u64;
    for (i, name) in SECTION_NAMES.iter().enumerate() {
        let rec = TABLE_OFF + i * RECORD_LEN;
        let off = u64::from_le_bytes(read_array(bytes, rec)?);
        let len = u64::from_le_bytes(read_array(bytes, rec + 8)?);
        if off % SECTION_ALIGN as u64 != 0 {
            return Err(StoreError::Corrupt(format!(
                "section {name} misaligned: offset {off} is not a multiple of {SECTION_ALIGN}"
            )));
        }
        if len != expect_lens[i] {
            return Err(StoreError::Corrupt(format!(
                "section {name} length {len} does not match expected {} for the declared counts",
                expect_lens[i]
            )));
        }
        let end = off
            .checked_add(len)
            .ok_or_else(|| StoreError::Corrupt(format!("section {name} extent overflows")))?;
        if off < prev_end {
            return Err(StoreError::Corrupt(format!(
                "section {name} at offset {off} overlaps the bytes before it (end {prev_end})"
            )));
        }
        if end > file_len {
            return Err(StoreError::Truncated {
                expected: end,
                actual: file_len,
            });
        }
        sections[i] = Section {
            file_offset: off,
            byte_len: len,
        };
        prev_end = end;
    }
    if prev_end != file_len {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the dists section",
            file_len - prev_end
        )));
    }

    // Padding gaps carry no checksum, so they must be all zero — that
    // way a blind bit flip anywhere in the file is detectable.
    let mut gap_start = HEADER_LEN as u64;
    for (i, sec) in sections.iter().enumerate() {
        let gap = &bytes[gap_start as usize..sec.file_offset as usize];
        if gap.iter().any(|&b| b != 0) {
            return Err(StoreError::Corrupt(format!(
                "nonzero padding before section {}",
                SECTION_NAMES[i]
            )));
        }
        gap_start = sec.file_offset + sec.byte_len;
    }
    Ok(sections)
}

fn section_slices<'a>(bytes: &'a [u8], sections: &[Section; 3]) -> [&'a [u8]; 3] {
    let mut slices = [&bytes[0..0]; 3];
    for (i, sec) in sections.iter().enumerate() {
        let (lo, hi) = (
            sec.file_offset as usize,
            (sec.file_offset + sec.byte_len) as usize,
        );
        slices[i] = &bytes[lo..hi];
    }
    slices
}

/// Compares the fused-decode section hashes against the table records.
fn verify_section_checksums(bytes: &[u8], actual: [u64; 3]) -> Result<(), StoreError> {
    for (i, actual) in actual.into_iter().enumerate() {
        let rec = TABLE_OFF + i * RECORD_LEN;
        let declared = u64::from_le_bytes(read_array(bytes, rec + 16)?);
        if actual != declared {
            return Err(StoreError::Corrupt(format!(
                "section {} checksum mismatch: table says {declared:#018x}, bytes hash to {actual:#018x}",
                SECTION_NAMES[i]
            )));
        }
    }
    Ok(())
}

/// A validated compact-flavor HLBS v2 store: the same frame as
/// [`FlatStore`], carrying the byte-tuned [`CompactLabeling`] arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactStore {
    compact: CompactLabeling,
}

impl CompactStore {
    /// Wraps a compact arena for serialization.
    pub fn from_compact(compact: CompactLabeling) -> Self {
        CompactStore { compact }
    }

    /// Borrows the arena.
    pub fn compact(&self) -> &CompactLabeling {
        &self.compact
    }

    /// Unwraps the arena (no copy).
    pub fn into_compact(self) -> CompactLabeling {
        self.compact
    }

    /// Number of vertices the store holds labels for.
    pub fn num_nodes(&self) -> usize {
        self.compact.num_nodes()
    }

    /// Total `(hub, distance)` entries, `Σ_v |S_v|`.
    pub fn num_entries(&self) -> usize {
        self.compact.num_entries()
    }

    /// The flag word this store serializes with: [`FLAG_COMPACT`] plus
    /// the width bits matching the arena's lanes.
    pub fn flags(&self) -> u16 {
        let mut flags = FLAG_COMPACT;
        if self.compact.hub_entry_bytes() == 4 {
            flags |= FLAG_HUBS_WIDE;
        }
        if self.compact.dist_entry_bytes() == 4 {
            flags |= FLAG_DISTS_WIDE;
        }
        flags
    }

    fn layout(&self) -> Layout {
        layout_with(
            self.num_nodes(),
            self.num_entries(),
            self.compact.hub_entry_bytes(),
            self.compact.dist_entry_bytes(),
        )
    }

    /// Per-section byte sizes in table order, for stats reporting.
    pub fn section_bytes(&self) -> [(&'static str, u64); 3] {
        let lay = self.layout();
        [
            (SECTION_NAMES[0], lay.sections[0].byte_len),
            (SECTION_NAMES[1], lay.sections[1].byte_len),
            (SECTION_NAMES[2], lay.sections[2].byte_len),
        ]
    }

    /// Size of the serialized file in bytes.
    pub fn file_len(&self) -> u64 {
        self.layout().file_len
    }

    /// Serializes the store into a fresh byte buffer.
    pub fn encode(&self) -> Vec<u8> {
        let lay = self.layout();
        let mut buf = vec![0u8; lay.file_len as usize];

        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        buf[6..8].copy_from_slice(&self.flags().to_le_bytes());
        buf[8..16].copy_from_slice(&(self.num_nodes() as u64).to_le_bytes());
        buf[16..24].copy_from_slice(&(self.num_entries() as u64).to_le_bytes());

        write_u64s(&mut buf, lay.sections[0], self.compact.raw_offsets());
        match self.compact.raw_hubs() {
            HubDeltas::U16(v) => write_u16s(&mut buf, lay.sections[1], v),
            HubDeltas::U32(v) => write_u32s(&mut buf, lay.sections[1], v),
        }
        match self.compact.raw_dists() {
            CompactDists::U16(v) => write_u16s(&mut buf, lay.sections[2], v),
            CompactDists::U32(v) => write_u32s(&mut buf, lay.sections[2], v),
        }

        for (i, sec) in lay.sections.iter().enumerate() {
            let (lo, hi) = (
                sec.file_offset as usize,
                (sec.file_offset + sec.byte_len) as usize,
            );
            let sum = section_checksum(&buf[lo..hi]);
            let rec = TABLE_OFF + i * RECORD_LEN;
            buf[rec..rec + 8].copy_from_slice(&sec.file_offset.to_le_bytes());
            buf[rec + 8..rec + 16].copy_from_slice(&sec.byte_len.to_le_bytes());
            buf[rec + 16..rec + 24].copy_from_slice(&sum.to_le_bytes());
        }
        let table_sum = fnv1a64(&buf[TABLE_OFF..HEADER_LEN]);
        buf[24..32].copy_from_slice(&table_sum.to_le_bytes());
        buf
    }

    /// Serializes the store to a writer.
    pub fn write_to<W: Write>(&self, mut out: W) -> Result<(), StoreError> {
        out.write_all(&self.encode())?;
        out.flush()?;
        Ok(())
    }

    /// Serializes the store to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), StoreError> {
        let file = File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Reads and fully validates a store from a reader.
    pub fn read_from<R: Read>(mut input: R) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        Self::parse(&bytes)
    }

    /// Reads and fully validates a store from a file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        Self::read_from(File::open(path)?)
    }

    /// Parses and validates a serialized compact-flavor store:
    /// [`FLAG_COMPACT`] must be set and no unknown flag bits present.
    /// The frame checks, fused checksum+decode discipline, and structural
    /// validation ([`CompactLabeling::from_raw_parts`]) mirror the flat
    /// parser exactly.
    pub fn parse(bytes: &[u8]) -> Result<Self, StoreError> {
        let (flags, n, e) = parse_header(bytes)?;
        if flags & FLAG_COMPACT == 0 || flags & !FLAGS_KNOWN != 0 {
            return Err(StoreError::UnsupportedFlags(flags));
        }
        let hub_bytes: u64 = if flags & FLAG_HUBS_WIDE != 0 { 4 } else { 2 };
        let dist_bytes: u64 = if flags & FLAG_DISTS_WIDE != 0 { 4 } else { 2 };

        usize::try_from(n)
            .map_err(|_| StoreError::Corrupt(format!("node count {n} exceeds address space")))?;
        usize::try_from(e)
            .map_err(|_| StoreError::Corrupt(format!("entry count {e} exceeds address space")))?;
        let expect_lens = expected_section_lens(n, e, hub_bytes, dist_bytes)?;
        let sections = validate_frame(bytes, &expect_lens)?;
        let slices = section_slices(bytes, &sections);

        // Fused checksum + decode, one pass per section, exactly like the
        // flat parser. The narrow lanes are at most half the flat sizes,
        // so this stays sequential — the frame is small enough that the
        // scoped-thread split buys nothing here.
        let (offsets, offsets_sum) = decode_u64_section(slices[0]);
        let (hubs, hubs_sum) = if hub_bytes == 4 {
            let (v, s) = decode_u32_section(slices[1]);
            (HubDeltas::U32(v), s)
        } else {
            let (v, s) = decode_u16_section(slices[1]);
            (HubDeltas::U16(v), s)
        };
        let (dists, dists_sum) = if dist_bytes == 4 {
            let (v, s) = decode_u32_section(slices[2]);
            (CompactDists::U32(v), s)
        } else {
            let (v, s) = decode_u16_section(slices[2]);
            (CompactDists::U16(v), s)
        };
        verify_section_checksums(bytes, [offsets_sum, hubs_sum, dists_sum])?;

        let compact = CompactLabeling::from_raw_parts(offsets, hubs, dists)
            .map_err(|e| StoreError::Corrupt(format!("arena invariant violated: {e}")))?;
        Ok(CompactStore { compact })
    }
}

impl From<CompactLabeling> for CompactStore {
    fn from(compact: CompactLabeling) -> Self {
        CompactStore::from_compact(compact)
    }
}

/// Reads an `N`-byte field at `at`; a short read is a typed error, never
/// a slice-index panic.
fn read_array<const N: usize>(bytes: &[u8], at: usize) -> Result<[u8; N], StoreError> {
    at.checked_add(N)
        .and_then(|end| bytes.get(at..end))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or_else(|| StoreError::Corrupt(format!("truncated read of {N} bytes at offset {at}")))
}

fn u64_le(chunk: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(chunk);
    u64::from_le_bytes(b)
}

fn u32_le(chunk: &[u8]) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(chunk);
    u32::from_le_bytes(b)
}

fn u16_le(chunk: &[u8]) -> u16 {
    let mut b = [0u8; 2];
    b.copy_from_slice(chunk);
    u16::from_le_bytes(b)
}

/// Combines the four lane states, the byte-FNV tail hash, and the byte
/// length into the final section hash — the last step of
/// [`section_checksum`], shared with the fused decoders below.
fn combine_lanes(lanes: [u64; 4], tail: u64, byte_len: usize) -> u64 {
    let mut h = FNV_OFFSET;
    for w in lanes.into_iter().chain([tail, byte_len as u64]) {
        h = (h ^ w).wrapping_mul(FNV_PRIME);
    }
    h
}

const LANE_SEEDS: [u64; 4] = [
    FNV_OFFSET ^ 1,
    FNV_OFFSET ^ 2,
    FNV_OFFSET ^ 3,
    FNV_OFFSET ^ 4,
];

/// Decodes a section of little-endian u64s while computing its
/// [`section_checksum`] in the same pass over the bytes. `bytes.len()`
/// must be a multiple of 8 (the caller validated section lengths).
fn decode_u64_section(bytes: &[u8]) -> (Vec<u64>, u64) {
    let mut out = vec![0u64; bytes.len() / 8];
    let mut lanes = LANE_SEEDS;
    let mut src = bytes.chunks_exact(32);
    let mut dst = out.chunks_exact_mut(4);
    for (d, s) in (&mut dst).zip(&mut src) {
        for (j, slot) in d.iter_mut().enumerate() {
            let w = u64_le(&s[j * 8..j * 8 + 8]);
            lanes[j] = (lanes[j] ^ w).wrapping_mul(FNV_PRIME);
            *slot = w;
        }
    }
    let mut tail = FNV_OFFSET;
    for &b in src.remainder() {
        tail = (tail ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for (slot, chunk) in dst
        .into_remainder()
        .iter_mut()
        .zip(src.remainder().chunks_exact(8))
    {
        *slot = u64_le(chunk);
    }
    let h = combine_lanes(lanes, tail, bytes.len());
    (out, h)
}

/// Decodes a section of little-endian u32s while computing its
/// [`section_checksum`] in the same pass. `bytes.len()` must be a
/// multiple of 4; note the hash still folds u64 *words*, so each word
/// yields two u32s (low half first — little-endian order).
fn decode_u32_section(bytes: &[u8]) -> (Vec<u32>, u64) {
    let mut out = vec![0u32; bytes.len() / 4];
    let mut lanes = LANE_SEEDS;
    let mut src = bytes.chunks_exact(32);
    let mut dst = out.chunks_exact_mut(8);
    for (d, s) in (&mut dst).zip(&mut src) {
        for j in 0..4 {
            let w = u64_le(&s[j * 8..j * 8 + 8]);
            lanes[j] = (lanes[j] ^ w).wrapping_mul(FNV_PRIME);
            d[2 * j] = w as u32;
            d[2 * j + 1] = (w >> 32) as u32;
        }
    }
    let mut tail = FNV_OFFSET;
    for &b in src.remainder() {
        tail = (tail ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for (slot, chunk) in dst
        .into_remainder()
        .iter_mut()
        .zip(src.remainder().chunks_exact(4))
    {
        *slot = u32_le(chunk);
    }
    let h = combine_lanes(lanes, tail, bytes.len());
    (out, h)
}

/// Decodes a section of little-endian u16s while computing its
/// [`section_checksum`] in the same pass. `bytes.len()` must be a
/// multiple of 2; the hash folds u64 *words*, so each word yields four
/// u16s (lowest half first — little-endian order).
fn decode_u16_section(bytes: &[u8]) -> (Vec<u16>, u64) {
    let mut out = vec![0u16; bytes.len() / 2];
    let mut lanes = LANE_SEEDS;
    let mut src = bytes.chunks_exact(32);
    let mut dst = out.chunks_exact_mut(16);
    for (d, s) in (&mut dst).zip(&mut src) {
        for j in 0..4 {
            let w = u64_le(&s[j * 8..j * 8 + 8]);
            lanes[j] = (lanes[j] ^ w).wrapping_mul(FNV_PRIME);
            for k in 0..4 {
                d[4 * j + k] = (w >> (16 * k)) as u16;
            }
        }
    }
    let mut tail = FNV_OFFSET;
    for &b in src.remainder() {
        tail = (tail ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for (slot, chunk) in dst
        .into_remainder()
        .iter_mut()
        .zip(src.remainder().chunks_exact(2))
    {
        *slot = u16_le(chunk);
    }
    let h = combine_lanes(lanes, tail, bytes.len());
    (out, h)
}

fn write_u64s(buf: &mut [u8], sec: Section, values: &[u64]) {
    let base = sec.file_offset as usize;
    for (i, &v) in values.iter().enumerate() {
        buf[base + i * 8..base + i * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
}

fn write_u32s(buf: &mut [u8], sec: Section, values: &[u32]) {
    let base = sec.file_offset as usize;
    for (i, &v) in values.iter().enumerate() {
        buf[base + i * 4..base + i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
}

fn write_u16s(buf: &mut [u8], sec: Section, values: &[u16]) {
    let base = sec.file_offset as usize;
    for (i, &v) in values.iter().enumerate() {
        buf[base + i * 2..base + i * 2 + 2].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::pll::PrunedLandmarkLabeling;
    use hl_graph::{generators, NodeId};

    fn sample_flat() -> FlatLabeling {
        let g = generators::grid(5, 6);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        FlatLabeling::from_labeling(&hl)
    }

    fn refresh_table_checksum(buf: &mut [u8]) {
        let sum = fnv1a64(&buf[TABLE_OFF..HEADER_LEN]);
        buf[24..32].copy_from_slice(&sum.to_le_bytes());
    }

    fn refresh_section_checksum(buf: &mut [u8], section: usize) {
        let rec = TABLE_OFF + section * RECORD_LEN;
        let off = u64::from_le_bytes(buf[rec..rec + 8].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(buf[rec + 8..rec + 16].try_into().unwrap()) as usize;
        let sum = section_checksum(&buf[off..off + len]);
        buf[rec + 16..rec + 24].copy_from_slice(&sum.to_le_bytes());
        refresh_table_checksum(buf);
    }

    #[test]
    fn layout_is_aligned_and_dense() {
        let lay = layout(1000, 12345);
        let mut prev_end = HEADER_LEN as u64;
        for sec in &lay.sections {
            assert_eq!(sec.file_offset % SECTION_ALIGN as u64, 0);
            assert!(sec.file_offset >= prev_end);
            assert!(sec.file_offset - prev_end < SECTION_ALIGN as u64);
            prev_end = sec.file_offset + sec.byte_len;
        }
        assert_eq!(lay.file_len, prev_end);
        assert_eq!(lay.sections[0].byte_len, 1001 * 8);
        assert_eq!(lay.sections[1].byte_len, 12345 * 4);
        assert_eq!(lay.sections[2].byte_len, 12345 * 8);
    }

    #[test]
    fn roundtrip_preserves_arena_exactly() {
        let flat = sample_flat();
        let store = FlatStore::from_flat(flat.clone());
        let bytes = store.encode();
        assert_eq!(bytes.len() as u64, store.file_len());
        let back = FlatStore::parse(&bytes).expect("own encoding must parse");
        assert_eq!(back.flat(), &flat);
        // Deterministic writer: encoding again is byte-identical.
        assert_eq!(FlatStore::from_flat(back.into_flat()).encode(), bytes);
    }

    #[test]
    fn empty_arena_roundtrips() {
        let store = FlatStore::from_flat(FlatLabeling::new());
        let bytes = store.encode();
        let back = FlatStore::parse(&bytes).unwrap();
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.num_entries(), 0);
    }

    #[test]
    fn header_fields_rejected() {
        let bytes = FlatStore::from_flat(sample_flat()).encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            FlatStore::parse(&bad),
            Err(StoreError::BadMagic(_))
        ));
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(
            FlatStore::parse(&bad),
            Err(StoreError::UnsupportedVersion(9))
        ));
        let mut bad = bytes.clone();
        bad[6] = 1;
        assert!(matches!(
            FlatStore::parse(&bad),
            Err(StoreError::UnsupportedFlags(1))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = FlatStore::from_flat(sample_flat()).encode();
        for cut in [
            0,
            3,
            HEADER_LEN - 1,
            HEADER_LEN,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            assert!(
                FlatStore::parse(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = FlatStore::from_flat(sample_flat()).encode();
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            FlatStore::parse(&bytes),
            Err(StoreError::Corrupt(ref m)) if m.contains("trailing")
        ));
    }

    #[test]
    fn every_blind_byte_flip_is_detected() {
        // The format's corruption-detection contract: flip any single
        // byte anywhere — header, table, padding, any section — and the
        // parse must fail with a typed error.
        let flat = sample_flat();
        let bytes = FlatStore::from_flat(flat).encode();
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                FlatStore::parse(&bad).is_err(),
                "flipped byte at {at} went undetected"
            );
        }
    }

    #[test]
    fn crafted_section_flip_fails_structural_validation() {
        // Overwrite offsets[1] with a huge value and refresh the section
        // checksum — the crafted-store shape. The checksum now matches,
        // so only the structural pass can catch it (monotonicity).
        let flat = sample_flat();
        let mut bytes = FlatStore::from_flat(flat.clone()).encode();
        let off0 = layout(flat.num_nodes(), flat.num_entries()).sections[0].file_offset as usize;
        bytes[off0 + 8..off0 + 16].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        refresh_section_checksum(&mut bytes, 0);
        let err = FlatStore::parse(&bytes).expect_err("crafted offsets must be rejected");
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn crafted_misaligned_section_offset_rejected() {
        let mut bytes = FlatStore::from_flat(sample_flat()).encode();
        let rec = TABLE_OFF; // offsets record
        let off = u64::from_le_bytes(bytes[rec..rec + 8].try_into().unwrap());
        bytes[rec..rec + 8].copy_from_slice(&(off + 1).to_le_bytes());
        refresh_table_checksum(&mut bytes);
        let err = FlatStore::parse(&bytes).expect_err("misaligned section must be rejected");
        assert!(
            matches!(err, StoreError::Corrupt(ref m) if m.contains("misaligned")),
            "{err:?}"
        );
    }

    #[test]
    fn crafted_huge_counts_rejected_before_allocation() {
        // Lie about n/e in the header (checksums refreshed): the expected
        // section lengths no longer match the table records, so the parse
        // dies before any table-sized allocation.
        let mut bytes = FlatStore::from_flat(sample_flat()).encode();
        bytes[8..16].copy_from_slice(&(1u64 << 40).to_le_bytes());
        refresh_table_checksum(&mut bytes);
        let err = FlatStore::parse(&bytes).expect_err("lying node count");
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");

        let mut bytes2 = FlatStore::from_flat(sample_flat()).encode();
        bytes2[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        refresh_table_checksum(&mut bytes2);
        let err = FlatStore::parse(&bytes2).expect_err("overflowing entry count");
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn crafted_unsorted_hubs_rejected() {
        // Swap two hub ids inside one vertex's run and refresh the hubs
        // checksum: the arena structural pass must reject it.
        let flat = sample_flat();
        let e = flat.num_entries();
        let mut bytes = FlatStore::from_flat(flat.clone()).encode();
        let lay = layout(flat.num_nodes(), e);
        // Find a vertex with >= 2 hubs and swap its first two entries.
        let v = (0..flat.num_nodes())
            .find(|&v| flat.hubs_of(v as NodeId).len() >= 2)
            .expect("grid labels have multi-hub vertices");
        let run_start = flat.raw_offsets()[v] as usize;
        let base = lay.sections[1].file_offset as usize + run_start * 4;
        let (a, b) = (base, base + 4);
        for i in 0..4 {
            bytes.swap(a + i, b + i);
        }
        refresh_section_checksum(&mut bytes, 1);
        let err = FlatStore::parse(&bytes).expect_err("unsorted hubs must be rejected");
        assert!(
            matches!(err, StoreError::Corrupt(ref m) if m.contains("strictly increasing")),
            "{err:?}"
        );
    }

    #[test]
    fn fused_decoders_match_section_checksum() {
        // The parse path hashes sections inside the decode loop; that
        // fused hash must be bit-identical to the spec function the
        // writer uses, including at tail lengths that exercise the
        // byte-FNV remainder (0..4 words past a 32-byte boundary).
        let mut bytes = Vec::new();
        for i in 0..200u32 {
            bytes.push((i as u8).wrapping_mul(37).wrapping_add(11));
        }
        for len in [0, 8, 16, 24, 32, 40, 64, 72, 96, 104, 136, 200] {
            let s = &bytes[..len];
            let (vals, h) = decode_u64_section(s);
            assert_eq!(h, section_checksum(s), "u64 fused hash at len {len}");
            assert_eq!(vals.len(), len / 8);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(v, u64_le(&s[i * 8..i * 8 + 8]));
            }
        }
        for len in [0, 4, 12, 28, 32, 36, 60, 64, 68, 100, 196, 200] {
            let s = &bytes[..len];
            let (vals, h) = decode_u32_section(s);
            assert_eq!(h, section_checksum(s), "u32 fused hash at len {len}");
            assert_eq!(vals.len(), len / 4);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(v, u32_le(&s[i * 4..i * 4 + 4]));
            }
        }
    }

    #[test]
    fn section_bytes_report_matches_layout() {
        let flat = sample_flat();
        let store = FlatStore::from_flat(flat.clone());
        let report = store.section_bytes();
        assert_eq!(report[0], ("offsets", (flat.num_nodes() as u64 + 1) * 8));
        assert_eq!(report[1], ("hubs", flat.num_entries() as u64 * 4));
        assert_eq!(report[2], ("dists", flat.num_entries() as u64 * 8));
    }

    fn sample_compact() -> CompactLabeling {
        CompactLabeling::from_flat(&sample_flat()).expect("grid labels compact cleanly")
    }

    #[test]
    fn compact_roundtrip_preserves_arena_exactly() {
        let compact = sample_compact();
        let store = CompactStore::from_compact(compact.clone());
        let bytes = store.encode();
        assert_eq!(bytes.len() as u64, store.file_len());
        let back = CompactStore::parse(&bytes).expect("own encoding must parse");
        assert_eq!(back.compact(), &compact);
        // Deterministic writer: encoding again is byte-identical.
        assert_eq!(
            CompactStore::from_compact(back.into_compact()).encode(),
            bytes
        );
        // And the decoded arena answers exactly like the flat one.
        let flat = sample_flat();
        for u in 0..flat.num_nodes() as NodeId {
            for v in 0..flat.num_nodes() as NodeId {
                assert_eq!(compact.query(u, v), flat.query(u, v));
            }
        }
    }

    #[test]
    fn compact_flag_word_tracks_lane_widths() {
        let narrow = CompactStore::from_compact(sample_compact());
        assert_eq!(narrow.flags(), FLAG_COMPACT);
        let mut wide_hl = hl_core::HubLabeling::empty(200_000);
        *wide_hl.label_mut(0) = hl_core::HubLabel::from_pairs(vec![(0, 0), (70_000, 1 << 20)]);
        *wide_hl.label_mut(70_000) = hl_core::HubLabel::from_pairs(vec![(70_000, 0)]);
        let wide = CompactStore::from_compact(
            CompactLabeling::from_flat(&FlatLabeling::from(wide_hl)).unwrap(),
        );
        assert_eq!(
            wide.flags(),
            FLAG_COMPACT | FLAG_HUBS_WIDE | FLAG_DISTS_WIDE
        );
        // Both flavors roundtrip through their own flags.
        assert_eq!(
            CompactStore::parse(&wide.encode()).unwrap().compact(),
            wide.compact()
        );
    }

    #[test]
    fn compact_flavor_rejected_by_flat_parser_and_vice_versa() {
        let compact_bytes = CompactStore::from_compact(sample_compact()).encode();
        assert!(matches!(
            FlatStore::parse(&compact_bytes),
            Err(StoreError::UnsupportedFlags(f)) if f & FLAG_COMPACT != 0
        ));
        let flat_bytes = FlatStore::from_flat(sample_flat()).encode();
        assert!(matches!(
            CompactStore::parse(&flat_bytes),
            Err(StoreError::UnsupportedFlags(0))
        ));
        // Unknown flag bits are rejected even with FLAG_COMPACT set.
        let mut bad = compact_bytes.clone();
        bad[6] |= 1 << 3;
        assert!(CompactStore::parse(&bad).is_err());
    }

    #[test]
    fn compact_every_blind_byte_flip_is_detected() {
        // The corruption-detection contract extends to the compact
        // flavor: flip any single byte anywhere — header, flag word,
        // table, padding, any narrow-lane section — and the parse fails.
        let bytes = CompactStore::from_compact(sample_compact()).encode();
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                CompactStore::parse(&bad).is_err(),
                "flipped byte at {at} went undetected"
            );
        }
    }

    #[test]
    fn compact_heap_bytes_equals_sum_of_section_byte_lens() {
        // The stats contract: the arena's exact heap accounting and the
        // store's section table describe the same bytes — no hidden side
        // tables, no double-counted fallback lanes.
        let store = CompactStore::from_compact(sample_compact());
        let section_sum: u64 = store.section_bytes().iter().map(|&(_, b)| b).sum();
        assert_eq!(store.compact().heap_bytes() as u64, section_sum);
        // Same invariant on the flat side, for the head-to-head math.
        let flat_store = FlatStore::from_flat(sample_flat());
        let flat_sum: u64 = flat_store.section_bytes().iter().map(|&(_, b)| b).sum();
        assert_eq!(flat_store.flat().heap_bytes() as u64, flat_sum);
    }

    #[test]
    fn fused_u16_decoder_matches_section_checksum() {
        let mut bytes = Vec::new();
        for i in 0..200u32 {
            bytes.push((i as u8).wrapping_mul(53).wrapping_add(7));
        }
        for len in [0, 2, 6, 16, 30, 32, 34, 62, 64, 66, 98, 130, 200] {
            let s = &bytes[..len];
            let (vals, h) = decode_u16_section(s);
            assert_eq!(h, section_checksum(s), "u16 fused hash at len {len}");
            assert_eq!(vals.len(), len / 2);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(v, u16_le(&s[i * 2..i * 2 + 2]));
            }
        }
    }

    #[test]
    fn compact_save_and_open_roundtrip() {
        let compact = sample_compact();
        let dir = std::env::temp_dir().join(format!("hlbs2c-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.hlbs2c");
        CompactStore::from_compact(compact.clone())
            .save(&path)
            .unwrap();
        let back = CompactStore::open(&path).unwrap();
        assert_eq!(back.compact(), &compact);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_and_open_roundtrip() {
        let flat = sample_flat();
        let dir = std::env::temp_dir().join(format!("hlbs2-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.hlbs2");
        FlatStore::from_flat(flat.clone()).save(&path).unwrap();
        let back = FlatStore::open(&path).unwrap();
        assert_eq!(back.flat(), &flat);
        std::fs::remove_dir_all(&dir).ok();
    }
}
