//! Serving metrics: lock-free counters plus a fixed-bucket latency
//! histogram good enough for p50/p95/p99 under concurrent load.
//!
//! Everything is `AtomicU64` with relaxed ordering — the counters are
//! statistics, not synchronization. The histogram buckets latencies by
//! power of two nanoseconds (bucket `i` covers `[2^(i-1), 2^i)` ns), so
//! recording is a `leading_zeros` and one atomic add, and percentile
//! estimates are exact to within a factor of two, which is all a serving
//! dashboard needs.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

const BUCKETS: usize = 64;

/// Power-of-two-bucketed latency histogram.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_of(nanos: u64) -> usize {
        // 0 ns -> bucket 0; otherwise floor(log2) + 1, saturating.
        if nanos == 0 {
            0
        } else {
            ((64 - nanos.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Upper bound (exclusive) of a bucket in nanoseconds.
    fn bucket_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one observation.
    pub fn record(&self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)].fetch_add(1, Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Upper bound (in ns) of the bucket containing the `q`-quantile,
    /// for `q` in `[0, 1]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Nearest-rank: the ceil(q * n)-th observation. `q * n` is computed
        // in f64, which can land a hair above the exact product (e.g.
        // 0.07 * 100 = 7.000000000000001) and make `ceil` overshoot by a
        // whole rank; snap back to the nearest integer when we are within
        // f64 noise of it.
        let scaled = q.clamp(0.0, 1.0) * total as f64;
        let rounded = scaled.round();
        let rank = if (scaled - rounded).abs() < 1e-9 {
            rounded
        } else {
            scaled.ceil()
        };
        let rank = (rank as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(BUCKETS - 1)
    }
}

/// Counters for one engine instance. Shared by reference between the
/// workers and whoever renders snapshots.
#[derive(Default)]
pub struct Metrics {
    /// Queries answered via the single-query (cached) path.
    pub single_queries: AtomicU64,
    /// Batch calls served.
    pub batches: AtomicU64,
    /// Queries answered inside batches.
    pub batch_queries: AtomicU64,
    /// Single-query cache hits.
    pub cache_hits: AtomicU64,
    /// Single-query cache misses.
    pub cache_misses: AtomicU64,
    /// Label decode/store errors observed while serving.
    pub decode_errors: AtomicU64,
    /// TCP connections accepted and served (hl-net daemon).
    pub connections_opened: AtomicU64,
    /// TCP connections turned away at the connection cap.
    pub connections_rejected: AtomicU64,
    /// Request frames handled over the network.
    pub net_requests: AtomicU64,
    /// Error frames sent over the network.
    pub net_errors: AtomicU64,
    /// Per-query latency across both paths.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Queries served over both paths.
    pub fn total_queries(&self) -> u64 {
        self.single_queries.load(Relaxed) + self.batch_queries.load(Relaxed)
    }

    /// Takes a consistent-enough snapshot for rendering. (Counters are
    /// read individually; exact cross-counter consistency is not needed.)
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            single_queries: self.single_queries.load(Relaxed),
            batches: self.batches.load(Relaxed),
            batch_queries: self.batch_queries.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            decode_errors: self.decode_errors.load(Relaxed),
            connections_opened: self.connections_opened.load(Relaxed),
            connections_rejected: self.connections_rejected.load(Relaxed),
            net_requests: self.net_requests.load(Relaxed),
            net_errors: self.net_errors.load(Relaxed),
            latency_count: self.latency.count(),
            p50_ns: self.latency.quantile(0.50),
            p95_ns: self.latency.quantile(0.95),
            p99_ns: self.latency.quantile(0.99),
        }
    }
}

/// A point-in-time copy of [`Metrics`], renderable with `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub single_queries: u64,
    pub batches: u64,
    pub batch_queries: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub decode_errors: u64,
    pub connections_opened: u64,
    pub connections_rejected: u64,
    pub net_requests: u64,
    pub net_errors: u64,
    pub latency_count: u64,
    /// Bucket upper bounds: latency percentiles are exact to a factor of 2.
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

impl MetricsSnapshot {
    /// Queries served over both paths.
    pub fn total_queries(&self) -> u64 {
        self.single_queries + self.batch_queries
    }

    /// Cache hit rate over the single-query path, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let denom = self.cache_hits + self.cache_misses;
        if denom == 0 {
            0.0
        } else {
            self.cache_hits as f64 / denom as f64
        }
    }

    /// Renders the snapshot as the multi-line text block shown by the
    /// `hubserve` and `netbench` CLIs (no trailing newline). The network
    /// lines only appear once the daemon has seen traffic, so in-process
    /// reports stay unchanged.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Writing to a String cannot fail; errors are discarded.
        let _ = writeln!(out, "queries served      {}", self.total_queries());
        let _ = writeln!(out, "  single            {}", self.single_queries);
        let _ = writeln!(
            out,
            "  batched           {} (in {} batches)",
            self.batch_queries, self.batches
        );
        let _ = writeln!(
            out,
            "cache               {} hits / {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate()
        );
        let _ = writeln!(out, "decode errors       {}", self.decode_errors);
        if self.connections_opened + self.connections_rejected + self.net_requests > 0 {
            let _ = writeln!(
                out,
                "connections         {} served / {} rejected",
                self.connections_opened, self.connections_rejected
            );
            let _ = writeln!(
                out,
                "net requests        {} ({} error frames)",
                self.net_requests, self.net_errors
            );
        }
        let _ = writeln!(out, "latency (n={})", self.latency_count);
        let _ = writeln!(out, "  p50  < {} ns", self.p50_ns);
        let _ = writeln!(out, "  p95  < {} ns", self.p95_ns);
        let _ = write!(out, "  p99  < {} ns", self.p99_ns);
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast observations (~100 ns) and 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 128); // 100 ns lands in (64, 128]
        assert!(h.quantile(0.95) >= 1_000_000 / 2);
        assert!(h.quantile(0.99) >= 1_000_000 / 2);
    }

    #[test]
    fn quantile_rank_is_exact_despite_f64_rounding() {
        // 7 observations in bucket 1 and 93 in a higher bucket. The 7%
        // quantile is the 7th observation — still in bucket 1. In f64,
        // 0.07 * 100 = 7.000000000000001, so a bare `ceil` asks for rank
        // 8 and reports the slow bucket instead.
        let h = LatencyHistogram::new();
        for _ in 0..7 {
            h.record(1);
        }
        for _ in 0..93 {
            h.record(1_000);
        }
        assert_eq!(h.quantile(0.07), 2, "rank 7 of 100 is the last 1-ns obs");
        // And `round` alone would be wrong the other way: a genuinely
        // fractional rank must still round *up*. q=0.72 over 10
        // observations is rank ceil(7.2) = 8, not round(7.2) = 7.
        let h = LatencyHistogram::new();
        for _ in 0..7 {
            h.record(1);
        }
        for _ in 0..3 {
            h.record(1_000);
        }
        assert_eq!(h.quantile(0.72), 1024, "rank 8 of 10 is a slow obs");
    }

    #[test]
    fn quantiles_tiny_samples_hand_computed() {
        // n = 1: every quantile is that one observation's bucket.
        let h = LatencyHistogram::new();
        h.record(100); // bucket (64, 128]
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 128, "q={q} with n=1");
        }
        // n = 4 at 1, 10, 100, 1000 ns: nearest-rank places p50 on the
        // 2nd observation, p95/p99/p100 on the 4th, p25 on the 1st.
        let h = LatencyHistogram::new();
        for v in [1, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 2); // rank 1: 1 ns -> bucket (0, 2]
        assert_eq!(h.quantile(0.5), 16); // rank 2: 10 ns -> (8, 16]
        assert_eq!(h.quantile(0.95), 1024); // rank 4: 1000 ns -> (512, 1024]
        assert_eq!(h.quantile(0.99), 1024);
        assert_eq!(h.quantile(1.0), 1024);
    }

    #[test]
    fn quantile_matches_sorted_vector_oracle() {
        // Exact nearest-rank oracle on the raw observations: for q =
        // num/den, the q-quantile is the ceil(q*n)-th smallest observation
        // (rank 1 for q = 0), and the histogram must report that
        // observation's bucket bound. Rational rank arithmetic keeps the
        // oracle itself exempt from the f64 rounding the histogram has to
        // defend against.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 2, 3, 7, 10, 64, 100, 1000] {
            let h = LatencyHistogram::new();
            let mut values: Vec<u64> = (0..n).map(|_| (next() % 1000) << (next() % 30)).collect();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            for den in [1u64, 2, 3, 4, 7, 10, 20, 100] {
                for num in 0..=den {
                    let q = num as f64 / den as f64;
                    let rank =
                        ((num as u128 * n as u128).div_ceil(den as u128) as usize).clamp(1, n);
                    let expect = LatencyHistogram::bucket_bound(LatencyHistogram::bucket_of(
                        values[rank - 1],
                    ));
                    assert_eq!(
                        h.quantile(q),
                        expect,
                        "q={num}/{den} over n={n} must hit rank {rank}"
                    );
                }
            }
        }
        // Single-bucket corner: every observation in one bucket, so every
        // quantile (q=1.0 rank rounding included) reports that bound.
        let h = LatencyHistogram::new();
        for _ in 0..5 {
            h.record(300); // bucket (256, 512]
        }
        for q in [0.0, 0.2, 0.5, 0.9999, 1.0] {
            assert_eq!(h.quantile(q), 512, "q={q} in the single-bucket case");
        }
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn snapshot_totals_add_up() {
        let m = Metrics::new();
        m.single_queries.fetch_add(3, Relaxed);
        m.batch_queries.fetch_add(7, Relaxed);
        m.cache_hits.fetch_add(1, Relaxed);
        m.cache_misses.fetch_add(2, Relaxed);
        let s = m.snapshot();
        assert_eq!(s.total_queries(), 10);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        let rendered = s.to_string();
        assert!(rendered.contains("queries served      10"));
        assert!(rendered.contains("p99"));
    }

    #[test]
    fn render_text_adds_net_lines_only_under_traffic() {
        let m = Metrics::new();
        let quiet = m.snapshot().render_text();
        assert!(!quiet.contains("net requests"));
        m.connections_opened.fetch_add(2, Relaxed);
        m.net_requests.fetch_add(5, Relaxed);
        m.net_errors.fetch_add(1, Relaxed);
        let s = m.snapshot();
        let text = s.render_text();
        assert!(text.contains("connections         2 served / 0 rejected"));
        assert!(text.contains("net requests        5 (1 error frames)"));
        assert_eq!(text, s.to_string(), "Display must match render_text");
    }
}
