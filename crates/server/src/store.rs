//! Versioned binary on-disk store for γ-coded hub labels.
//!
//! The text format of `hl_core::io` is convenient for experiments but slow
//! and bulky to serve from. The binary store keeps each vertex label in the
//! Elias-γ encoding of `hl_labeling::hub_scheme` — the same codec whose
//! bit counts the paper's bounds are stated in — behind an offset table,
//! so a reader can locate any label in O(1) and decode it independently.
//!
//! ## Format (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HLBS"
//! 4       2     format version (currently 1)
//! 6       2     flags (must be 0 in version 1)
//! 8       8     node count n
//! 16      8     body length in bytes
//! 24      8     FNV-1a-64 checksum of the body
//! 32      ...   body
//! ```
//!
//! The body is, in order: `n + 1` byte offsets (u64) into the label blob,
//! `n` bit lengths (u32), then the concatenated label bytes. Label `v`
//! occupies bytes `offsets[v] .. offsets[v + 1]` of the blob and exactly
//! `bit_lens[v]` bits of those bytes.
//!
//! Every read validates magic, version, length and checksum before any
//! label is decoded: a truncated or bit-flipped file yields a typed
//! [`StoreError`], never a wrong distance.

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use hl_core::{FlatLabeling, HubLabel, HubLabeling};
use hl_graph::{Distance, NodeId};
use hl_labeling::bits::BitVec;
use hl_labeling::hub_scheme::{encode_label, try_decode_label_append};
use hl_labeling::scheme::BitLabel;

/// File magic: "Hub Label Binary Store".
pub const MAGIC: [u8; 4] = *b"HLBS";
/// Format version this module (the γ-coded archival encoding) speaks.
/// Version 2, the flat-arena serving encoding, lives in
/// [`crate::store_v2`]; [`crate::any_store::AnyStore`] dispatches on
/// [`format_version`].
pub const VERSION: u16 = 1;
/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 32;

/// Peeks at the magic and format version of a serialized store without
/// parsing the rest — how [`crate::any_store::AnyStore`] picks a reader.
/// Returns whatever version the header declares; rejecting unknown
/// versions is the caller's job.
pub fn format_version(bytes: &[u8]) -> Result<u16, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Truncated {
            expected: 8,
            actual: bytes.len() as u64,
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&bytes[0..4]);
    if magic != MAGIC {
        return Err(StoreError::BadMagic(magic));
    }
    let mut v = [0u8; 2];
    v.copy_from_slice(&bytes[4..6]);
    Ok(u16::from_le_bytes(v))
}

/// Everything that can go wrong opening or reading a store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The first four bytes are not `b"HLBS"` — not a label store.
    BadMagic([u8; 4]),
    /// The file declares a format version this reader does not speak.
    UnsupportedVersion(u16),
    /// Reserved flag bits were set.
    UnsupportedFlags(u16),
    /// The file ends before the declared body does.
    Truncated { expected: u64, actual: u64 },
    /// The body checksum does not match the header.
    ChecksumMismatch { expected: u64, actual: u64 },
    /// The body is internally inconsistent (offsets out of order,
    /// bit lengths disagreeing with byte spans, trailing bytes, ...).
    Corrupt(String),
    /// A query or label access named a vertex the store does not have.
    NodeOutOfRange { node: NodeId, num_nodes: usize },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic(m) => {
                write!(f, "bad magic {m:?}: not a hub label store")
            }
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store version {v}")
            }
            StoreError::UnsupportedFlags(bits) => {
                write!(f, "unsupported flag bits {bits:#06x}")
            }
            StoreError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated store: expected {expected} body bytes, found {actual}"
                )
            }
            StoreError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: header says {expected:#018x}, body hashes to {actual:#018x}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for store with {num_nodes} nodes"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// FNV-1a 64-bit hash; simple, dependency-free, and plenty for
/// detecting accidental corruption (it is not cryptographic).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A validated, in-memory label store: the offset table plus the raw
/// γ-coded label blob. Labels decode lazily per vertex.
#[derive(Debug, Clone)]
pub struct LabelStore {
    num_nodes: usize,
    /// `num_nodes + 1` byte offsets into `blob`.
    offsets: Vec<u64>,
    /// Bit length of each label within its byte span.
    bit_lens: Vec<u32>,
    /// Concatenated label bytes.
    blob: Vec<u8>,
}

impl LabelStore {
    /// Encodes a labeling into store form (in memory).
    pub fn from_labeling(labeling: &HubLabeling) -> Self {
        let n = labeling.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut bit_lens = Vec::with_capacity(n);
        let mut blob = Vec::new();
        offsets.push(0u64);
        for v in 0..n {
            let bits = encode_label(labeling.label(v as NodeId));
            blob.extend_from_slice(bits.bits().as_bytes());
            bit_lens.push(bits.num_bits() as u32);
            offsets.push(blob.len() as u64);
        }
        LabelStore {
            num_nodes: n,
            offsets,
            bit_lens,
            blob,
        }
    }

    /// Re-encodes a flat arena into store form — the v2 → v1 direction of
    /// `hubserve convert`. Labels are γ-encoded one vertex at a time from
    /// the arena slices, so no nested [`HubLabeling`] is materialized.
    /// The encoding is canonical (a deterministic function of the
    /// labeling), which is what makes v1 → v2 → v1 byte-identical.
    pub fn from_flat(flat: &FlatLabeling) -> Self {
        let n = flat.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut bit_lens = Vec::with_capacity(n);
        let mut blob = Vec::new();
        offsets.push(0u64);
        for v in 0..n {
            let label: HubLabel = flat.pairs_of(v as NodeId).collect();
            let bits = encode_label(&label);
            blob.extend_from_slice(bits.bits().as_bytes());
            bit_lens.push(bits.num_bits() as u32);
            offsets.push(blob.len() as u64);
        }
        LabelStore {
            num_nodes: n,
            offsets,
            bit_lens,
            blob,
        }
    }

    /// Number of vertices the store holds labels for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Per-section byte sizes of the serialized body, for stats
    /// reporting: the offset table, the bit-length table, and the γ-coded
    /// label blob (v1's sections; v2 reports offsets/hubs/dists).
    pub fn section_bytes(&self) -> [(&'static str, u64); 3] {
        [
            ("offsets", (self.num_nodes as u64 + 1) * 8),
            ("bit_lens", self.num_nodes as u64 * 4),
            ("blob", self.blob.len() as u64),
        ]
    }

    /// Total size of the label blob in bytes (excluding tables and header).
    pub fn blob_len(&self) -> usize {
        self.blob.len()
    }

    /// Total γ-coded size of all labels in bits.
    pub fn total_bits(&self) -> u64 {
        self.bit_lens.iter().map(|&b| b as u64).sum()
    }

    /// Size of the serialized file in bytes.
    pub fn file_len(&self) -> usize {
        HEADER_LEN + self.body_len()
    }

    fn body_len(&self) -> usize {
        (self.num_nodes + 1) * 8 + self.num_nodes * 4 + self.blob.len()
    }

    fn check_node(&self, v: NodeId) -> Result<usize, StoreError> {
        let idx = v as usize;
        if idx >= self.num_nodes {
            return Err(StoreError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes,
            });
        }
        Ok(idx)
    }

    /// The γ-coded label of vertex `v`, without decoding it.
    pub fn bit_label(&self, v: NodeId) -> Result<BitLabel, StoreError> {
        let idx = self.check_node(v)?;
        // The offsets were range-checked against the blob during parse(),
        // but they are still decoded-from-disk values: narrow them with
        // try_from so a 32-bit target cannot silently truncate.
        let lo = usize::try_from(self.offsets[idx])
            .map_err(|_| StoreError::Corrupt(format!("label {v}: offset overflows usize")))?;
        let hi = usize::try_from(self.offsets[idx + 1])
            .map_err(|_| StoreError::Corrupt(format!("label {v}: offset overflows usize")))?;
        let len = self.bit_lens[idx] as usize;
        let bits = BitVec::from_bytes(self.blob[lo..hi].to_vec(), len).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "label {v}: bit length {len} inconsistent with {} bytes",
                hi - lo
            ))
        })?;
        Ok(BitLabel::new(bits))
    }

    /// Decodes the hub label of vertex `v`.
    ///
    /// The γ bits are treated as *untrusted* even though the checksum
    /// matched: a checksum only catches accidents, and a crafted store
    /// can carry any bit pattern behind a freshly computed FNV. Malformed
    /// codes, lying entry counts, hub-id overflow and out-of-range hub
    /// ids are all [`StoreError::Corrupt`], never a panic or a runaway
    /// allocation.
    pub fn decode_label(&self, v: NodeId) -> Result<HubLabel, StoreError> {
        let mut hubs = Vec::new();
        let mut dists = Vec::new();
        self.decode_label_into(v, &mut hubs, &mut dists)?;
        Ok(HubLabel::from_pairs(hubs.into_iter().zip(dists).collect()))
    }

    /// Checked decode of label `v` appended into caller buffers — the
    /// allocation-free path [`LabelStore::to_flat`] iterates.
    fn decode_label_into(
        &self,
        v: NodeId,
        hubs: &mut Vec<NodeId>,
        dists: &mut Vec<Distance>,
    ) -> Result<(), StoreError> {
        let start = hubs.len();
        try_decode_label_append(&self.bit_label(v)?, hubs, dists)
            .map_err(|e| StoreError::Corrupt(format!("label {v}: {e}")))?;
        if let Some(&hub) = hubs[start..].iter().last() {
            // Gap coding keeps hubs strictly increasing, so checking the
            // last one bounds them all.
            if hub as usize >= self.num_nodes {
                hubs.truncate(start);
                dists.truncate(start);
                return Err(StoreError::Corrupt(format!(
                    "label {v}: hub {hub} out of range for {} nodes",
                    self.num_nodes
                )));
            }
        }
        Ok(())
    }

    /// Decodes every label back into a [`HubLabeling`] (the nested,
    /// construction-time form — two heap vectors per vertex).
    pub fn to_labeling(&self) -> Result<HubLabeling, StoreError> {
        let mut labels = Vec::with_capacity(self.num_nodes);
        for v in 0..self.num_nodes {
            labels.push(self.decode_label(v as NodeId)?);
        }
        Ok(HubLabeling::from_labels(labels))
    }

    /// Decodes every label straight into a [`FlatLabeling`] arena — the
    /// canonical query-time form. One pass over the γ-coded blob; each
    /// label decodes into a reused scratch pair and is appended to the
    /// arena, so no per-vertex `HubLabel` (or any other per-vertex heap
    /// allocation) is ever built. This is how [`crate::QueryEngine`]
    /// loads a store.
    pub fn to_flat(&self) -> Result<FlatLabeling, StoreError> {
        let mut flat = FlatLabeling::with_capacity(self.num_nodes, 0);
        let mut hubs: Vec<NodeId> = Vec::new();
        let mut dists: Vec<Distance> = Vec::new();
        for v in 0..self.num_nodes {
            hubs.clear();
            dists.clear();
            self.decode_label_into(v as NodeId, &mut hubs, &mut dists)?;
            flat.push_label(&hubs, &dists);
        }
        Ok(flat)
    }

    /// Answers a distance query straight from the stored labels.
    pub fn query(&self, u: NodeId, v: NodeId) -> Result<Distance, StoreError> {
        let lu = self.decode_label(u)?;
        let lv = self.decode_label(v)?;
        Ok(lu.join(&lv))
    }

    /// Serializes the store to a writer.
    pub fn write_to<W: Write>(&self, mut out: W) -> Result<(), StoreError> {
        let mut body = Vec::with_capacity(self.body_len());
        for &off in &self.offsets {
            body.extend_from_slice(&off.to_le_bytes());
        }
        for &bl in &self.bit_lens {
            body.extend_from_slice(&bl.to_le_bytes());
        }
        body.extend_from_slice(&self.blob);

        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?; // flags
        out.write_all(&(self.num_nodes as u64).to_le_bytes())?;
        out.write_all(&(body.len() as u64).to_le_bytes())?;
        out.write_all(&fnv1a64(&body).to_le_bytes())?;
        out.write_all(&body)?;
        out.flush()?;
        Ok(())
    }

    /// Serializes the store to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), StoreError> {
        let file = File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Reads and fully validates a store from a reader.
    pub fn read_from<R: Read>(mut input: R) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        Self::parse(&bytes)
    }

    /// Reads and fully validates a store from a file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        Self::read_from(File::open(path)?)
    }

    /// Parses and validates a serialized store.
    pub fn parse(bytes: &[u8]) -> Result<Self, StoreError> {
        /// Reads an `N`-byte field at `at`; a short or out-of-bounds read
        /// is `StoreError::Corrupt`, never a slice-index panic.
        fn fixed<const N: usize>(bytes: &[u8], at: usize) -> Result<[u8; N], StoreError> {
            at.checked_add(N)
                .and_then(|end| bytes.get(at..end))
                .and_then(|s| <[u8; N]>::try_from(s).ok())
                .ok_or_else(|| {
                    StoreError::Corrupt(format!("truncated read of {N} bytes at offset {at}"))
                })
        }

        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                expected: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        let magic: [u8; 4] = fixed(bytes, 0)?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(fixed(bytes, 4)?);
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let flags = u16::from_le_bytes(fixed(bytes, 6)?);
        if flags != 0 {
            return Err(StoreError::UnsupportedFlags(flags));
        }
        let n = u64::from_le_bytes(fixed(bytes, 8)?);
        let body_len = u64::from_le_bytes(fixed(bytes, 16)?);
        let checksum = u64::from_le_bytes(fixed(bytes, 24)?);

        let n_usize = usize::try_from(n)
            .map_err(|_| StoreError::Corrupt(format!("node count {n} exceeds address space")))?;
        let actual_body = (bytes.len() - HEADER_LEN) as u64;
        if actual_body < body_len {
            return Err(StoreError::Truncated {
                expected: body_len,
                actual: actual_body,
            });
        }
        if actual_body > body_len {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after declared body",
                actual_body - body_len
            )));
        }
        let body = &bytes[HEADER_LEN..];
        let actual_checksum = fnv1a64(body);
        if actual_checksum != checksum {
            return Err(StoreError::ChecksumMismatch {
                expected: checksum,
                actual: actual_checksum,
            });
        }

        // Tables: (n + 1) u64 offsets, n u32 bit lengths, then the blob.
        // Even the `n + 1` must be checked: n = usize::MAX would wrap it.
        let tables_len = n_usize
            .checked_add(1)
            .and_then(|c| c.checked_mul(8))
            .and_then(|o| o.checked_add(n_usize.checked_mul(4)?))
            .ok_or_else(|| StoreError::Corrupt(format!("node count {n} overflows table size")))?;
        if body.len() < tables_len {
            return Err(StoreError::Corrupt(format!(
                "body too small for offset tables: {} < {tables_len}",
                body.len()
            )));
        }
        let mut offsets = Vec::with_capacity(n_usize + 1);
        for i in 0..=n_usize {
            offsets.push(u64::from_le_bytes(fixed(body, i * 8)?));
        }
        let bl_base = (n_usize + 1) * 8;
        let mut bit_lens = Vec::with_capacity(n_usize);
        for i in 0..n_usize {
            bit_lens.push(u32::from_le_bytes(fixed(body, bl_base + i * 4)?));
        }
        let blob = body[tables_len..].to_vec();

        if offsets[0] != 0 {
            return Err(StoreError::Corrupt(format!(
                "first offset is {}, not 0",
                offsets[0]
            )));
        }
        if offsets[n_usize] != blob.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "final offset {} does not match blob length {}",
                offsets[n_usize],
                blob.len()
            )));
        }
        for v in 0..n_usize {
            let lo = offsets[v];
            let hi = offsets[v + 1];
            if lo > hi {
                return Err(StoreError::Corrupt(format!(
                    "offsets out of order at label {v}: {lo} > {hi}"
                )));
            }
            let span = hi - lo;
            let need = (bit_lens[v] as u64).div_ceil(8);
            if span != need {
                return Err(StoreError::Corrupt(format!(
                    "label {v}: {} bits need {need} bytes but span is {span}",
                    bit_lens[v]
                )));
            }
        }

        Ok(LabelStore {
            num_nodes: n_usize,
            offsets,
            bit_lens,
            blob,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    fn sample_store() -> (HubLabeling, LabelStore) {
        let g = generators::grid(5, 6);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let store = LabelStore::from_labeling(&hl);
        (hl, store)
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn roundtrip_in_memory() {
        let (hl, store) = sample_store();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let back = LabelStore::parse(&buf).unwrap();
        assert_eq!(back.num_nodes(), hl.num_nodes());
        let decoded = back.to_labeling().unwrap();
        assert_eq!(decoded, hl);
    }

    #[test]
    fn to_flat_matches_nested_decode() {
        let (hl, store) = sample_store();
        let flat = store.to_flat().unwrap();
        assert_eq!(flat.to_labeling(), hl);
        assert_eq!(flat, hl_core::FlatLabeling::from_labeling(&hl));
        assert_eq!(flat.num_entries(), hl.total_hubs());
    }

    #[test]
    fn query_matches_labeling() {
        let (hl, store) = sample_store();
        let n = hl.num_nodes() as NodeId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(store.query(u, v).unwrap(), hl.query(u, v));
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let (_, store) = sample_store();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            LabelStore::parse(&buf),
            Err(StoreError::BadMagic(_))
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let (_, store) = sample_store();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(
            LabelStore::parse(&buf),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let (_, store) = sample_store();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        for cut in [
            0,
            3,
            HEADER_LEN - 1,
            HEADER_LEN,
            buf.len() / 2,
            buf.len() - 1,
        ] {
            assert!(
                LabelStore::parse(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn flipped_body_byte_rejected() {
        let (_, store) = sample_store();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let mid = HEADER_LEN + (buf.len() - HEADER_LEN) / 2;
        buf[mid] ^= 0x40;
        assert!(matches!(
            LabelStore::parse(&buf),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (_, store) = sample_store();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        buf.extend_from_slice(b"junk");
        assert!(matches!(
            LabelStore::parse(&buf),
            Err(StoreError::Corrupt(_))
        ));
    }

    /// Rewrites the header checksum to match the (possibly corrupted)
    /// body — what a *crafted* store does, as opposed to an accidentally
    /// bit-flipped one.
    fn refresh_checksum(buf: &mut [u8]) {
        let sum = fnv1a64(&buf[HEADER_LEN..]);
        buf[24..32].copy_from_slice(&sum.to_le_bytes());
    }

    /// A checksum-valid header claiming `n` nodes over an empty body.
    fn crafted_header(n: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // body_len = 0
        buf.extend_from_slice(&fnv1a64(b"").to_le_bytes());
        buf
    }

    #[test]
    fn crafted_huge_node_count_is_rejected_before_allocation() {
        // A lying node count must be rejected against the actual body
        // size *before* the offset tables are allocated — the exact shape
        // the untrusted-length-alloc lint guards. A terabyte-scale table
        // claim over a 0-byte body would OOM a trusting parser.
        let err = LabelStore::parse(&crafted_header(1 << 40)).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt(ref m) if m.contains("body too small")),
            "{err:?}"
        );
    }

    #[test]
    fn crafted_overflowing_node_count_is_corrupt_not_panic() {
        // n = u64::MAX overflows the table-size arithmetic itself; the
        // checked math must turn that into Corrupt, not a wrap-around
        // that under-allocates.
        let err = LabelStore::parse(&crafted_header(u64::MAX)).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn crafted_garbage_label_bits_are_corrupt_not_panic() {
        // A checksum-valid file whose γ blob is all zeros: the offset
        // tables parse fine, but every label's count code is an
        // unterminated unary run. Found by the hlnp-fuzz store campaign —
        // the trusting decoder panicked in `BitVec::get`.
        let (_, store) = sample_store();
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let blob_base = HEADER_LEN + (store.num_nodes() + 1) * 8 + store.num_nodes() * 4;
        for b in &mut buf[blob_base..] {
            *b = 0;
        }
        refresh_checksum(&mut buf);
        let crafted = LabelStore::parse(&buf).expect("structurally valid store must parse");
        for v in 0..crafted.num_nodes() as NodeId {
            if crafted.bit_lens[v as usize] == 0 {
                continue; // an empty label decodes to an empty hub set
            }
            assert!(
                matches!(crafted.decode_label(v), Err(StoreError::Corrupt(_))),
                "garbage bits for label {v} must be a typed error"
            );
        }
        assert!(matches!(crafted.to_flat(), Err(StoreError::Corrupt(_))));
        assert!(matches!(crafted.query(0, 1), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn crafted_out_of_range_hub_id_rejected() {
        // A store whose γ bits decode cleanly but name a hub id past the
        // store's own node count: a query against it would index out of
        // the label universe. Must be Corrupt, not a wrong answer.
        let labels = vec![
            HubLabel::from_pairs(vec![(0, 0)]),
            HubLabel::from_pairs(vec![(0, 1), (9, 0)]), // hub 9 in a 2-node store
        ];
        let store = LabelStore::from_labeling(&HubLabeling::from_labels(labels));
        assert!(store.decode_label(0).is_ok());
        assert!(matches!(store.decode_label(1), Err(StoreError::Corrupt(_))));
        assert!(matches!(store.to_flat(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn node_out_of_range() {
        let (_, store) = sample_store();
        let n = store.num_nodes() as NodeId;
        assert!(matches!(
            store.query(0, n),
            Err(StoreError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            store.decode_label(n + 7),
            Err(StoreError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_labeling_roundtrips() {
        let hl = HubLabeling::empty(0);
        let store = LabelStore::from_labeling(&hl);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let back = LabelStore::parse(&buf).unwrap();
        assert_eq!(back.num_nodes(), 0);
        assert!(back.to_labeling().unwrap().num_nodes() == 0);
    }
}
