//! Version dispatch over the HLBS store family.
//!
//! Both formats share the magic and the header prefix through the version
//! field; [`AnyStore`] peeks at that field
//! ([`crate::store::format_version`]) and hands the bytes to the right
//! reader. Serving code (`hubserve serve`, `query`, `stats`, the reload
//! path) goes through this type so a daemon can mount either encoding —
//! v1 as the compact archival form, v2 as the load-is-a-read serving
//! form.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use hl_core::FlatLabeling;

use crate::served::ServedLabeling;
use crate::store::{self, LabelStore, StoreError};
use crate::store_v2::{self, CompactStore, FlatStore};

/// A parsed store of either format version (and, for v2, either flavor).
#[derive(Debug, Clone)]
pub enum AnyStore {
    /// HLBS v1: γ-coded labels behind an offset table.
    V1(LabelStore),
    /// HLBS v2, flat flavor: the flat arena laid out verbatim.
    V2(FlatStore),
    /// HLBS v2, compact flavor: delta-coded hubs and narrow distances.
    V2Compact(CompactStore),
}

impl AnyStore {
    /// Parses a serialized store of either version, fully validated. For
    /// v2 the header flag word picks the flavor ([`store_v2::FLAG_COMPACT`]).
    pub fn parse(bytes: &[u8]) -> Result<Self, StoreError> {
        match store::format_version(bytes)? {
            store::VERSION => Ok(AnyStore::V1(LabelStore::parse(bytes)?)),
            store_v2::VERSION => {
                if store_v2::header_flags(bytes)? & store_v2::FLAG_COMPACT != 0 {
                    Ok(AnyStore::V2Compact(CompactStore::parse(bytes)?))
                } else {
                    Ok(AnyStore::V2(FlatStore::parse(bytes)?))
                }
            }
            other => Err(StoreError::UnsupportedVersion(other)),
        }
    }

    /// Reads and validates a store from a reader.
    pub fn read_from<R: Read>(mut input: R) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        Self::parse(&bytes)
    }

    /// Reads and validates a store from a file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        Self::read_from(File::open(path)?)
    }

    /// The format version of this store.
    pub fn version(&self) -> u16 {
        match self {
            AnyStore::V1(_) => store::VERSION,
            AnyStore::V2(_) | AnyStore::V2Compact(_) => store_v2::VERSION,
        }
    }

    /// Short flavor tag for stats and CLI output: `"v1"`, `"v2"`, or
    /// `"v2c"` (the compact flavor).
    pub fn flavor(&self) -> &'static str {
        match self {
            AnyStore::V1(_) => "v1",
            AnyStore::V2(_) => "v2",
            AnyStore::V2Compact(_) => "v2c",
        }
    }

    /// Number of vertices the store holds labels for.
    pub fn num_nodes(&self) -> usize {
        match self {
            AnyStore::V1(s) => s.num_nodes(),
            AnyStore::V2(s) => s.num_nodes(),
            AnyStore::V2Compact(s) => s.num_nodes(),
        }
    }

    /// Size of the serialized file in bytes.
    pub fn file_len(&self) -> u64 {
        match self {
            AnyStore::V1(s) => s.file_len() as u64,
            AnyStore::V2(s) => s.file_len(),
            AnyStore::V2Compact(s) => s.file_len(),
        }
    }

    /// Per-section byte sizes (v1: offsets/bit_lens/blob; v2 flavors:
    /// offsets/hubs/dists), for stats reporting.
    pub fn section_bytes(&self) -> [(&'static str, u64); 3] {
        match self {
            AnyStore::V1(s) => s.section_bytes(),
            AnyStore::V2(s) => s.section_bytes(),
            AnyStore::V2Compact(s) => s.section_bytes(),
        }
    }

    /// Converts into the canonical query-time arena. For v1 this γ-decodes
    /// every label (the untrusted-decode path, so it can fail on a crafted
    /// store); for v2 the arena is already built and moves out for free;
    /// the compact flavor expands its delta lanes.
    pub fn into_flat(self) -> Result<FlatLabeling, StoreError> {
        match self {
            AnyStore::V1(s) => s.to_flat(),
            AnyStore::V2(s) => Ok(s.into_flat()),
            AnyStore::V2Compact(s) => Ok(s.into_compact().to_flat()),
        }
    }

    /// Converts into the arena the engine mounts, preserving the store's
    /// native form: the compact flavor stays compact (no expansion — the
    /// whole point of serving it), everything else lands flat.
    pub fn into_served(self) -> Result<ServedLabeling, StoreError> {
        match self {
            AnyStore::V1(s) => Ok(ServedLabeling::Flat(s.to_flat()?)),
            AnyStore::V2(s) => Ok(ServedLabeling::Flat(s.into_flat())),
            AnyStore::V2Compact(s) => Ok(ServedLabeling::Compact(s.into_compact())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::pll::PrunedLandmarkLabeling;
    use hl_core::HubLabeling;
    use hl_graph::generators;

    fn sample() -> (HubLabeling, FlatLabeling) {
        let g = generators::connected_gnm(60, 60, 5);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let flat = FlatLabeling::from_labeling(&hl);
        (hl, flat)
    }

    #[test]
    fn dispatches_both_versions() {
        let (hl, flat) = sample();
        let mut v1_bytes = Vec::new();
        LabelStore::from_labeling(&hl)
            .write_to(&mut v1_bytes)
            .unwrap();
        let v2_bytes = FlatStore::from_flat(flat.clone()).encode();

        let v1 = AnyStore::parse(&v1_bytes).unwrap();
        assert_eq!(v1.version(), 1);
        assert_eq!(v1.num_nodes(), flat.num_nodes());
        assert_eq!(v1.file_len(), v1_bytes.len() as u64);
        assert_eq!(v1.into_flat().unwrap(), flat);

        let v2 = AnyStore::parse(&v2_bytes).unwrap();
        assert_eq!(v2.version(), 2);
        assert_eq!(v2.file_len(), v2_bytes.len() as u64);
        assert_eq!(v2.into_flat().unwrap(), flat);
    }

    #[test]
    fn dispatches_compact_flavor() {
        let (_, flat) = sample();
        let compact = hl_core::CompactLabeling::from_flat(&flat).unwrap();
        let bytes = CompactStore::from_compact(compact.clone()).encode();
        let any = AnyStore::parse(&bytes).unwrap();
        assert_eq!(any.version(), 2);
        assert_eq!(any.flavor(), "v2c");
        assert_eq!(any.num_nodes(), flat.num_nodes());
        assert_eq!(any.file_len(), bytes.len() as u64);
        // into_served keeps the native compact arena; into_flat expands.
        match AnyStore::parse(&bytes).unwrap().into_served().unwrap() {
            ServedLabeling::Compact(c) => assert_eq!(c, compact),
            other => panic!("expected compact arena, got {}", other.kind()),
        }
        assert_eq!(any.into_flat().unwrap(), flat);
        // The flat flavors report their own tags.
        let v2 = AnyStore::parse(&FlatStore::from_flat(flat.clone()).encode()).unwrap();
        assert_eq!(v2.flavor(), "v2");
        assert!(matches!(
            v2.into_served().unwrap(),
            ServedLabeling::Flat(f) if f == flat
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let (hl, _) = sample();
        let mut bytes = Vec::new();
        LabelStore::from_labeling(&hl).write_to(&mut bytes).unwrap();
        bytes[4] = 77;
        assert!(matches!(
            AnyStore::parse(&bytes),
            Err(StoreError::UnsupportedVersion(77))
        ));
    }

    #[test]
    fn format_version_peek() {
        assert!(matches!(
            store::format_version(b"HLB"),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            store::format_version(b"NOPE0000"),
            Err(StoreError::BadMagic(_))
        ));
        let (_, flat) = sample();
        let bytes = FlatStore::from_flat(flat).encode();
        assert_eq!(store::format_version(&bytes).unwrap(), 2);
    }

    #[test]
    fn v1_v2_v1_is_byte_identical() {
        // The convert round-trip contract: γ-encoding is a canonical
        // function of the labeling, so decoding v1 to the arena and
        // re-encoding reproduces the original file exactly.
        let (hl, _) = sample();
        let mut v1_bytes = Vec::new();
        LabelStore::from_labeling(&hl)
            .write_to(&mut v1_bytes)
            .unwrap();

        let flat = AnyStore::parse(&v1_bytes).unwrap().into_flat().unwrap();
        let v2_bytes = FlatStore::from_flat(flat).encode();
        let flat_back = AnyStore::parse(&v2_bytes).unwrap().into_flat().unwrap();
        let mut v1_again = Vec::new();
        LabelStore::from_flat(&flat_back)
            .write_to(&mut v1_again)
            .unwrap();
        assert_eq!(v1_again, v1_bytes);

        // And v2 → v1 → v2 is byte-identical too.
        let v2_again =
            FlatStore::from_flat(AnyStore::parse(&v1_again).unwrap().into_flat().unwrap()).encode();
        assert_eq!(v2_again, v2_bytes);
    }
}
