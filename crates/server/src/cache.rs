//! A sharded LRU cache for distance answers.
//!
//! Point queries in a serving workload are heavily skewed, so a small cache
//! in front of label decoding pays for itself. The cache is sharded to keep
//! lock contention low under the engine's worker pool: each shard is an
//! independent LRU behind its own mutex, and keys hash to shards with a
//! multiplicative mix so adjacent vertex pairs spread out.
//!
//! Shards store entries in a plain `Vec` threaded into an intrusive
//! doubly-linked list (indices, not pointers), so an LRU touch is a few
//! index swaps and no allocation.
//!
//! Every shard counts its own hits, misses, insertions and evictions
//! under the shard lock ([`CacheStats`]), so the cache is self-auditing:
//! `hits + misses` equals the number of lookups ever made and
//! `insertions - evictions` equals the current occupancy, exactly, even
//! under concurrent churn.

use std::collections::HashMap;
use std::sync::Mutex;

use hl_graph::sync::lock_unpoisoned;
use hl_graph::Distance;

const NIL: usize = usize::MAX;

struct Entry {
    key: u64,
    value: Distance,
    prev: usize,
    next: usize,
}

struct LruShard {
    map: HashMap<u64, usize>,
    entries: Vec<Entry>,
    head: usize,
    tail: usize,
    capacity: usize,
    stats: CacheStats,
}

/// Point-in-time counters for a cache (or one shard of it). Maintained
/// under the shard lock, so within a shard they are exactly consistent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// New entries added (refreshing an existing key does not count).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        // A zero-capacity shard would make `insert`'s eviction arm index
        // `entries[NIL]`: with `entries.len() == capacity == 0` the "full"
        // branch runs while `tail` is still NIL. Floor at one entry so the
        // invariant "full shard => non-empty list" holds for every caller.
        let capacity = capacity.max(1);
        LruShard {
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.entries[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entries[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: u64) -> Option<Distance> {
        let Some(&idx) = self.map.get(&key) else {
            self.stats.misses += 1;
            return None;
        };
        self.stats.hits += 1;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.entries[idx].value)
    }

    fn insert(&mut self, key: u64, value: Distance) {
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        self.stats.insertions += 1;
        let idx = if self.entries.len() < self.capacity {
            self.entries.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.entries.len() - 1
        } else {
            // Evict the least-recently-used entry and reuse its slot.
            self.stats.evictions += 1;
            let idx = self.tail;
            self.unlink(idx);
            self.map.remove(&self.entries[idx].key);
            self.entries[idx].key = key;
            self.entries[idx].value = value;
            idx
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A thread-safe LRU cache split over power-of-two many shards.
pub struct ShardedLruCache {
    shards: Vec<Mutex<LruShard>>,
    mask: u64,
}

impl ShardedLruCache {
    /// Creates a cache holding about `capacity` entries across `shards`
    /// shards. The shard count is rounded up to a power of two; every
    /// shard holds at least one entry, so the effective floor on the
    /// total capacity is the rounded shard count — `new(0, 8)` is a
    /// working 8-entry cache, not a cache that panics on first insert.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedLruCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            mask: shards as u64 - 1,
        }
    }

    /// Packs an unordered vertex pair into a cache key. Normalizing to
    /// `(min, max)` means `(u, v)` and `(v, u)` share an entry, which is
    /// sound because all labelings here answer symmetric distances.
    pub fn pair_key(u: u32, v: u32) -> u64 {
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        (lo as u64) << 32 | hi as u64
    }

    fn shard(&self, key: u64) -> &Mutex<LruShard> {
        // Fibonacci hashing spreads sequential keys across shards.
        let mixed = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        &self.shards[(mixed & self.mask) as usize]
    }

    /// Looks up a key, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<Distance> {
        lock_unpoisoned(self.shard(key)).get(key)
    }

    /// Inserts or refreshes a key, evicting the shard's LRU entry if full.
    pub fn insert(&self, key: u64, value: Distance) {
        lock_unpoisoned(self.shard(key)).insert(key, value)
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_unpoisoned(s).len()).sum()
    }

    /// Aggregated counters across all shards. Each shard's contribution
    /// is exact; the sum is a consistent-enough snapshot under load.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.add(&lock_unpoisoned(shard).stats);
        }
        total
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let cache = ShardedLruCache::new(64, 4);
        assert_eq!(cache.get(7), None);
        cache.insert(7, 42);
        assert_eq!(cache.get(7), Some(42));
        cache.insert(7, 43);
        assert_eq!(cache.get(7), Some(43));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn pair_key_is_symmetric() {
        assert_eq!(
            ShardedLruCache::pair_key(3, 9),
            ShardedLruCache::pair_key(9, 3)
        );
        assert_ne!(
            ShardedLruCache::pair_key(3, 9),
            ShardedLruCache::pair_key(3, 8)
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        // Single shard of capacity 2 makes the eviction order observable.
        let cache = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(1), Some(10)); // 2 is now LRU
        cache.insert(3, 30);
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.get(3), Some(30));
    }

    #[test]
    fn zero_capacity_shard_still_works() {
        // Regression: a shard constructed with capacity 0 used to take
        // the eviction arm on its *first* insert — `entries` was "full"
        // at length 0 — and index `entries[NIL]`. The floor in
        // `LruShard::new` makes it a one-entry LRU instead.
        let mut shard = LruShard::new(0);
        shard.insert(1, 10);
        shard.insert(2, 20); // second insert exercises the eviction arm
        assert_eq!(shard.get(2), Some(20));
        assert_eq!(shard.get(1), None, "older entry was evicted");
        assert_eq!(shard.len(), 1);
    }

    #[test]
    fn capacity_smaller_than_shard_count_survives_churn() {
        // `new(3, 8)` hands each of 8 shards ceil(3/8) = 1 entry;
        // `new(0, 8)` relies on the documented floor. Both must absorb
        // heavy churn (every shard's eviction path) without panicking.
        for cache in [ShardedLruCache::new(0, 8), ShardedLruCache::new(3, 8)] {
            for k in 0..1_000u64 {
                cache.insert(k, k);
            }
            assert!(cache.len() <= 8, "one entry per shard at most");
            let stats = cache.stats();
            assert_eq!(stats.insertions - stats.evictions, cache.len() as u64);
        }
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let cache = ShardedLruCache::new(128, 8);
        for k in 0..10_000u64 {
            cache.insert(k, k * 2);
        }
        assert!(cache.len() <= 128 + 8); // per-shard rounding slack
                                         // The most recent keys per shard must still be present.
        let mut hits = 0;
        for k in 9_900..10_000u64 {
            if cache.get(k) == Some(k * 2) {
                hits += 1;
            }
        }
        assert!(hits > 0);
    }
}
