//! The epoch-swap contract under fire: queries hammering the engine from
//! several threads while the served labeling is reloaded over and over
//! must only ever see answers that are exactly right for *one of the two
//! valid stores* — never a mix, never an error, never a panic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::FlatLabeling;
use hl_graph::{generators, Distance, NodeId};
use hl_server::QueryEngine;

/// Two stores over *different* graphs on the same vertex set, so most
/// pairs have different true distances and a cross-epoch mixup is
/// observable.
fn two_stores() -> (FlatLabeling, FlatLabeling) {
    let g1 = generators::grid(8, 8);
    let g2 = generators::connected_gnm(64, 80, 42);
    let f1 = FlatLabeling::from(PrunedLandmarkLabeling::by_degree(&g1).into_labeling());
    let f2 = FlatLabeling::from(PrunedLandmarkLabeling::by_degree(&g2).into_labeling());
    (f1, f2)
}

#[test]
fn queries_never_mix_epochs_across_50_reloads() {
    let (f1, f2) = two_stores();
    let n = f1.num_nodes() as NodeId;
    assert_eq!(f2.num_nodes(), f1.num_nodes());

    // Ground truth per store for every pair.
    let truth = |f: &FlatLabeling| -> Vec<Distance> {
        (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, v)))
            .map(|(u, v)| f.query(u, v))
            .collect()
    };
    let (t1, t2) = (truth(&f1), truth(&f2));

    let engine = Arc::new(QueryEngine::new(f1.clone(), 2).expect("engine"));
    let stop = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicU64::new(0));

    let mut hammers = Vec::new();
    for t in 0..4u64 {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let checked = Arc::clone(&checked);
        let (t1, t2) = (t1.clone(), t2.clone());
        hammers.push(std::thread::spawn(move || {
            let mut x = t.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut rng = move || {
                // xorshift64*, plenty for picking pairs
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            while !stop.load(Ordering::Relaxed) {
                let u = (rng() % n as u64) as NodeId;
                let v = (rng() % n as u64) as NodeId;
                let at = u as usize * n as usize + v as usize;

                // Single-query path: the answer must match one store.
                let d = engine.query(u, v).expect("query must not error");
                assert!(
                    d == t1[at] || d == t2[at],
                    "d({u},{v}) = {d} matches neither store ({} / {})",
                    t1[at],
                    t2[at]
                );

                // Batch path: the whole batch must come from ONE epoch.
                let pairs: Vec<(NodeId, NodeId)> = (0..32)
                    .map(|_| ((rng() % n as u64) as NodeId, (rng() % n as u64) as NodeId))
                    .collect();
                let got = engine.query_batch(&pairs).expect("batch must not error");
                let from = |t: &[Distance]| {
                    pairs
                        .iter()
                        .zip(&got)
                        .all(|(&(u, v), &d)| d == t[u as usize * n as usize + v as usize])
                };
                assert!(
                    from(&t1) || from(&t2),
                    "batch mixed epochs or matched neither store"
                );
                checked.fetch_add(1 + pairs.len() as u64, Ordering::Relaxed);
            }
        }));
    }

    // 50 reloads alternating between the two stores, racing the hammers.
    let mut serial = 0;
    for i in 0..50 {
        let next = if i % 2 == 0 { f2.clone() } else { f1.clone() };
        let got = engine.reload(next);
        assert_eq!(got, serial + 1, "epoch serials must increment by one");
        serial = got;
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(engine.epoch(), 50);

    stop.store(true, Ordering::Relaxed);
    for h in hammers {
        h.join().expect("hammer thread must not panic");
    }
    // The race has to have actually exercised queries to mean anything.
    assert!(
        checked.load(Ordering::Relaxed) > 1000,
        "hammers barely ran; the test proved nothing"
    );
}

#[test]
fn reload_replaces_answers_and_clears_cache() {
    let (f1, f2) = two_stores();
    let engine = QueryEngine::new(f1.clone(), 1).expect("engine");
    assert_eq!(engine.epoch(), 0);

    // Find a pair whose distance differs across the stores, prime the
    // cache with the old answer, then reload: the cached entry must not
    // survive into the new epoch.
    let n = f1.num_nodes() as NodeId;
    let (u, v) = (0..n)
        .flat_map(|u| (0..n).map(move |v| (u, v)))
        .find(|&(u, v)| f1.query(u, v) != f2.query(u, v))
        .expect("stores must disagree somewhere");
    assert_eq!(engine.query(u, v).unwrap(), f1.query(u, v));
    assert_eq!(engine.query(u, v).unwrap(), f1.query(u, v)); // cached

    assert_eq!(engine.reload(f2.clone()), 1);
    assert_eq!(engine.epoch(), 1);
    assert_eq!(
        engine.query(u, v).unwrap(),
        f2.query(u, v),
        "stale cache entry served across a reload"
    );
}

#[test]
fn reload_can_change_node_count() {
    let small = FlatLabeling::from(
        PrunedLandmarkLabeling::by_degree(&generators::grid(3, 3)).into_labeling(),
    );
    let big = FlatLabeling::from(
        PrunedLandmarkLabeling::by_degree(&generators::grid(10, 10)).into_labeling(),
    );
    let engine = QueryEngine::new(small, 2).expect("engine");
    assert_eq!(engine.num_nodes(), 9);
    assert!(engine.query(0, 50).is_err());
    engine.reload(big);
    assert_eq!(engine.num_nodes(), 100);
    assert!(engine.query(0, 50).is_ok());
    let (hubs, dists) = engine.label_of(99).expect("label fetch");
    assert_eq!(hubs.len(), dists.len());
    assert!(!hubs.is_empty());
}
