//! Store round-trips across graph families, and corruption safety on disk:
//! a damaged store file must produce a typed error, never a wrong distance.

use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::dijkstra::dijkstra_distances;
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, Graph, NodeId};
use hl_lowerbound::{GadgetParams, HGraph};
use hl_server::{LabelStore, StoreError};

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("grid-7x8", generators::grid(7, 8)),
        ("tree-60", generators::random_tree(60, 11)),
        ("gnm-50", generators::connected_gnm(50, 40, 7)),
        (
            "hgraph-2-3",
            HGraph::build(GadgetParams::new(2, 3).unwrap())
                .graph()
                .clone(),
        ),
    ]
}

#[test]
fn roundtrip_reproduces_labeling_exactly() {
    for (name, g) in families() {
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let store = LabelStore::from_labeling(&hl);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let decoded = LabelStore::parse(&buf).unwrap().to_labeling().unwrap();
        assert_eq!(decoded, hl, "{name}: decode(encode(labeling)) != labeling");
    }
}

#[test]
fn served_distances_match_ground_truth() {
    // Dijkstra is the ground truth: it agrees with BFS on unit weights and
    // stays correct on the weighted H_{b,l} gadget.
    for (name, g) in families() {
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let store = LabelStore::from_labeling(&hl);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let back = LabelStore::parse(&buf).unwrap();
        let n = g.num_nodes() as NodeId;
        for u in 0..n {
            let truth = dijkstra_distances(&g, u);
            for v in 0..n {
                assert_eq!(
                    back.query(u, v).unwrap(),
                    truth[v as usize],
                    "{name}: d({u},{v}) from store disagrees with Dijkstra"
                );
            }
        }
    }
}

#[test]
fn file_roundtrip_via_disk() {
    let g = generators::grid(6, 6);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let store = LabelStore::from_labeling(&hl);
    let mut path = std::env::temp_dir();
    path.push(format!("hl-store-test-{}.hlbs", std::process::id()));
    store.save(&path).unwrap();
    let back = LabelStore::open(&path).unwrap();
    assert_eq!(back.to_labeling().unwrap(), hl);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn every_truncation_errors_never_misanswers() {
    let g = generators::random_tree(40, 3);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let store = LabelStore::from_labeling(&hl);
    let mut buf = Vec::new();
    store.write_to(&mut buf).unwrap();
    // Every proper prefix must fail to parse: a reader can never be handed
    // a truncated file and serve from it.
    for cut in 0..buf.len() {
        assert!(
            LabelStore::parse(&buf[..cut]).is_err(),
            "prefix of {cut}/{} bytes parsed successfully",
            buf.len()
        );
    }
}

#[test]
fn random_single_byte_corruption_is_caught() {
    let g = generators::grid(5, 5);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let store = LabelStore::from_labeling(&hl);
    let mut clean = Vec::new();
    store.write_to(&mut clean).unwrap();

    let mut rng = Xorshift64::seed_from_u64(0xC0FFEE);
    for _ in 0..200 {
        let mut buf = clean.clone();
        let at = rng.gen_index(buf.len());
        let bit = 1u8 << rng.gen_index(8);
        buf[at] ^= bit;
        match LabelStore::parse(&buf) {
            Err(_) => {} // typed error: the corruption was caught
            Ok(back) => {
                // Flips confined to the checksum-covered body are always
                // caught; a flip inside the stored *checksum field* itself
                // can only make the check fail, never pass a corrupt body.
                // So a successful parse means the flip landed somewhere
                // that must still decode to the identical labeling.
                assert_eq!(
                    back.to_labeling().unwrap(),
                    hl,
                    "corrupt store at byte {at} (bit {bit:#04x}) parsed AND decoded differently"
                );
            }
        }
    }
}

#[test]
fn corrupt_offset_table_is_typed_not_panic() {
    let g = generators::grid(4, 4);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let store = LabelStore::from_labeling(&hl);
    let mut buf = Vec::new();
    store.write_to(&mut buf).unwrap();
    // Body starts at 32: scramble the first offset entry and re-stamp the
    // checksum so corruption must be caught by structural validation.
    buf[32] = 0xFF;
    let body_checksum = hl_server::store::fnv1a64(&buf[32..]);
    buf[24..32].copy_from_slice(&body_checksum.to_le_bytes());
    assert!(matches!(
        LabelStore::parse(&buf),
        Err(StoreError::Corrupt(_))
    ));
}

#[test]
fn weighted_graph_distances_survive_roundtrip() {
    let g = generators::weighted_grid(6, 5, 19);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let store = LabelStore::from_labeling(&hl);
    let mut buf = Vec::new();
    store.write_to(&mut buf).unwrap();
    let back = LabelStore::parse(&buf).unwrap();
    let n = g.num_nodes() as NodeId;
    for u in 0..n {
        let truth = hl_graph::dijkstra::dijkstra_distances(&g, u);
        for v in 0..n {
            assert_eq!(back.query(u, v).unwrap(), truth[v as usize]);
        }
    }
}
