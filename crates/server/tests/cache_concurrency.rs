//! Concurrency tests for the sharded LRU cache under eviction pressure.
//!
//! The cache capacity is deliberately smaller than the working set, so
//! shards evict continuously while several threads hammer them. The
//! counters maintained under the shard locks must still reconcile:
//! every lookup is a hit or a miss, and occupancy is exactly
//! insertions minus evictions.

use std::sync::Arc;
use std::thread;

use hl_server::ShardedLruCache;

const SHARDS: usize = 4;
const CAPACITY: usize = 64;
const WORKING_SET: u64 = 1024; // 16x the capacity: constant eviction
const THREADS: u64 = 4;
const OPS_PER_THREAD: u64 = 20_000;

#[test]
fn counters_reconcile_under_concurrent_eviction() {
    let cache = Arc::new(ShardedLruCache::new(CAPACITY, SHARDS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                // Each thread walks the working set from its own offset
                // with a miss-then-insert loop, mixing hits (keys another
                // thread just inserted) with misses and evictions.
                let mut gets = 0u64;
                let mut state = t.wrapping_mul(0x9e37_79b9).wrapping_add(1);
                for i in 0..OPS_PER_THREAD {
                    // Cheap xorshift so threads diverge quickly.
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key = (state.wrapping_add(i * t)) % WORKING_SET;
                    gets += 1;
                    if cache.get(key).is_none() {
                        cache.insert(key, key * 2);
                    }
                }
                gets
            })
        })
        .collect();

    let mut total_gets = 0u64;
    for handle in handles {
        total_gets += handle.join().expect("cache worker panicked");
    }

    let stats = cache.stats();
    let len = cache.len() as u64;

    // Every lookup ever made was either a hit or a miss.
    assert_eq!(
        stats.hits + stats.misses,
        total_gets,
        "hits {} + misses {} must equal lookups {}",
        stats.hits,
        stats.misses,
        total_gets
    );

    // Occupancy is exactly what was inserted and never evicted.
    assert_eq!(
        stats.insertions,
        stats.evictions + len,
        "insertions {} must equal evictions {} + live entries {}",
        stats.insertions,
        stats.evictions,
        len
    );

    // Capacity is respected up to per-shard rounding slack.
    assert!(
        len <= (CAPACITY + SHARDS) as u64,
        "cache holds {len} entries, capacity is {CAPACITY}"
    );

    // With a working set 16x the capacity, eviction pressure must have
    // been real, and the skew-free walk still produces some hits.
    assert!(stats.evictions > 0, "expected evictions under pressure");
    assert!(stats.misses > 0, "expected misses under pressure");
    assert!(stats.hits > 0, "expected some hits from shared keys");
}

#[test]
fn stats_are_exact_single_threaded() {
    let cache = ShardedLruCache::new(8, 1);
    for k in 0..16u64 {
        cache.insert(k, k);
    }
    let stats = cache.stats();
    assert_eq!(stats.insertions, 16);
    assert_eq!(stats.evictions, 8);
    assert_eq!(cache.len(), 8);

    // Refreshing an existing key is neither an insertion nor an eviction.
    cache.insert(15, 99);
    assert_eq!(cache.stats().insertions, 16);
    assert_eq!(cache.stats().evictions, 8);

    assert_eq!(cache.get(15), Some(99));
    assert_eq!(cache.get(0), None); // evicted long ago
    let stats = cache.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}
