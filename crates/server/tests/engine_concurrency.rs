//! The engine under concurrent fire: several client threads interleaving
//! batch and cached single queries while the worker pool serves them.
//! Answers must stay exact and the metrics must account for every query.

use std::sync::Arc;

use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::bfs::bfs_distances;
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, Distance, NodeId};
use hl_server::QueryEngine;

#[test]
fn four_client_threads_batch_and_single() {
    let g = generators::connected_gnm(200, 300, 5);
    let n = g.num_nodes();
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();

    // Ground truth once, up front.
    let truth: Vec<Vec<Distance>> = (0..n).map(|u| bfs_distances(&g, u as NodeId)).collect();
    let truth = Arc::new(truth);

    let engine = Arc::new(QueryEngine::new(hl, 4).unwrap());
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 40;
    const BATCH: usize = 64;
    const SINGLES: usize = 32;

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let truth = Arc::clone(&truth);
            std::thread::spawn(move || {
                let mut rng = Xorshift64::seed_from_u64(900 + c as u64);
                for _ in 0..ROUNDS {
                    // One batch...
                    let pairs: Vec<(NodeId, NodeId)> = (0..BATCH)
                        .map(|_| (rng.gen_index(n) as NodeId, rng.gen_index(n) as NodeId))
                        .collect();
                    let got = engine.query_batch(&pairs).unwrap();
                    for (&(u, v), &d) in pairs.iter().zip(&got) {
                        assert_eq!(d, truth[u as usize][v as usize], "batch d({u},{v})");
                    }
                    // ...then a burst of cached point lookups, drawn from a
                    // small hot set so the cache actually gets hits.
                    for _ in 0..SINGLES {
                        let u = rng.gen_index(n.min(10)) as NodeId;
                        let v = rng.gen_index(n.min(10)) as NodeId;
                        let d = engine.query(u, v).unwrap();
                        assert_eq!(d, truth[u as usize][v as usize], "single d({u},{v})");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let s = engine.snapshot();
    let expect_batches = (CLIENTS * ROUNDS) as u64;
    let expect_batch_queries = (CLIENTS * ROUNDS * BATCH) as u64;
    let expect_singles = (CLIENTS * ROUNDS * SINGLES) as u64;
    assert_eq!(s.batches, expect_batches);
    assert_eq!(s.batch_queries, expect_batch_queries);
    assert_eq!(s.single_queries, expect_singles);
    // Every single query is either a hit or a miss — no query goes
    // unaccounted, even under contention.
    assert_eq!(s.cache_hits + s.cache_misses, expect_singles);
    // A 10x10 hot set over thousands of lookups must mostly hit.
    assert!(
        s.cache_hits > s.cache_misses,
        "expected a mostly-hitting cache: {} hits vs {} misses",
        s.cache_hits,
        s.cache_misses
    );
    // The histogram saw every query from both paths.
    assert_eq!(s.latency_count, expect_batch_queries + expect_singles);
    assert_eq!(s.total_queries(), expect_batch_queries + expect_singles);
    assert_eq!(s.decode_errors, 0);
    assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
}

#[test]
fn concurrent_batches_keep_input_order() {
    let g = generators::grid(10, 10);
    let n = g.num_nodes();
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    let engine = Arc::new(QueryEngine::new(hl, 8).unwrap());

    // Each thread sends a batch whose expected answers are distinguishable
    // by construction (distance from a fixed source in scan order), so any
    // cross-batch or intra-batch reordering shows up immediately.
    let handles: Vec<_> = (0..6)
        .map(|c| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let src = (c * 7 % n) as NodeId;
                let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId).map(|v| (src, v)).collect();
                let got = engine.query_batch(&pairs).unwrap();
                (src, got)
            })
        })
        .collect();
    for h in handles {
        let (src, got) = h.join().unwrap();
        let truth = bfs_distances(&g, src);
        assert_eq!(got, truth, "batch from source {src} came back permuted");
    }
}

#[test]
fn engine_shutdown_joins_workers_cleanly() {
    // Dropping engines with in-flight-capable pools must not hang or leak:
    // create and drop a few in a row, querying each first.
    let g = generators::random_tree(50, 2);
    let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
    for workers in [1, 2, 8] {
        let engine = QueryEngine::new(hl.clone(), workers).unwrap();
        let d = engine.query_batch(&[(0, 1), (1, 2)]).unwrap();
        assert_eq!(d.len(), 2);
        drop(engine);
    }
}
