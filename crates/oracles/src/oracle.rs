//! A common oracle interface and instrumented comparisons.

use hl_graph::dijkstra::{bidirectional_distance, dijkstra_distance_between};
use hl_graph::{Distance, Graph, NodeId};

use hl_core::{HubLabeling, LabelingView};

use crate::alt::AltOracle;
use crate::ch::ContractionHierarchy;

/// Per-query instrumentation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Vertices settled (popped with final distance).
    pub settled: usize,
    /// Edge relaxations that improved a tentative distance.
    pub relaxed: usize,
}

/// Anything that answers exact point-to-point distance queries.
pub trait DistanceOracle {
    /// Short name for tables.
    fn name(&self) -> &'static str;

    /// Exact distance between `u` and `v`
    /// ([`hl_graph::INFINITY`] when disconnected).
    fn distance(&self, u: NodeId, v: NodeId) -> Distance;
}

/// Plain Dijkstra, recomputed per query (the `S = O(n)`, `T = O(m log n)`
/// endpoint of the tradeoff curve).
#[derive(Debug, Clone, Copy)]
pub struct DijkstraOracle<'g> {
    /// The graph queried against.
    pub graph: &'g Graph,
}

impl DistanceOracle for DijkstraOracle<'_> {
    fn name(&self) -> &'static str {
        "dijkstra"
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        dijkstra_distance_between(self.graph, u, v)
    }
}

/// Bidirectional Dijkstra, recomputed per query.
#[derive(Debug, Clone, Copy)]
pub struct BidirectionalOracle<'g> {
    /// The graph queried against.
    pub graph: &'g Graph,
}

impl DistanceOracle for BidirectionalOracle<'_> {
    fn name(&self) -> &'static str {
        "bidirectional"
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        bidirectional_distance(self.graph, u, v)
    }
}

impl DistanceOracle for AltOracle<'_> {
    fn name(&self) -> &'static str {
        "alt"
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        self.query_with_stats(u, v).0
    }
}

impl DistanceOracle for ContractionHierarchy {
    fn name(&self) -> &'static str {
        "contraction-hierarchy"
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        self.query(u, v)
    }
}

/// A hub labeling used as an oracle (the `S = O(n·|S_v|)`, `T = O(|S_v|)`
/// point of the curve — the subject of the paper).
///
/// Generic over the label representation: wrap the nested
/// [`HubLabeling`] straight out of a construction, or the flat arena
/// [`hl_core::FlatLabeling`] the serving stack queries.
#[derive(Debug, Clone)]
pub struct HubLabelOracle<L = HubLabeling> {
    /// The labeling answering the queries.
    pub labeling: L,
}

impl<L: LabelingView> DistanceOracle for HubLabelOracle<L> {
    fn name(&self) -> &'static str {
        "hub-labels"
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        self.labeling.query(u, v)
    }
}

/// Cross-checks a set of oracles against each other on the given queries;
/// returns the first disagreement as
/// `(oracle_name, u, v, value, reference)`.
pub fn cross_check(
    oracles: &[&dyn DistanceOracle],
    queries: &[(NodeId, NodeId)],
) -> Option<(&'static str, NodeId, NodeId, Distance, Distance)> {
    for &(u, v) in queries {
        let reference = oracles.first()?.distance(u, v);
        for oracle in &oracles[1..] {
            let got = oracle.distance(u, v);
            if got != reference {
                return Some((oracle.name(), u, v, got, reference));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    #[test]
    fn all_oracles_agree() {
        let g = generators::weighted_grid(7, 7, 6);
        let dij = DijkstraOracle { graph: &g };
        let bi = BidirectionalOracle { graph: &g };
        let alt = AltOracle::with_farthest_landmarks(&g, 4);
        let ch = ContractionHierarchy::build(&g);
        let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let flat = HubLabelOracle {
            labeling: hl_core::FlatLabeling::from_labeling(&labeling),
        };
        let hub = HubLabelOracle { labeling };
        let queries: Vec<(NodeId, NodeId)> = (0..49)
            .flat_map(|u| [(u, (u * 3) % 49), (u, 48 - u)])
            .collect();
        let oracles: [&dyn DistanceOracle; 6] = [&dij, &bi, &alt, &ch, &hub, &flat];
        assert_eq!(cross_check(&oracles, &queries), None);
    }

    #[test]
    fn cross_check_reports_disagreement() {
        let g = generators::path(4);
        let good = DijkstraOracle { graph: &g };
        // A deliberately broken "oracle".
        struct Liar;
        impl DistanceOracle for Liar {
            fn name(&self) -> &'static str {
                "liar"
            }
            fn distance(&self, _: NodeId, _: NodeId) -> Distance {
                7
            }
        }
        let oracles: [&dyn DistanceOracle; 2] = [&good, &Liar];
        let found = cross_check(&oracles, &[(0, 1)]);
        assert_eq!(found, Some(("liar", 0, 1, 7, 1)));
    }

    #[test]
    fn oracle_names_distinct() {
        let g = generators::path(3);
        let names = [
            DijkstraOracle { graph: &g }.name(),
            BidirectionalOracle { graph: &g }.name(),
            "alt",
            "contraction-hierarchy",
            "hub-labels",
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
