//! ALT: A* search with landmark lower bounds (Goldberg–Harrelson, SODA
//! 2005). Exact, goal-directed point-to-point queries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hl_graph::{Distance, Graph, NodeId, INFINITY};

use crate::landmarks::Landmarks;
use crate::oracle::QueryStats;

/// An ALT oracle: a graph reference plus landmark tables.
#[derive(Debug)]
pub struct AltOracle<'g> {
    graph: &'g Graph,
    landmarks: Landmarks,
}

impl<'g> AltOracle<'g> {
    /// Wraps a graph with precomputed landmarks.
    pub fn new(graph: &'g Graph, landmarks: Landmarks) -> Self {
        AltOracle { graph, landmarks }
    }

    /// Builds with `k` farthest-point landmarks.
    pub fn with_farthest_landmarks(graph: &'g Graph, k: usize) -> Self {
        AltOracle {
            graph,
            landmarks: Landmarks::farthest(graph, k, 0),
        }
    }

    /// The landmark set in use.
    pub fn landmarks(&self) -> &Landmarks {
        &self.landmarks
    }

    /// Exact distance query with instrumentation.
    ///
    /// A* with the consistent potential `π(v) = lb(v, target)`; settles
    /// vertices in increasing `d(s,v) + π(v)` order and stops when the
    /// target is settled.
    pub fn query_with_stats(&self, source: NodeId, target: NodeId) -> (Distance, QueryStats) {
        let mut stats = QueryStats::default();
        if source == target {
            return (0, stats);
        }
        let n = self.graph.num_nodes();
        let mut dist = vec![INFINITY; n];
        let mut heap = BinaryHeap::new();
        dist[source as usize] = 0;
        let pi = |v: NodeId| self.landmarks.lower_bound(v, target);
        heap.push(Reverse((pi(source), 0u64, source)));
        while let Some(Reverse((_, du, u))) = heap.pop() {
            if du > dist[u as usize] {
                continue;
            }
            stats.settled += 1;
            if u == target {
                return (du, stats);
            }
            for (v, w) in self.graph.neighbors(u) {
                let nd = du + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    stats.relaxed += 1;
                    heap.push(Reverse((nd.saturating_add(pi(v)), nd, v)));
                }
            }
        }
        (INFINITY, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::dijkstra::dijkstra_distances;
    use hl_graph::generators;

    #[test]
    fn matches_dijkstra_on_weighted_grid() {
        let g = generators::weighted_grid(8, 8, 17);
        let alt = AltOracle::with_farthest_landmarks(&g, 4);
        for s in [0u32, 13, 37] {
            let truth = dijkstra_distances(&g, s);
            for t in 0..64u32 {
                assert_eq!(alt.query_with_stats(s, t).0, truth[t as usize]);
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_sparse_random() {
        let g = generators::connected_gnm(120, 60, 3);
        let alt = AltOracle::with_farthest_landmarks(&g, 5);
        let truth = dijkstra_distances(&g, 11);
        for t in 0..120u32 {
            assert_eq!(alt.query_with_stats(11, t).0, truth[t as usize]);
        }
    }

    #[test]
    fn handles_disconnection() {
        let g = hl_graph::builder::graph_from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let alt = AltOracle::with_farthest_landmarks(&g, 2);
        assert_eq!(alt.query_with_stats(0, 3).0, INFINITY);
        assert_eq!(alt.query_with_stats(0, 0).0, 0);
    }

    #[test]
    fn goal_direction_settles_fewer_vertices() {
        // On a long weighted path with good landmarks, A* should settle
        // roughly the path prefix, while Dijkstra from one end would settle
        // everything. Compare against a landmark-free run (empty landmark
        // set = plain Dijkstra ordering).
        let g = generators::weighted_grid(20, 20, 5);
        let alt = AltOracle::with_farthest_landmarks(&g, 6);
        let plain = AltOracle::new(&g, Landmarks::from_ids(&g, vec![]));
        let (d1, s1) = alt.query_with_stats(0, 21); // nearby target
        let (d2, s2) = plain.query_with_stats(0, 21);
        assert_eq!(d1, d2);
        assert!(
            s1.settled <= s2.settled,
            "ALT settled {} vs plain {}",
            s1.settled,
            s2.settled
        );
    }

    #[test]
    fn empty_landmarks_is_plain_dijkstra() {
        let g = generators::weighted_grid(6, 6, 2);
        let alt = AltOracle::new(&g, Landmarks::from_ids(&g, vec![]));
        let truth = dijkstra_distances(&g, 0);
        for t in 0..36u32 {
            assert_eq!(alt.query_with_stats(0, t).0, truth[t as usize]);
        }
    }
}
