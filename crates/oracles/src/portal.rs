//! Portal oracles: the naive `S/T` tradeoff curve.
//!
//! The paper's introduction asks for oracles with `S·T = Õ(n²)` between
//! the trivial endpoints (`S = Õ(n)` with Dijkstra queries, `S = Õ(n²)`
//! with table lookups) and notes hub labeling is the main candidate
//! technique. The *portal oracle* is the straightforward interpolation:
//! store full distance rows for `k` portal vertices, and answer queries by
//! bidirectional Dijkstra seeded with the portal upper bound
//! `min_p d(u,p) + d(p,v)` — exact always, faster as `k` grows (and exact
//! immediately when an endpoint is a portal or a portal lies on a shortest
//! path). Charting settled vertices vs `k` draws the tradeoff curve the
//! hub-labeling point then beats.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hl_graph::dijkstra::shortest_path_distances;
use hl_graph::{Distance, Graph, NodeId, INFINITY};

use crate::oracle::{DistanceOracle, QueryStats};

/// A portal oracle over `k` stored distance rows.
#[derive(Debug)]
pub struct PortalOracle<'g> {
    graph: &'g Graph,
    portals: Vec<NodeId>,
    rows: Vec<Vec<Distance>>,
    is_portal: Vec<bool>,
    portal_index: Vec<usize>,
}

impl<'g> PortalOracle<'g> {
    /// Builds the oracle with the `k` highest-degree vertices as portals.
    pub fn by_degree(graph: &'g Graph, k: usize) -> Self {
        let mut order: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        order.truncate(k.min(graph.num_nodes()));
        Self::with_portals(graph, order)
    }

    /// Builds the oracle with explicit portals.
    pub fn with_portals(graph: &'g Graph, portals: Vec<NodeId>) -> Self {
        let rows: Vec<Vec<Distance>> = portals
            .iter()
            .map(|&p| shortest_path_distances(graph, p))
            .collect();
        let mut is_portal = vec![false; graph.num_nodes()];
        let mut portal_index = vec![usize::MAX; graph.num_nodes()];
        for (i, &p) in portals.iter().enumerate() {
            is_portal[p as usize] = true;
            portal_index[p as usize] = i;
        }
        PortalOracle {
            graph,
            portals,
            rows,
            is_portal,
            portal_index,
        }
    }

    /// Number of portals.
    pub fn num_portals(&self) -> usize {
        self.portals.len()
    }

    /// Table space in bytes (`k · n` distances).
    pub fn memory_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.len() * std::mem::size_of::<Distance>())
            .sum()
    }

    /// Upper bound on `d(u, v)` through the best portal.
    pub fn portal_upper_bound(&self, u: NodeId, v: NodeId) -> Distance {
        let mut best = INFINITY;
        for row in &self.rows {
            let (du, dv) = (row[u as usize], row[v as usize]);
            if du != INFINITY && dv != INFINITY {
                best = best.min(du + dv);
            }
        }
        best
    }

    /// Exact query with instrumentation: table lookup when an endpoint is
    /// a portal, otherwise bidirectional Dijkstra bounded by the portal
    /// upper bound.
    pub fn query_with_stats(&self, u: NodeId, v: NodeId) -> (Distance, QueryStats) {
        let mut stats = QueryStats::default();
        if u == v {
            return (0, stats);
        }
        if self.is_portal[u as usize] {
            return (self.rows[self.portal_index[u as usize]][v as usize], stats);
        }
        if self.is_portal[v as usize] {
            return (self.rows[self.portal_index[v as usize]][u as usize], stats);
        }
        let mut best = self.portal_upper_bound(u, v);
        // Bidirectional Dijkstra with `best` as the incumbent: searches
        // terminate as soon as top_f + top_b >= best.
        let n = self.graph.num_nodes();
        let mut dist_f = vec![INFINITY; n];
        let mut dist_b = vec![INFINITY; n];
        let mut heap_f = BinaryHeap::new();
        let mut heap_b = BinaryHeap::new();
        dist_f[u as usize] = 0;
        dist_b[v as usize] = 0;
        heap_f.push(Reverse((0u64, u)));
        heap_b.push(Reverse((0u64, v)));
        loop {
            let tf = heap_f.peek().map(|Reverse((d, _))| *d);
            let tb = heap_b.peek().map(|Reverse((d, _))| *d);
            match (tf, tb) {
                (None, None) => break,
                (Some(a), Some(b)) if a.saturating_add(b) >= best => break,
                _ => {}
            }
            let forward = match (tf, tb) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                _ => false,
            };
            if !forward && tb.is_none() {
                break;
            }
            let (heap, dist, other) = if forward {
                (&mut heap_f, &mut dist_f, &dist_b)
            } else {
                (&mut heap_b, &mut dist_b, &dist_f)
            };
            if let Some(Reverse((du, x))) = heap.pop() {
                if du > dist[x as usize] {
                    continue;
                }
                stats.settled += 1;
                if other[x as usize] != INFINITY {
                    best = best.min(du.saturating_add(other[x as usize]));
                }
                for (y, w) in self.graph.neighbors(x) {
                    let nd = du + w;
                    if nd < dist[y as usize] {
                        dist[y as usize] = nd;
                        stats.relaxed += 1;
                        heap.push(Reverse((nd, y)));
                        if other[y as usize] != INFINITY {
                            best = best.min(nd.saturating_add(other[y as usize]));
                        }
                    }
                }
            }
        }
        (best, stats)
    }
}

impl DistanceOracle for PortalOracle<'_> {
    fn name(&self) -> &'static str {
        "portal"
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        self.query_with_stats(u, v).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::apsp::DistanceMatrix;
    use hl_graph::generators;

    fn check_exact(g: &Graph, oracle: &PortalOracle<'_>) {
        let m = DistanceMatrix::compute(g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(oracle.distance(u, v), m.distance(u, v), "pair {u},{v}");
            }
        }
    }

    #[test]
    fn exact_at_every_portal_count() {
        let g = generators::weighted_grid(6, 6, 7);
        for k in [0usize, 1, 4, 16, 36] {
            let oracle = PortalOracle::by_degree(&g, k);
            check_exact(&g, &oracle);
        }
    }

    #[test]
    fn exact_on_disconnected() {
        let g = hl_graph::builder::graph_from_edges(6, &[(0, 1), (2, 3)]).unwrap();
        check_exact(&g, &PortalOracle::by_degree(&g, 2));
    }

    #[test]
    fn full_portal_set_is_table_lookup() {
        let g = generators::grid(5, 5);
        let oracle = PortalOracle::by_degree(&g, 25);
        let (_, stats) = oracle.query_with_stats(3, 19);
        assert_eq!(stats.settled, 0, "every endpoint is a portal");
        assert_eq!(oracle.memory_bytes(), 25 * 25 * 8);
    }

    #[test]
    fn more_portals_settle_fewer_vertices() {
        let g = generators::weighted_grid(14, 14, 3);
        let sparse = PortalOracle::by_degree(&g, 2);
        let dense = PortalOracle::by_degree(&g, 60);
        let mut settled_sparse = 0usize;
        let mut settled_dense = 0usize;
        for i in 0..40u64 {
            let (u, v) = (((i * 37) % 196) as NodeId, ((i * 113) % 196) as NodeId);
            let (d1, s1) = sparse.query_with_stats(u, v);
            let (d2, s2) = dense.query_with_stats(u, v);
            assert_eq!(d1, d2);
            settled_sparse += s1.settled;
            settled_dense += s2.settled;
        }
        assert!(
            settled_dense < settled_sparse,
            "dense {settled_dense} should beat sparse {settled_sparse}"
        );
    }

    #[test]
    fn upper_bound_is_valid() {
        let g = generators::connected_gnm(50, 25, 9);
        let oracle = PortalOracle::by_degree(&g, 5);
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in 0..50u32 {
            for v in 0..50u32 {
                assert!(oracle.portal_upper_bound(u, v) >= m.distance(u, v));
            }
        }
    }
}
