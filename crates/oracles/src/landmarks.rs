//! Landmark selection and triangle-inequality distance bounds (the "L" of
//! ALT).

use hl_graph::dijkstra::shortest_path_distances;
use hl_graph::{Distance, Graph, NodeId, INFINITY};

/// A set of landmarks with precomputed distances to every vertex.
///
/// For undirected graphs the triangle inequality gives, for any landmark
/// `L`: `|d(L,u) − d(L,t)| ≤ d(u,t) ≤ d(L,u) + d(L,t)`.
#[derive(Debug, Clone)]
pub struct Landmarks {
    ids: Vec<NodeId>,
    dist: Vec<Vec<Distance>>,
}

impl Landmarks {
    /// Selects `k` landmarks uniformly at random (seeded).
    pub fn random(g: &Graph, k: usize, seed: u64) -> Self {
        let mut rng = hl_graph::rng::Xorshift64::seed_from_u64(seed);
        let mut all: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        rng.shuffle(&mut all);
        let ids: Vec<NodeId> = all.into_iter().take(k.min(g.num_nodes())).collect();
        Self::from_ids(g, ids)
    }

    /// Farthest-point selection: start from `seed_vertex`, repeatedly pick
    /// the vertex maximizing the distance to the chosen set — the standard
    /// ALT heuristic (good spread yields tight bounds).
    pub fn farthest(g: &Graph, k: usize, seed_vertex: NodeId) -> Self {
        let n = g.num_nodes();
        let mut ids = Vec::with_capacity(k.min(n));
        let mut dist_rows: Vec<Vec<Distance>> = Vec::new();
        let mut min_dist = vec![INFINITY; n];
        let mut next = seed_vertex;
        for _ in 0..k.min(n) {
            ids.push(next);
            let row = shortest_path_distances(g, next);
            for v in 0..n {
                if row[v] < min_dist[v] {
                    min_dist[v] = row[v];
                }
            }
            dist_rows.push(row);
            // The farthest *reachable* vertex from the current set.
            next = (0..n as NodeId)
                .filter(|&v| min_dist[v as usize] != INFINITY)
                .max_by_key(|&v| min_dist[v as usize])
                .unwrap_or(seed_vertex);
            if min_dist[next as usize] == 0 {
                break; // everything reachable is already a landmark
            }
        }
        Landmarks {
            ids,
            dist: dist_rows,
        }
    }

    /// Builds landmark tables for explicit vertices.
    pub fn from_ids(g: &Graph, ids: Vec<NodeId>) -> Self {
        let dist = ids.iter().map(|&l| shortest_path_distances(g, l)).collect();
        Landmarks { ids, dist }
    }

    /// The landmark vertices.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no landmarks were selected.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Lower bound on `d(u, t)` from the triangle inequality, maximized
    /// over all landmarks. Always admissible; 0 when no landmark reaches
    /// both vertices.
    pub fn lower_bound(&self, u: NodeId, t: NodeId) -> Distance {
        let mut best = 0;
        for row in &self.dist {
            let (du, dt) = (row[u as usize], row[t as usize]);
            if du != INFINITY && dt != INFINITY {
                let lb = du.abs_diff(dt);
                if lb > best {
                    best = lb;
                }
            }
        }
        best
    }

    /// Upper bound on `d(u, t)`: `min_L d(L,u) + d(L,t)`.
    pub fn upper_bound(&self, u: NodeId, t: NodeId) -> Distance {
        let mut best = INFINITY;
        for row in &self.dist {
            let (du, dt) = (row[u as usize], row[t as usize]);
            if du != INFINITY && dt != INFINITY {
                best = best.min(du + dt);
            }
        }
        best
    }

    /// Memory footprint of the distance tables in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.dist
            .iter()
            .map(|r| r.len() * std::mem::size_of::<Distance>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::apsp::DistanceMatrix;
    use hl_graph::generators;

    #[test]
    fn bounds_sandwich_true_distance() {
        let g = generators::weighted_grid(7, 7, 3);
        let lm = Landmarks::farthest(&g, 4, 0);
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in 0..49u32 {
            for t in 0..49u32 {
                let d = m.distance(u, t);
                assert!(lm.lower_bound(u, t) <= d);
                assert!(lm.upper_bound(u, t) >= d);
            }
        }
    }

    #[test]
    fn landmark_to_self_bounds_tight() {
        let g = generators::grid(5, 5);
        let lm = Landmarks::from_ids(&g, vec![7]);
        // For u = landmark, bounds are exact.
        let m = DistanceMatrix::compute(&g).unwrap();
        for t in 0..25u32 {
            assert_eq!(lm.lower_bound(7, t), m.distance(7, t));
            assert_eq!(lm.upper_bound(7, t), m.distance(7, t));
        }
    }

    #[test]
    fn farthest_selection_spreads() {
        let g = generators::path(50);
        let lm = Landmarks::farthest(&g, 2, 10);
        // Second landmark must be an endpoint-ish vertex (far from 10).
        assert_eq!(lm.ids()[0], 10);
        assert!(lm.ids()[1] == 49 || lm.ids()[1] == 0);
    }

    #[test]
    fn random_selection_seeded() {
        let g = generators::grid(6, 6);
        let a = Landmarks::random(&g, 3, 5);
        let b = Landmarks::random(&g, 3, 5);
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(a.memory_bytes() > 0);
    }

    #[test]
    fn disconnected_bounds_degrade_gracefully() {
        let g = hl_graph::builder::graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let lm = Landmarks::from_ids(&g, vec![0]);
        // Landmark 0 cannot see 2 or 3: bounds fall back to trivial.
        assert_eq!(lm.lower_bound(2, 3), 0);
        assert_eq!(lm.upper_bound(2, 3), INFINITY);
    }

    #[test]
    fn more_landmarks_tighter_lower_bounds() {
        let g = generators::weighted_grid(8, 8, 9);
        let few = Landmarks::farthest(&g, 1, 0);
        let many = Landmarks::farthest(&g, 6, 0);
        let mut improved = 0;
        for u in (0..64u32).step_by(5) {
            for t in (0..64u32).step_by(7) {
                assert!(many.lower_bound(u, t) >= few.lower_bound(u, t));
                if many.lower_bound(u, t) > few.lower_bound(u, t) {
                    improved += 1;
                }
            }
        }
        assert!(improved > 0, "extra landmarks should help somewhere");
    }
}
