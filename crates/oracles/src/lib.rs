//! Point-to-point distance oracles.
//!
//! The paper's introduction frames hub labeling within the wider
//! distance-oracle landscape — the `ST = Õ(n²)` space/time tradeoff and
//! the practical heuristics ("contraction hierarchies and algorithms with
//! arc flags", §1.1). This crate implements the two classical baselines so
//! the benchmarks can place hub labels on that spectrum:
//!
//! * [`landmarks`] / [`alt`] — A* with landmark lower bounds (ALT,
//!   Goldberg–Harrelson): `O(k·n)` space, goal-directed exact queries;
//! * [`ch`] — Contraction Hierarchies (Geisberger et al.): node ordering
//!   by edge difference, witness searches, shortcut edges, bidirectional
//!   upward query;
//! * [`highway`] — empirical highway-dimension estimation (ADF+16);
//! * [`portal`] — the naive S/T interpolation (stored rows + bounded
//!   bidirectional search), drawing the tradeoff curve of §1;
//! * [`oracle`] — a common trait plus instrumented query statistics
//!   (settled vertices), and adapters for plain/bidirectional Dijkstra and
//!   hub labelings.
//!
//! All oracles are **exact**; the tests cross-check every one of them
//! against ground truth on weighted and unweighted families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alt;
pub mod ch;
pub mod highway;
pub mod landmarks;
pub mod oracle;
pub mod portal;

pub use alt::AltOracle;
pub use ch::ContractionHierarchy;
pub use landmarks::Landmarks;
pub use oracle::{DistanceOracle, QueryStats};
