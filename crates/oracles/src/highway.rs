//! Empirical highway-dimension estimation.
//!
//! Abraham et al. (J.ACM 2016), cited in the paper's §1.1, explain hub
//! labeling's practical success through the *highway dimension* `h`: a
//! network has highway dimension `h` if for every scale `r`, the shortest
//! paths of length in `(r, 2r]` can be hit by a vertex set that is
//! *locally sparse* (every ball of radius `2r` contains at most `h` of its
//! vertices). Road networks have small `h`; expanders do not.
//!
//! This module computes the empirical analogue: a greedy hitting set of
//! the canonical shortest paths per scale and its maximum density inside
//! any `2r`-ball. Greedy is an `O(log)`-approximation of the optimal
//! hitting set, so the reported values are upper-bound *estimates* of `h`
//! with the right qualitative ordering between families.

use hl_graph::sptree::ShortestPathTree;
use hl_graph::{Distance, Graph, NodeId, INFINITY};

/// Highway-dimension estimate at a single scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleEstimate {
    /// The scale `r` (paths of length in `(r, 2r]` are considered).
    pub r: Distance,
    /// Number of shortest paths at this scale (one canonical path per
    /// unordered pair).
    pub num_paths: usize,
    /// Size of the greedy hitting set.
    pub hitting_set: usize,
    /// Max hitting-set vertices inside any ball of radius `2r` — the
    /// local-sparsity measure defining the highway dimension.
    pub max_in_ball: usize,
}

/// Estimates the highway dimension of `g` at scale `r`.
///
/// Quadratic in `n` (an SSSP per vertex plus path extraction); intended
/// for experiment-scale graphs.
pub fn estimate_at_scale(g: &Graph, r: Distance) -> ScaleEstimate {
    let n = g.num_nodes() as NodeId;
    // Canonical shortest paths of length in (r, 2r], one per pair u < v.
    let mut paths: Vec<Vec<NodeId>> = Vec::new();
    for u in 0..n {
        let tree = ShortestPathTree::build(g, u);
        for v in (u + 1)..n {
            let d = tree.distance(v);
            if d != INFINITY && d > r && d <= 2 * r {
                if let Some(p) = tree.path_to(v) {
                    paths.push(p);
                }
            }
        }
    }
    let num_paths = paths.len();
    // Greedy hitting set.
    let mut hit: Vec<bool> = vec![false; paths.len()];
    let mut hitting: Vec<NodeId> = Vec::new();
    let mut remaining = paths.len();
    while remaining > 0 {
        let mut count = vec![0u32; n as usize];
        for (i, p) in paths.iter().enumerate() {
            if !hit[i] {
                for &x in p {
                    count[x as usize] += 1;
                }
            }
        }
        let best = (0..n)
            .max_by_key(|&v| count[v as usize])
            .expect("nonempty graph"); // lint:allow(no-panic): callers pass n >= 1, so 0..n is nonempty
        debug_assert!(count[best as usize] > 0);
        hitting.push(best);
        for (i, p) in paths.iter().enumerate() {
            if !hit[i] && p.contains(&best) {
                hit[i] = true;
                remaining -= 1;
            }
        }
    }
    // Local sparsity: max |hitting ∩ B(v, 2r)|.
    let mut max_in_ball = 0usize;
    if !hitting.is_empty() {
        for v in 0..n {
            let dist = hl_graph::dijkstra::shortest_path_distances(g, v);
            let in_ball = hitting
                .iter()
                .filter(|&&x| dist[x as usize] <= 2 * r)
                .count();
            max_in_ball = max_in_ball.max(in_ball);
        }
    }
    ScaleEstimate {
        r,
        num_paths,
        hitting_set: hitting.len(),
        max_in_ball,
    }
}

/// Sweeps scales `r = 1, 2, 4, …` up to the diameter and returns the
/// estimates; the *empirical highway dimension* is the max `max_in_ball`
/// across scales.
pub fn estimate(g: &Graph) -> Vec<ScaleEstimate> {
    let diam = hl_graph::properties::diameter_double_sweep(g);
    let mut out = Vec::new();
    let mut r = 1;
    while r <= diam.max(1) {
        out.push(estimate_at_scale(g, r));
        r *= 2;
    }
    out
}

/// The headline number: `max_r max_in_ball(r)`.
pub fn empirical_highway_dimension(g: &Graph) -> usize {
    estimate(g).iter().map(|e| e.max_in_ball).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::generators;

    #[test]
    fn path_has_tiny_highway_dimension() {
        let g = generators::path(40);
        let h = empirical_highway_dimension(&g);
        // Greedy hitting does not optimize local sparsity, so the estimate
        // sits slightly above the true h (which is O(1) on a path).
        assert!(h <= 6, "a path is the easiest road network: h = {h}");
    }

    #[test]
    fn scale_estimate_fields_consistent() {
        let g = generators::grid(6, 6);
        let e = estimate_at_scale(&g, 2);
        assert!(e.num_paths > 0);
        assert!(e.hitting_set >= 1);
        assert!(e.max_in_ball <= e.hitting_set);
        assert_eq!(e.r, 2);
    }

    #[test]
    fn hitting_set_hits_everything() {
        // Re-derive: every path of the scale must contain a hitting vertex.
        let g = generators::grid(5, 5);
        let r = 2;
        let e = estimate_at_scale(&g, r);
        // Trivially consistent if the greedy loop terminated (remaining = 0);
        // sanity: a scale beyond the diameter has no paths.
        let beyond = estimate_at_scale(&g, 100);
        assert_eq!(beyond.num_paths, 0);
        assert_eq!(beyond.hitting_set, 0);
        assert!(e.hitting_set > 0);
    }

    #[test]
    fn grid_easier_than_expander() {
        // The qualitative ordering ADF+16 predicts: grid-like networks have
        // smaller highway dimension than expanders of the same size.
        let grid = generators::grid(7, 7);
        let exp = generators::union_of_matchings(48, 3, 3);
        let h_grid = empirical_highway_dimension(&grid);
        let h_exp = empirical_highway_dimension(&exp);
        assert!(
            h_grid <= h_exp,
            "grid h = {h_grid} should not exceed expander h = {h_exp}"
        );
    }

    #[test]
    fn sweep_covers_scales() {
        let g = generators::path(20);
        let sweep = estimate(&g);
        assert!(sweep.len() >= 4, "scales 1, 2, 4, 8, 16");
        for w in sweep.windows(2) {
            assert_eq!(w[1].r, w[0].r * 2);
        }
    }
}
