//! Contraction Hierarchies (Geisberger–Sanders–Schultes–Delling, WEA
//! 2008) — the flagship practical shortest-path index the paper mentions
//! alongside hub labels ("contraction hierarchies and algorithms with arc
//! flags", §1.1). Hub labels can in fact be read off a CH by collecting
//! upward search spaces; here the CH is implemented directly with:
//!
//! * lazy node ordering by edge difference + contracted-neighbor count,
//! * witness searches (bounded Dijkstra avoiding the contracted vertex),
//! * shortcut creation preserving all pairwise distances,
//! * the bidirectional *upward* query.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use hl_graph::{Distance, Graph, NodeId, INFINITY};

use crate::oracle::QueryStats;

/// A built contraction hierarchy.
///
/// # Example
///
/// ```
/// use hl_graph::generators;
/// use hl_oracles::ContractionHierarchy;
///
/// let g = generators::weighted_grid(4, 4, 1);
/// let ch = ContractionHierarchy::build(&g);
/// let truth = hl_graph::dijkstra::dijkstra_distances(&g, 0);
/// assert_eq!(ch.query(0, 15), truth[15]);
/// ```
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    /// rank[v] = contraction position (0 contracted first = least
    /// important).
    rank: Vec<u32>,
    /// Upward adjacency: for each v, edges to higher-ranked neighbors
    /// (original + shortcuts), sorted by target.
    up: Vec<Vec<(NodeId, Distance)>>,
    num_shortcuts: usize,
}

impl ContractionHierarchy {
    /// Builds the hierarchy.
    ///
    /// Ordering: a lazy heap on `edge_difference + contracted_neighbors`,
    /// re-evaluated on pop (the standard lazy-update scheme).
    pub fn build(g: &Graph) -> Self {
        let n = g.num_nodes();
        // Working graph: adjacency maps with current (possibly shortcut)
        // weights among non-contracted vertices.
        let mut adj: Vec<HashMap<NodeId, Distance>> = vec![HashMap::new(); n];
        for (u, v, w) in g.edges() {
            insert_min(&mut adj, u, v, w);
        }
        let mut contracted = vec![false; n];
        let mut contracted_neighbors = vec![0u32; n];
        let mut rank = vec![0u32; n];
        let mut all_edges: Vec<(NodeId, NodeId, Distance)> = g.edges().collect();
        let mut num_shortcuts = 0usize;

        let mut heap: BinaryHeap<Reverse<(i64, NodeId)>> = (0..n as NodeId)
            .map(|v| Reverse((priority(&adj, &contracted, &contracted_neighbors, v), v)))
            .collect();
        let mut next_rank = 0u32;
        while let Some(Reverse((p, v))) = heap.pop() {
            if contracted[v as usize] {
                continue;
            }
            // Lazy re-evaluation: if the priority went stale, push back.
            let fresh = priority(&adj, &contracted, &contracted_neighbors, v);
            if fresh > p {
                heap.push(Reverse((fresh, v)));
                continue;
            }
            // Contract v.
            rank[v as usize] = next_rank;
            next_rank += 1;
            contracted[v as usize] = true;
            let neighbors: Vec<(NodeId, Distance)> =
                adj[v as usize].iter().map(|(&u, &w)| (u, w)).collect();
            for &(u, _) in &neighbors {
                contracted_neighbors[u as usize] += 1;
                adj[u as usize].remove(&v);
            }
            for i in 0..neighbors.len() {
                for j in (i + 1)..neighbors.len() {
                    let (a, wa) = neighbors[i];
                    let (b, wb) = neighbors[j];
                    let via = wa + wb;
                    if !has_witness(&adj, a, b, via) {
                        if insert_min(&mut adj, a, b, via) {
                            num_shortcuts += 1;
                        }
                        all_edges.push((a, b, via));
                    }
                }
            }
            adj[v as usize].clear();
        }

        // Upward adjacency from every edge ever created.
        let mut up: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
        for (u, v, w) in all_edges {
            let (lo, hi) = if rank[u as usize] < rank[v as usize] {
                (u, v)
            } else {
                (v, u)
            };
            up[lo as usize].push((hi, w));
        }
        for row in &mut up {
            row.sort_unstable();
            // Parallel shortcut duplicates: keep the minimum weight.
            row.dedup_by(|next, kept| {
                if next.0 == kept.0 {
                    kept.1 = kept.1.min(next.1);
                    true
                } else {
                    false
                }
            });
        }
        ContractionHierarchy {
            rank,
            up,
            num_shortcuts,
        }
    }

    /// Number of shortcut edges added during construction.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Contraction rank of a vertex (higher = more important).
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// Exact point-to-point query: bidirectional Dijkstra over the upward
    /// graph, meeting at the highest-ranked vertex of the shortest path.
    pub fn query(&self, s: NodeId, t: NodeId) -> Distance {
        self.query_with_stats(s, t).0
    }

    /// Query with instrumentation.
    pub fn query_with_stats(&self, s: NodeId, t: NodeId) -> (Distance, QueryStats) {
        let mut stats = QueryStats::default();
        if s == t {
            return (0, stats);
        }
        let df = self.upward_sssp(s, &mut stats);
        let db = self.upward_sssp(t, &mut stats);
        let mut best = INFINITY;
        for (v, d) in &df {
            if let Some(d2) = db.get(v) {
                best = best.min(d.saturating_add(*d2));
            }
        }
        (best, stats)
    }

    fn upward_sssp(&self, s: NodeId, stats: &mut QueryStats) -> HashMap<NodeId, Distance> {
        let mut dist: HashMap<NodeId, Distance> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(s, 0);
        heap.push(Reverse((0u64, s)));
        while let Some(Reverse((du, u))) = heap.pop() {
            if du > dist[&u] {
                continue;
            }
            stats.settled += 1;
            for &(v, w) in &self.up[u as usize] {
                let nd = du + w;
                if nd < *dist.get(&v).unwrap_or(&INFINITY) {
                    dist.insert(v, nd);
                    stats.relaxed += 1;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }
}

/// Inserts edge `{u, v}` keeping the minimum weight; returns `true` when a
/// brand-new edge was created.
fn insert_min(adj: &mut [HashMap<NodeId, Distance>], u: NodeId, v: NodeId, w: Distance) -> bool {
    let mut fresh = false;
    let e = adj[u as usize].entry(v).or_insert_with(|| {
        fresh = true;
        w
    });
    *e = (*e).min(w);
    let e = adj[v as usize].entry(u).or_insert(w);
    *e = (*e).min(w);
    fresh
}

/// Witness search: is there a path `a → b` of length `<= cap` in the
/// current remaining graph (the contracted vertex is already detached)?
/// Bounded Dijkstra with a hop limit — failing to find a witness is always
/// safe (an extra shortcut never breaks correctness).
fn has_witness(adj: &[HashMap<NodeId, Distance>], a: NodeId, b: NodeId, cap: Distance) -> bool {
    const HOP_LIMIT: u32 = 16;
    let mut dist: HashMap<NodeId, (Distance, u32)> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(a, (0, 0));
    heap.push(Reverse((0u64, 0u32, a)));
    while let Some(Reverse((du, hops, u))) = heap.pop() {
        if du > cap {
            return false;
        }
        if u == b {
            return du <= cap;
        }
        if let Some(&(best, best_hops)) = dist.get(&u) {
            if du > best || (du == best && hops > best_hops) {
                continue;
            }
        }
        if hops == HOP_LIMIT {
            continue;
        }
        for (&v, &w) in &adj[u as usize] {
            let nd = du + w;
            if nd <= cap {
                let better = match dist.get(&v) {
                    None => true,
                    Some(&(d, _)) => nd < d,
                };
                if better {
                    dist.insert(v, (nd, hops + 1));
                    heap.push(Reverse((nd, hops + 1, v)));
                }
            }
        }
    }
    false
}

/// Node-ordering priority: edge difference (shortcuts that contraction
/// would add minus edges removed) plus the contracted-neighbors term.
fn priority(
    adj: &[HashMap<NodeId, Distance>],
    contracted: &[bool],
    contracted_neighbors: &[u32],
    v: NodeId,
) -> i64 {
    debug_assert!(!contracted[v as usize]);
    let neighbors: Vec<(NodeId, Distance)> =
        adj[v as usize].iter().map(|(&u, &w)| (u, w)).collect();
    let deg = neighbors.len() as i64;
    let mut shortcuts = 0i64;
    for i in 0..neighbors.len() {
        for j in (i + 1)..neighbors.len() {
            let (a, wa) = neighbors[i];
            let (b, wb) = neighbors[j];
            // Approximate: count a shortcut unless a direct a-b edge is
            // already at most wa + wb (full witness search at ordering time
            // is too slow; the real contraction re-checks).
            let direct = adj[a as usize].get(&b).copied().unwrap_or(INFINITY);
            if direct > wa + wb {
                shortcuts += 1;
            }
        }
    }
    2 * (shortcuts - deg) + contracted_neighbors[v as usize] as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::apsp::DistanceMatrix;
    use hl_graph::dijkstra::dijkstra_distances;
    use hl_graph::generators;

    fn check_all_pairs(g: &Graph) {
        let ch = ContractionHierarchy::build(g);
        let m = DistanceMatrix::compute(g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(ch.query(u, v), m.distance(u, v), "pair {u},{v}");
            }
        }
    }

    #[test]
    fn exact_on_path_and_cycle() {
        check_all_pairs(&generators::path(20));
        check_all_pairs(&generators::cycle(15));
    }

    #[test]
    fn exact_on_weighted_grid() {
        check_all_pairs(&generators::weighted_grid(6, 6, 4));
    }

    #[test]
    fn exact_on_sparse_random() {
        check_all_pairs(&generators::connected_gnm(60, 40, 6));
    }

    #[test]
    fn exact_on_tree_and_star() {
        check_all_pairs(&generators::random_tree(40, 2));
        check_all_pairs(&generators::star(25));
    }

    #[test]
    fn exact_on_disconnected() {
        let g = hl_graph::builder::graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        check_all_pairs(&g);
    }

    #[test]
    fn exact_on_expander() {
        check_all_pairs(&generators::union_of_matchings(40, 3, 9));
    }

    #[test]
    fn query_search_space_is_small_on_grids() {
        let g = generators::weighted_grid(12, 12, 8);
        let ch = ContractionHierarchy::build(&g);
        let truth = dijkstra_distances(&g, 0);
        let (d, stats) = ch.query_with_stats(0, 143);
        assert_eq!(d, truth[143]);
        assert!(
            stats.settled < 2 * g.num_nodes(),
            "CH upward spaces should be small: settled {}",
            stats.settled
        );
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = generators::grid(5, 5);
        let ch = ContractionHierarchy::build(&g);
        let mut ranks: Vec<u32> = (0..25u32).map(|v| ch.rank(v)).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn shortcut_count_reported() {
        let g = generators::weighted_grid(6, 6, 1);
        let ch = ContractionHierarchy::build(&g);
        // Grids need some shortcuts but far fewer than n^2.
        assert!(ch.num_shortcuts() < 36 * 36);
    }
}
