//! Property-based tests: every oracle must agree with ground truth on
//! arbitrary sparse graphs (weighted and unweighted, connected or not).

use proptest::prelude::*;

use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::apsp::DistanceMatrix;
use hl_graph::{generators, GraphBuilder, NodeId};
use hl_oracles::oracle::{DistanceOracle, HubLabelOracle};
use hl_oracles::{AltOracle, ContractionHierarchy, Landmarks};

fn sparse_graph() -> impl Strategy<Value = hl_graph::Graph> {
    (5usize..30, 0usize..20, any::<u64>()).prop_map(|(n, extra, seed)| {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        generators::connected_gnm(n, extra.min(max_extra), seed)
    })
}

/// Possibly-disconnected weighted graph from a raw edge list.
fn arbitrary_graph() -> impl Strategy<Value = hl_graph::Graph> {
    proptest::collection::vec((0u32..15, 0u32..15, 1u64..20), 0..40).prop_map(|edges| {
        let mut b = GraphBuilder::new(15);
        for (u, v, w) in edges {
            if u != v {
                b.add_edge(u, v, w).unwrap();
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn ch_exact_on_connected_graphs(g in sparse_graph()) {
        let ch = ContractionHierarchy::build(&g);
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                prop_assert_eq!(ch.query(u, v), m.distance(u, v));
            }
        }
    }

    #[test]
    fn ch_exact_on_arbitrary_graphs(g in arbitrary_graph()) {
        let ch = ContractionHierarchy::build(&g);
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                prop_assert_eq!(ch.query(u, v), m.distance(u, v));
            }
        }
    }

    #[test]
    fn alt_exact_with_any_landmark_count(g in sparse_graph(), k in 0usize..6) {
        let alt = AltOracle::new(&g, Landmarks::random(&g, k, 7));
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in (0..g.num_nodes() as NodeId).step_by(3) {
            for v in 0..g.num_nodes() as NodeId {
                prop_assert_eq!(alt.query_with_stats(u, v).0, m.distance(u, v));
            }
        }
    }

    #[test]
    fn landmark_bounds_always_valid(g in arbitrary_graph(), k in 1usize..5, seed in any::<u64>()) {
        let lm = Landmarks::random(&g, k, seed);
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                let d = m.distance(u, v);
                if d != hl_graph::INFINITY {
                    prop_assert!(lm.lower_bound(u, v) <= d);
                    prop_assert!(lm.upper_bound(u, v) >= d);
                }
            }
        }
    }

    #[test]
    fn hub_oracle_matches_ch(g in sparse_graph()) {
        let ch = ContractionHierarchy::build(&g);
        let hub = HubLabelOracle {
            labeling: PrunedLandmarkLabeling::by_degree(&g).into_labeling(),
        };
        for u in 0..g.num_nodes() as NodeId {
            for v in (0..g.num_nodes() as NodeId).step_by(2) {
                prop_assert_eq!(hub.distance(u, v), ch.query(u, v));
            }
        }
    }
}
