//! Randomized property tests: every oracle must agree with ground truth on
//! arbitrary sparse graphs (weighted and unweighted, connected or not).
//! Seeded [`Xorshift64`] case generation keeps the suite offline-buildable.

use hl_core::pll::PrunedLandmarkLabeling;
use hl_graph::apsp::DistanceMatrix;
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, GraphBuilder, NodeId};
use hl_oracles::oracle::{DistanceOracle, HubLabelOracle};
use hl_oracles::{AltOracle, ContractionHierarchy, Landmarks};

const CASES: u64 = 24;

fn sparse_graph(rng: &mut Xorshift64) -> hl_graph::Graph {
    let n = rng.gen_range_usize(5, 30);
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let extra = rng.gen_index(20).min(max_extra);
    generators::connected_gnm(n, extra, rng.next_u64())
}

/// Possibly-disconnected weighted graph from a raw edge list.
fn arbitrary_graph(rng: &mut Xorshift64) -> hl_graph::Graph {
    let m = rng.gen_index(40);
    let mut b = GraphBuilder::new(15);
    for _ in 0..m {
        let u = rng.gen_index(15) as u32;
        let v = rng.gen_index(15) as u32;
        let w = rng.gen_range_u64(1, 20);
        if u != v {
            b.add_edge(u, v, w).unwrap();
        }
    }
    b.build()
}

#[test]
fn ch_exact_on_connected_graphs() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(case);
        let g = sparse_graph(&mut rng);
        let ch = ContractionHierarchy::build(&g);
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(ch.query(u, v), m.distance(u, v));
            }
        }
    }
}

#[test]
fn ch_exact_on_arbitrary_graphs() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(1000 + case);
        let g = arbitrary_graph(&mut rng);
        let ch = ContractionHierarchy::build(&g);
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(ch.query(u, v), m.distance(u, v));
            }
        }
    }
}

#[test]
fn alt_exact_with_any_landmark_count() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(2000 + case);
        let g = sparse_graph(&mut rng);
        let k = rng.gen_index(6);
        let alt = AltOracle::new(&g, Landmarks::random(&g, k, 7));
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in (0..g.num_nodes() as NodeId).step_by(3) {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(alt.query_with_stats(u, v).0, m.distance(u, v));
            }
        }
    }
}

#[test]
fn landmark_bounds_always_valid() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(3000 + case);
        let g = arbitrary_graph(&mut rng);
        let k = rng.gen_range_usize(1, 5);
        let lm = Landmarks::random(&g, k, rng.next_u64());
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                let d = m.distance(u, v);
                if d != hl_graph::INFINITY {
                    assert!(lm.lower_bound(u, v) <= d);
                    assert!(lm.upper_bound(u, v) >= d);
                }
            }
        }
    }
}

#[test]
fn hub_oracle_matches_ch() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(4000 + case);
        let g = sparse_graph(&mut rng);
        let ch = ContractionHierarchy::build(&g);
        let hub = HubLabelOracle {
            labeling: PrunedLandmarkLabeling::by_degree(&g).into_labeling(),
        };
        for u in 0..g.num_nodes() as NodeId {
            for v in (0..g.num_nodes() as NodeId).step_by(2) {
                assert_eq!(hub.distance(u, v), ch.query(u, v));
            }
        }
    }
}
