//! Randomized property tests for the graph substrate.
//!
//! These were originally `proptest` properties; offline builds cannot
//! resolve crates.io, so they now run over seeded [`Xorshift64`] input
//! streams — same properties, deterministic case generation.

use hl_graph::apsp::DistanceMatrix;
use hl_graph::bfs::{bfs_count_paths, bfs_distances};
use hl_graph::dijkstra::{
    bidirectional_distance, dijkstra_count_paths, dijkstra_distance_between, dijkstra_distances,
};
use hl_graph::properties::{connected_components, is_connected};
use hl_graph::rng::Xorshift64;
use hl_graph::sptree::ShortestPathTree;
use hl_graph::transform::{reduce_degree, subdivide_weights};
use hl_graph::{generators, GraphBuilder, NodeId, INFINITY};

const CASES: u64 = 48;

/// A connected sparse unit-weight graph drawn from the case rng.
fn sparse_graph(rng: &mut Xorshift64) -> hl_graph::Graph {
    let n = rng.gen_range_usize(4, 40);
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let extra = rng.gen_index(30).min(max_extra);
    generators::connected_gnm(n, extra, rng.next_u64())
}

/// A connected weighted graph (weights 1..=10).
fn weighted_graph(rng: &mut Xorshift64) -> hl_graph::Graph {
    let side = rng.gen_range_usize(4, 25);
    generators::weighted_grid(side, 3, rng.next_u64())
}

#[test]
fn bfs_triangle_inequality() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(case);
        let g = sparse_graph(&mut rng);
        let d0 = bfs_distances(&g, 0);
        let d1 = bfs_distances(&g, 1);
        for v in 0..g.num_nodes() {
            // d(0, v) <= d(0, 1) + d(1, v)
            assert!(d0[v] <= d1[v].saturating_add(d0[1]));
        }
    }
}

#[test]
fn bfs_edge_relaxation_consistency() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(1000 + case);
        let g = sparse_graph(&mut rng);
        let d = bfs_distances(&g, 0);
        for (u, v, _) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            assert!(
                du.abs_diff(dv) <= 1,
                "adjacent vertices differ by at most one hop"
            );
        }
    }
}

#[test]
fn dijkstra_matches_bfs_on_unit_graphs() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(2000 + case);
        let g = sparse_graph(&mut rng);
        assert_eq!(bfs_distances(&g, 0), dijkstra_distances(&g, 0));
    }
}

#[test]
fn point_to_point_matches_sssp() {
    for case in 0..CASES / 2 {
        let mut rng = Xorshift64::seed_from_u64(3000 + case);
        let g = weighted_graph(&mut rng);
        let d = dijkstra_distances(&g, 2);
        for t in (0..g.num_nodes() as NodeId).step_by(5) {
            assert_eq!(dijkstra_distance_between(&g, 2, t), d[t as usize]);
            assert_eq!(bidirectional_distance(&g, 2, t), d[t as usize]);
        }
    }
}

#[test]
fn apsp_symmetric_and_matches_sssp() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(4000 + case);
        let g = sparse_graph(&mut rng);
        let m = DistanceMatrix::compute(&g).unwrap();
        let s = 3 % g.num_nodes() as NodeId;
        let d = bfs_distances(&g, s);
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(m.distance(s, v), d[v as usize]);
            assert_eq!(m.distance(s, v), m.distance(v, s));
        }
    }
}

#[test]
fn path_counts_positive_for_reachable() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(5000 + case);
        let g = sparse_graph(&mut rng);
        let (d, c) = bfs_count_paths(&g, 0);
        for v in 0..g.num_nodes() {
            assert_eq!(d[v] != INFINITY, c[v] > 0);
        }
    }
}

#[test]
fn dijkstra_and_bfs_counts_agree() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(6000 + case);
        let g = sparse_graph(&mut rng);
        let (d1, c1) = bfs_count_paths(&g, 0);
        let (d2, c2) = dijkstra_count_paths(&g, 0);
        assert_eq!(d1, d2);
        assert_eq!(c1, c2);
    }
}

#[test]
fn sptree_paths_have_correct_length() {
    for case in 0..CASES / 2 {
        let mut rng = Xorshift64::seed_from_u64(7000 + case);
        let g = weighted_graph(&mut rng);
        let t = ShortestPathTree::build(&g, 0);
        let d = dijkstra_distances(&g, 0);
        for v in (0..g.num_nodes() as NodeId).step_by(3) {
            if let Some(path) = t.path_to(v) {
                let mut len = 0;
                for w in path.windows(2) {
                    len += g.edge_weight(w[0], w[1]).unwrap();
                }
                assert_eq!(len, d[v as usize]);
            }
        }
    }
}

#[test]
fn closure_is_superset_and_closed() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(8000 + case);
        let g = sparse_graph(&mut rng);
        let t = ShortestPathTree::build(&g, 0);
        let n = g.num_nodes();
        let picks = rng.gen_range_usize(1, 6);
        let set: Vec<NodeId> = (0..picks).map(|_| rng.gen_index(n) as NodeId).collect();
        let closure = t.ancestor_closure(&set);
        for &v in &set {
            assert!(closure.contains(&v));
        }
        // Closed under parents.
        for &v in &closure {
            if let Some(p) = t.parent(v) {
                assert!(closure.contains(&p));
            }
        }
    }
}

#[test]
fn degree_reduction_preserves_distances() {
    for case in 0..CASES / 2 {
        let mut rng = Xorshift64::seed_from_u64(9000 + case);
        let n = rng.gen_range_usize(8, 30);
        let hub = rng.gen_range_usize(4, 20).min(n - 1);
        let g = generators::skewed_sparse(n, hub, rng.next_u64());
        let red = reduce_degree(&g, 3).unwrap();
        assert!(red.graph.max_degree() <= 5);
        let orig = bfs_distances(&g, 0);
        let new = dijkstra_distances(&red.graph, red.representative[0]);
        for v in 0..n {
            assert_eq!(orig[v], new[red.representative[v] as usize]);
        }
    }
}

#[test]
fn subdivision_preserves_distances() {
    for case in 0..CASES / 2 {
        let mut rng = Xorshift64::seed_from_u64(10_000 + case);
        let g = weighted_graph(&mut rng);
        let sub = subdivide_weights(&g).unwrap();
        let orig = dijkstra_distances(&g, 0);
        let new = dijkstra_distances(&sub.graph, 0);
        for v in 0..g.num_nodes() {
            assert_eq!(orig[v], new[v]);
        }
    }
}

#[test]
fn components_partition_vertices() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(11_000 + case);
        let g = sparse_graph(&mut rng);
        let (labels, k) = connected_components(&g);
        assert!(k >= 1);
        assert!(labels.iter().all(|&l| (l as usize) < k));
        assert!(is_connected(&g)); // connected_gnm always connected
    }
}

#[test]
fn builder_dedup_idempotent() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(12_000 + case);
        let m = rng.gen_index(60);
        let edges: Vec<(u32, u32, u64)> = (0..m)
            .map(|_| {
                (
                    rng.gen_index(20) as u32,
                    rng.gen_index(20) as u32,
                    rng.gen_range_u64(1, 50),
                )
            })
            .collect();
        let mut b1 = GraphBuilder::new(20);
        let mut b2 = GraphBuilder::new(20);
        for &(u, v, w) in &edges {
            if u != v {
                b1.add_edge(u, v, w).unwrap();
                b2.add_edge(u, v, w).unwrap();
                b2.add_edge(v, u, w).unwrap(); // duplicates must not change result
            }
        }
        assert_eq!(b1.build(), b2.build());
    }
}
