//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use hl_graph::apsp::DistanceMatrix;
use hl_graph::bfs::{bfs_count_paths, bfs_distances};
use hl_graph::dijkstra::{
    bidirectional_distance, dijkstra_count_paths, dijkstra_distance_between, dijkstra_distances,
};
use hl_graph::properties::{connected_components, is_connected};
use hl_graph::sptree::ShortestPathTree;
use hl_graph::transform::{reduce_degree, subdivide_weights};
use hl_graph::{generators, GraphBuilder, NodeId, INFINITY};

/// Strategy: a connected sparse unit-weight graph plus a seed.
fn sparse_graph() -> impl Strategy<Value = hl_graph::Graph> {
    (4usize..40, 0usize..30, any::<u64>()).prop_map(|(n, extra, seed)| {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        generators::connected_gnm(n, extra.min(max_extra), seed)
    })
}

/// Strategy: a connected weighted graph (weights 1..=9).
fn weighted_graph() -> impl Strategy<Value = hl_graph::Graph> {
    (4usize..25, any::<u64>()).prop_map(|(side, seed)| generators::weighted_grid(side, 3, seed))
}

proptest! {
    #[test]
    fn bfs_triangle_inequality(g in sparse_graph()) {
        let d0 = bfs_distances(&g, 0);
        let d1 = bfs_distances(&g, 1);
        for v in 0..g.num_nodes() {
            // d(0, v) <= d(0, 1) + d(1, v)
            prop_assert!(d0[v] <= d1[v].saturating_add(d0[1]));
        }
    }

    #[test]
    fn bfs_edge_relaxation_consistency(g in sparse_graph()) {
        let d = bfs_distances(&g, 0);
        for (u, v, _) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            prop_assert!(du.abs_diff(dv) <= 1, "adjacent vertices differ by at most one hop");
        }
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_graphs(g in sparse_graph()) {
        prop_assert_eq!(bfs_distances(&g, 0), dijkstra_distances(&g, 0));
    }

    #[test]
    fn point_to_point_matches_sssp(g in weighted_graph()) {
        let d = dijkstra_distances(&g, 2);
        for t in (0..g.num_nodes() as NodeId).step_by(5) {
            prop_assert_eq!(dijkstra_distance_between(&g, 2, t), d[t as usize]);
            prop_assert_eq!(bidirectional_distance(&g, 2, t), d[t as usize]);
        }
    }

    #[test]
    fn apsp_symmetric_and_matches_sssp(g in sparse_graph()) {
        let m = DistanceMatrix::compute(&g).unwrap();
        let d = bfs_distances(&g, 3 % g.num_nodes() as NodeId);
        let s = 3 % g.num_nodes() as NodeId;
        for v in 0..g.num_nodes() as NodeId {
            prop_assert_eq!(m.distance(s, v), d[v as usize]);
            prop_assert_eq!(m.distance(s, v), m.distance(v, s));
        }
    }

    #[test]
    fn path_counts_positive_for_reachable(g in sparse_graph()) {
        let (d, c) = bfs_count_paths(&g, 0);
        for v in 0..g.num_nodes() {
            prop_assert_eq!(d[v] != INFINITY, c[v] > 0);
        }
    }

    #[test]
    fn dijkstra_and_bfs_counts_agree(g in sparse_graph()) {
        let (d1, c1) = bfs_count_paths(&g, 0);
        let (d2, c2) = dijkstra_count_paths(&g, 0);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn sptree_paths_have_correct_length(g in weighted_graph()) {
        let t = ShortestPathTree::build(&g, 0);
        let d = dijkstra_distances(&g, 0);
        for v in (0..g.num_nodes() as NodeId).step_by(3) {
            if let Some(path) = t.path_to(v) {
                let mut len = 0;
                for w in path.windows(2) {
                    len += g.edge_weight(w[0], w[1]).unwrap();
                }
                prop_assert_eq!(len, d[v as usize]);
            }
        }
    }

    #[test]
    fn closure_is_superset_and_closed(g in sparse_graph(), picks in proptest::collection::vec(0usize..1000, 1..6)) {
        let t = ShortestPathTree::build(&g, 0);
        let n = g.num_nodes();
        let set: Vec<NodeId> = picks.iter().map(|&p| (p % n) as NodeId).collect();
        let closure = t.ancestor_closure(&set);
        for &v in &set {
            prop_assert!(closure.contains(&v));
        }
        // Closed under parents.
        for &v in &closure {
            if let Some(p) = t.parent(v) {
                prop_assert!(closure.contains(&p));
            }
        }
    }

    #[test]
    fn degree_reduction_preserves_distances(n in 8usize..30, hub in 4usize..20, seed in any::<u64>()) {
        let hub = hub.min(n - 1);
        let g = generators::skewed_sparse(n, hub, seed);
        let red = reduce_degree(&g, 3).unwrap();
        prop_assert!(red.graph.max_degree() <= 5);
        let orig = bfs_distances(&g, 0);
        let new = dijkstra_distances(&red.graph, red.representative[0]);
        for v in 0..n {
            prop_assert_eq!(orig[v], new[red.representative[v] as usize]);
        }
    }

    #[test]
    fn subdivision_preserves_distances(g in weighted_graph()) {
        let sub = subdivide_weights(&g).unwrap();
        let orig = dijkstra_distances(&g, 0);
        let new = dijkstra_distances(&sub.graph, 0);
        for v in 0..g.num_nodes() {
            prop_assert_eq!(orig[v], new[v]);
        }
    }

    #[test]
    fn components_partition_vertices(g in sparse_graph()) {
        let (labels, k) = connected_components(&g);
        prop_assert!(k >= 1);
        prop_assert!(labels.iter().all(|&l| (l as usize) < k));
        prop_assert!(is_connected(&g)); // connected_gnm always connected
    }

    #[test]
    fn builder_dedup_idempotent(edges in proptest::collection::vec((0u32..20, 0u32..20, 1u64..50), 0..60)) {
        let mut b1 = GraphBuilder::new(20);
        let mut b2 = GraphBuilder::new(20);
        for &(u, v, w) in &edges {
            if u != v {
                b1.add_edge(u, v, w).unwrap();
                b2.add_edge(u, v, w).unwrap();
                b2.add_edge(v, u, w).unwrap(); // duplicates must not change result
            }
        }
        prop_assert_eq!(b1.build(), b2.build());
    }
}
