//! Breadth-first search primitives for unit-weight graphs.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId, INFINITY};
use crate::Distance;

/// Single-source BFS distances (in hops) from `source`.
///
/// Entries of unreachable vertices are [`INFINITY`].
///
/// # Example
///
/// ```
/// use hl_graph::{generators, bfs::bfs_distances};
///
/// let g = generators::cycle(6);
/// assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 2, 1]);
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Distance> {
    bfs_distances_bounded(g, source, INFINITY)
}

/// BFS distances from `source`, exploring only vertices within `bound` hops.
///
/// Vertices farther than `bound` (or unreachable) get [`INFINITY`].
pub fn bfs_distances_bounded(g: &Graph, source: NodeId, bound: Distance) -> Vec<Distance> {
    let mut dist = vec![INFINITY; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du >= bound {
            continue;
        }
        for &v in g.neighbor_ids(u) {
            if dist[v as usize] == INFINITY {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Multi-source BFS: distance from each vertex to its nearest source.
///
/// Returns `(distances, nearest_source)`; both are [`INFINITY`]/`u32::MAX`
/// marked for unreachable vertices.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> (Vec<Distance>, Vec<NodeId>) {
    let mut dist = vec![INFINITY; g.num_nodes()];
    let mut origin = vec![NodeId::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s as usize] == INFINITY {
            dist[s as usize] = 0;
            origin[s as usize] = s;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbor_ids(u) {
            if dist[v as usize] == INFINITY {
                dist[v as usize] = du + 1;
                origin[v as usize] = origin[u as usize];
                queue.push_back(v);
            }
        }
    }
    (dist, origin)
}

/// BFS that also returns, for each vertex, the parent on a canonical
/// (smallest-parent-id) shortest path tree rooted at `source`.
///
/// `parent[source] == source`; unreachable vertices have parent
/// `NodeId::MAX`.
pub fn bfs_with_parents(g: &Graph, source: NodeId) -> (Vec<Distance>, Vec<NodeId>) {
    let mut dist = vec![INFINITY; g.num_nodes()];
    let mut parent = vec![NodeId::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    parent[source as usize] = source;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbor_ids(u) {
            if dist[v as usize] == INFINITY {
                dist[v as usize] = du + 1;
                // Neighbors are scanned in increasing id order and BFS pops
                // vertices in increasing distance order, so the first parent
                // found is the smallest-id parent at the previous level.
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// Counts shortest paths from `source` to every vertex (saturating at
/// `u64::MAX`), along with the distances.
///
/// A count of exactly 1 certifies a *unique* shortest path, the property
/// exploited throughout Section 2 of the paper.
///
/// # Example
///
/// ```
/// use hl_graph::{generators, bfs::bfs_count_paths};
///
/// let g = generators::cycle(6);
/// let (dist, count) = bfs_count_paths(&g, 0);
/// assert_eq!(dist[3], 3);
/// assert_eq!(count[3], 2, "two ways around an even cycle");
/// ```
pub fn bfs_count_paths(g: &Graph, source: NodeId) -> (Vec<Distance>, Vec<u64>) {
    let mut dist = vec![INFINITY; g.num_nodes()];
    let mut count = vec![0u64; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    count[source as usize] = 1;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        let cu = count[u as usize];
        for &v in g.neighbor_ids(u) {
            if dist[v as usize] == INFINITY {
                dist[v as usize] = du + 1;
                count[v as usize] = cu;
                queue.push_back(v);
            } else if dist[v as usize] == du + 1 {
                count[v as usize] = count[v as usize].saturating_add(cu);
            }
        }
    }
    (dist, count)
}

/// Hop distance between a single pair, stopping as soon as `target` is
/// settled. Returns [`INFINITY`] when unreachable.
pub fn bfs_distance_between(g: &Graph, source: NodeId, target: NodeId) -> Distance {
    if source == target {
        return 0;
    }
    let mut dist = vec![INFINITY; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbor_ids(u) {
            if dist[v as usize] == INFINITY {
                if v == target {
                    return du + 1;
                }
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::generators;

    fn path5() -> Graph {
        generators::path(5)
    }

    #[test]
    fn distances_on_path() {
        let g = path5();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_is_infinity() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INFINITY);
        assert_eq!(d[3], INFINITY);
    }

    #[test]
    fn bounded_bfs_stops() {
        let g = path5();
        let d = bfs_distances_bounded(&g, 0, 2);
        assert_eq!(d, vec![0, 1, 2, INFINITY, INFINITY]);
    }

    #[test]
    fn bounded_zero_only_source() {
        let g = path5();
        let d = bfs_distances_bounded(&g, 2, 0);
        assert_eq!(d, vec![INFINITY, INFINITY, 0, INFINITY, INFINITY]);
    }

    #[test]
    fn multi_source_partitions() {
        let g = path5();
        let (d, o) = multi_source_bfs(&g, &[0, 4]);
        assert_eq!(d, vec![0, 1, 2, 1, 0]);
        assert_eq!(o[0], 0);
        assert_eq!(o[4], 4);
        assert_eq!(o[1], 0);
        assert_eq!(o[3], 4);
        // Tie at vertex 2 goes to whichever source reached it first (id 0
        // enqueued first).
        assert_eq!(o[2], 0);
    }

    #[test]
    fn parents_form_tree() {
        let g = generators::grid(3, 3);
        let (d, p) = bfs_with_parents(&g, 0);
        for v in 0..9u32 {
            if v == 0 {
                assert_eq!(p[0], 0);
                continue;
            }
            let pv = p[v as usize];
            assert_eq!(d[pv as usize] + 1, d[v as usize]);
            assert!(g.has_edge(pv, v));
        }
    }

    #[test]
    fn path_counting_on_cycle() {
        // On an even cycle the antipodal vertex has exactly 2 shortest paths.
        let g = generators::cycle(6);
        let (d, c) = bfs_count_paths(&g, 0);
        assert_eq!(d[3], 3);
        assert_eq!(c[3], 2);
        assert_eq!(c[1], 1);
        assert_eq!(c[2], 1);
    }

    #[test]
    fn path_counting_on_grid() {
        // In a 3x3 grid the opposite corner has C(4,2) = 6 shortest paths.
        let g = generators::grid(3, 3);
        let (d, c) = bfs_count_paths(&g, 0);
        assert_eq!(d[8], 4);
        assert_eq!(c[8], 6);
    }

    #[test]
    fn pairwise_early_exit_matches_full() {
        let g = generators::grid(4, 5);
        let d = bfs_distances(&g, 3);
        for t in 0..g.num_nodes() as NodeId {
            assert_eq!(bfs_distance_between(&g, 3, t), d[t as usize]);
        }
    }
}
