//! Error types for graph construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id was at least the declared number of nodes.
    NodeOutOfRange {
        /// The offending vertex id.
        node: u64,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// A self-loop `(u, u)` was supplied; the representation is for simple
    /// undirected graphs.
    SelfLoop {
        /// The vertex with the attempted self-loop.
        node: u64,
    },
    /// A distance matrix entry exceeded `u32::MAX` and cannot be stored
    /// densely.
    DistanceOverflow {
        /// The distance value that did not fit.
        distance: u64,
    },
    /// A graph parameter combination was invalid (e.g. more edges requested
    /// than a simple graph can hold).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} is not allowed"),
            GraphError::DistanceOverflow { distance } => {
                write!(
                    f,
                    "distance {distance} does not fit in the dense matrix entry type"
                )
            }
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid graph parameters: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            GraphError::NodeOutOfRange {
                node: 7,
                num_nodes: 3,
            },
            GraphError::SelfLoop { node: 2 },
            GraphError::DistanceOverflow {
                distance: u64::MAX - 1,
            },
            GraphError::InvalidParameters {
                reason: "m too large".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
