//! Union–find with path halving and union by size.

/// Disjoint-set forest over `0..n`.
///
/// # Example
///
/// ```
/// use hl_graph::unionfind::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.num_sets(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`, with path halving.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.num_sets -= 1;
        true
    }

    /// `true` when `a` and `b` lie in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.set_size(1), 1);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.set_size(2), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn chain_of_unions_single_set() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_sets(), 1);
        assert_eq!(uf.set_size(37), 100);
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
