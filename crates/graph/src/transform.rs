//! Graph transforms used in the paper's proofs.
//!
//! * [`reduce_degree`] — the vertex-splitting gadget from the proof of
//!   Theorem 1.4: a vertex of degree `d` becomes `ceil(d / cap)` copies
//!   linked by a weight-0 path, turning a constant *average* degree graph
//!   into a constant *max* degree one while preserving all distances
//!   between representatives.
//! * [`subdivide_weights`] — replaces an integer-weighted edge by a unit
//!   path of that many edges (used to turn `H_{b,l}`-style weighted graphs
//!   into unweighted ones while preserving distances), as in the
//!   construction of `G_{b,l}`.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// Outcome of [`reduce_degree`]: the transformed graph plus the
/// correspondence between original and new vertices.
#[derive(Debug, Clone)]
pub struct DegreeReduction {
    /// The transformed graph (max degree `<= cap + 2`).
    pub graph: Graph,
    /// For each original vertex, its representative in the new graph.
    pub representative: Vec<NodeId>,
    /// For each new vertex, the original vertex it belongs to.
    pub origin: Vec<NodeId>,
}

/// Splits every vertex of degree greater than `cap` into a weight-0 chain of
/// copies, each carrying at most `cap` of the original edges.
///
/// Distances between representatives equal original distances because the
/// connecting chain has total weight 0. The new graph has max degree at most
/// `cap + 2` and `O(m / cap + n)` vertices.
///
/// # Errors
///
/// Returns an error if `cap == 0`.
///
/// # Example
///
/// ```
/// use hl_graph::{generators, transform::reduce_degree};
/// use hl_graph::dijkstra::dijkstra_distances;
///
/// # fn main() -> Result<(), hl_graph::GraphError> {
/// let g = generators::star(10);
/// let red = reduce_degree(&g, 3)?;
/// assert!(red.graph.max_degree() <= 5);
/// // Distance between leaves is preserved (2 in the star).
/// let d = dijkstra_distances(&red.graph, red.representative[1]);
/// assert_eq!(d[red.representative[2] as usize], 2);
/// # Ok(())
/// # }
/// ```
pub fn reduce_degree(g: &Graph, cap: usize) -> Result<DegreeReduction, GraphError> {
    if cap == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "degree cap must be positive".into(),
        });
    }
    let n = g.num_nodes();
    // Assign each original vertex a contiguous block of copies.
    let mut first_copy = vec![0 as NodeId; n];
    let mut copies = vec![0usize; n];
    let mut total = 0usize;
    for v in 0..n {
        let d = g.degree(v as NodeId);
        let k = d.div_ceil(cap).max(1);
        first_copy[v] = total as NodeId;
        copies[v] = k;
        total += k;
    }
    let mut origin = vec![0 as NodeId; total];
    for v in 0..n {
        for c in 0..copies[v] {
            origin[first_copy[v] as usize + c] = v as NodeId;
        }
    }
    let mut b = GraphBuilder::with_capacity(total, g.num_edges() + total);
    // Weight-0 chains inside each block.
    for v in 0..n {
        for c in 1..copies[v] {
            b.add_edge(
                first_copy[v] + c as NodeId - 1,
                first_copy[v] + c as NodeId,
                0,
            )?;
        }
    }
    // Distribute original edges across copies: the i-th incident edge of v
    // attaches to copy i / cap.
    let mut used = vec![0usize; n];
    for (u, v, w) in g.edges() {
        let cu = first_copy[u as usize] + (used[u as usize] / cap) as NodeId;
        let cv = first_copy[v as usize] + (used[v as usize] / cap) as NodeId;
        used[u as usize] += 1;
        used[v as usize] += 1;
        b.add_edge(cu, cv, w)?;
    }
    Ok(DegreeReduction {
        graph: b.build(),
        representative: first_copy,
        origin,
    })
}

/// Outcome of [`subdivide_weights`]: the unit-weight graph plus the mapping
/// from original vertices to their images (auxiliary path vertices have no
/// preimage).
#[derive(Debug, Clone)]
pub struct Subdivision {
    /// The subdivided unit-weight graph.
    pub graph: Graph,
    /// Image of each original vertex (original ids are preserved: vertex `v`
    /// maps to `v`).
    pub num_original: usize,
}

/// Replaces each edge of integer weight `w >= 1` with a path of `w` unit
/// edges through `w - 1` fresh auxiliary vertices.
///
/// Preserves all pairwise distances between original vertices and keeps the
/// maximum degree unchanged (auxiliary vertices have degree 2).
///
/// # Errors
///
/// Returns an error if the graph contains a weight-0 edge (subdividing it
/// cannot preserve distances with unit edges).
pub fn subdivide_weights(g: &Graph) -> Result<Subdivision, GraphError> {
    let n = g.num_nodes();
    let total_edges = g.edges().map(|(_, _, w)| w.max(1)).sum::<u64>() as usize;
    let mut b = GraphBuilder::with_capacity(n, total_edges);
    for (u, v, w) in g.edges() {
        if w == 0 {
            return Err(GraphError::InvalidParameters {
                reason: "cannot subdivide a zero-weight edge into unit edges".into(),
            });
        }
        let mut prev = u;
        for _ in 1..w {
            let mid = b.add_node();
            b.add_unit_edge(prev, mid)?;
            prev = mid;
        }
        b.add_unit_edge(prev, v)?;
    }
    Ok(Subdivision {
        graph: b.build(),
        num_original: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp::DistanceMatrix;
    use crate::builder::graph_from_weighted_edges;
    use crate::dijkstra::dijkstra_distances;
    use crate::generators;

    #[test]
    fn reduce_degree_caps_degrees() {
        let g = generators::skewed_sparse(100, 60, 4);
        let cap = 4;
        let red = reduce_degree(&g, cap).unwrap();
        assert!(red.graph.max_degree() <= cap + 2);
        assert!(red.graph.num_nodes() >= g.num_nodes());
        assert_eq!(red.origin.len(), red.graph.num_nodes());
    }

    #[test]
    fn reduce_degree_preserves_distances() {
        let g = generators::skewed_sparse(60, 30, 9);
        let red = reduce_degree(&g, 3).unwrap();
        let orig = DistanceMatrix::compute(&g).unwrap();
        for u in (0..60u32).step_by(7) {
            let d = dijkstra_distances(&red.graph, red.representative[u as usize]);
            for v in 0..60u32 {
                assert_eq!(
                    d[red.representative[v as usize] as usize],
                    orig.distance(u, v),
                    "distance {u}-{v} changed under degree reduction"
                );
            }
        }
    }

    #[test]
    fn reduce_degree_identity_when_low_degree() {
        let g = generators::path(10);
        let red = reduce_degree(&g, 4).unwrap();
        assert_eq!(red.graph.num_nodes(), 10, "no splitting needed");
    }

    #[test]
    fn reduce_degree_rejects_zero_cap() {
        let g = generators::path(3);
        assert!(reduce_degree(&g, 0).is_err());
    }

    #[test]
    fn reduce_degree_isolated_vertices() {
        let g = Graph::empty(4);
        let red = reduce_degree(&g, 2).unwrap();
        assert_eq!(red.graph.num_nodes(), 4);
    }

    #[test]
    fn subdivision_preserves_distances() {
        let g =
            graph_from_weighted_edges(4, &[(0, 1, 3), (1, 2, 1), (2, 3, 5), (0, 3, 10)]).unwrap();
        let sub = subdivide_weights(&g).unwrap();
        assert!(sub.graph.is_unit_weighted());
        assert_eq!(sub.num_original, 4);
        // 0-1:3, plus 1-2:1, 2-3:5 -> d(0,3) = min(10, 9) = 9
        let d = dijkstra_distances(&sub.graph, 0);
        assert_eq!(d[3], 9);
        assert_eq!(d[1], 3);
        // New vertex count: 4 + (2 + 0 + 4 + 9) = 19
        assert_eq!(sub.graph.num_nodes(), 19);
    }

    #[test]
    fn subdivision_keeps_max_degree() {
        let g = graph_from_weighted_edges(3, &[(0, 1, 4), (0, 2, 4)]).unwrap();
        let sub = subdivide_weights(&g).unwrap();
        assert_eq!(sub.graph.max_degree(), 2);
    }

    #[test]
    fn subdivision_rejects_zero_weight() {
        let g = graph_from_weighted_edges(2, &[(0, 1, 0)]).unwrap();
        assert!(subdivide_weights(&g).is_err());
    }

    #[test]
    fn subdivision_of_unit_graph_is_identity_shape() {
        let g = generators::grid(3, 3);
        let sub = subdivide_weights(&g).unwrap();
        assert_eq!(sub.graph.num_nodes(), 9);
        assert_eq!(sub.graph.num_edges(), g.num_edges());
    }
}
