//! Structural graph properties: connectivity, components, eccentricity,
//! diameter.

use crate::dijkstra::shortest_path_distances;
use crate::graph::{Graph, NodeId, INFINITY};
use crate::unionfind::UnionFind;
use crate::Distance;

/// Connected components as a labelling `component[v] -> 0..k` (labels are
/// assigned in order of first appearance) together with the component count.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    for (u, v, _) in g.edges() {
        uf.union(u, v);
    }
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let r = uf.find(v);
        if label[r as usize] == u32::MAX {
            label[r as usize] = next;
            next += 1;
        }
        label[v as usize] = label[r as usize];
    }
    (label, next as usize)
}

/// `true` when the graph has at most one connected component.
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() <= 1 || connected_components(g).1 == 1
}

/// Weighted eccentricity of `v` (max finite distance); returns
/// [`INFINITY`] when some vertex is unreachable from `v`.
pub fn eccentricity(g: &Graph, v: NodeId) -> Distance {
    shortest_path_distances(g, v).into_iter().max().unwrap_or(0)
}

/// Exact weighted diameter by running SSSP from every vertex. Quadratic —
/// intended for the small and medium instances used in verification.
///
/// Returns [`INFINITY`] for disconnected graphs and `0` for graphs with
/// fewer than two vertices.
pub fn diameter_exact(g: &Graph) -> Distance {
    let n = g.num_nodes();
    if n <= 1 {
        return 0;
    }
    let mut best = 0;
    for v in 0..n as NodeId {
        let e = eccentricity(g, v);
        if e == INFINITY {
            return INFINITY;
        }
        best = best.max(e);
    }
    best
}

/// Double-sweep lower bound on the diameter: eccentricity of the farthest
/// vertex from an arbitrary start. Exact on trees; a lower bound in general.
pub fn diameter_double_sweep(g: &Graph) -> Distance {
    if g.num_nodes() == 0 {
        return 0;
    }
    let d0 = shortest_path_distances(g, 0);
    let (far, fd) = d0
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != INFINITY)
        .max_by_key(|(_, &d)| d)
        .map(|(v, &d)| (v as NodeId, d))
        .unwrap_or((0, 0));
    if fd == 0 {
        return 0;
    }
    eccentricity(g, far)
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_nodes() as NodeId {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Unweighted (hop-count) diameter, exact, via BFS from every vertex.
pub fn hop_diameter_exact(g: &Graph) -> Distance {
    let n = g.num_nodes();
    if n <= 1 {
        return 0;
    }
    let mut best = 0;
    for v in 0..n as NodeId {
        let e = crate::bfs::bfs_distances(g, v)
            .into_iter()
            .max()
            .unwrap_or(0);
        if e == INFINITY {
            return INFINITY;
        }
        best = best.max(e);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::generators;

    #[test]
    fn components_of_forest() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn single_vertex_connected() {
        assert!(is_connected(&generators::path(1)));
    }

    #[test]
    fn diameter_of_path() {
        let g = generators::path(10);
        assert_eq!(diameter_exact(&g), 9);
        assert_eq!(diameter_double_sweep(&g), 9);
        assert_eq!(hop_diameter_exact(&g), 9);
    }

    #[test]
    fn diameter_of_cycle() {
        let g = generators::cycle(8);
        assert_eq!(diameter_exact(&g), 4);
    }

    #[test]
    fn diameter_disconnected_is_infinite() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter_exact(&g), INFINITY);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        let g = generators::random_tree(120, 42);
        assert_eq!(diameter_double_sweep(&g), diameter_exact(&g));
    }

    #[test]
    fn weighted_diameter() {
        let g = crate::builder::graph_from_weighted_edges(3, &[(0, 1, 5), (1, 2, 7)]).unwrap();
        assert_eq!(diameter_exact(&g), 12);
        assert_eq!(eccentricity(&g, 1), 7);
    }

    #[test]
    fn degree_histogram_of_star() {
        let g = generators::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
        assert_eq!(h.iter().sum::<usize>(), 5);
    }
}
