//! Induced subgraph extraction with id remapping.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// An induced subgraph together with the vertex-id correspondence.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The extracted graph (vertices renumbered `0..k`).
    pub graph: Graph,
    /// `to_original[new_id] = old_id`.
    pub to_original: Vec<NodeId>,
    /// `to_new[old_id] = Some(new_id)` for kept vertices.
    pub to_new: Vec<Option<NodeId>>,
}

/// Extracts the subgraph induced by `keep` (order and duplicates are
/// normalized; ids are remapped to `0..k` preserving the original order).
///
/// # Panics
///
/// Panics if a vertex in `keep` is out of range.
pub fn induced_subgraph(g: &Graph, keep: &[NodeId]) -> InducedSubgraph {
    let mut kept: Vec<NodeId> = keep.to_vec();
    kept.sort_unstable();
    kept.dedup();
    let mut to_new = vec![None; g.num_nodes()];
    for (new, &old) in kept.iter().enumerate() {
        assert!((old as usize) < g.num_nodes(), "vertex {old} out of range");
        to_new[old as usize] = Some(new as NodeId);
    }
    // Both endpoints are remapped indices into `kept`, which sized the
    // builder, so the out-of-range error is unreachable.
    fn must_add(builder: &mut GraphBuilder, u: NodeId, v: NodeId, w: crate::Weight) {
        builder
            .add_edge(u, v, w)
            .expect("subgraph endpoints remapped below kept.len()"); // lint:allow(no-panic): both endpoints are indices into kept, which sized the builder
    }

    let mut builder = GraphBuilder::new(kept.len());
    for (new_u, &old) in kept.iter().enumerate() {
        for (v, w) in g.neighbors(old) {
            if v > old {
                if let Some(new_v) = to_new[v as usize] {
                    must_add(&mut builder, new_u as NodeId, new_v, w);
                }
            }
        }
    }
    InducedSubgraph {
        graph: builder.build(),
        to_original: kept,
        to_new,
    }
}

/// Extracts the connected component containing `v` as an induced subgraph.
pub fn component_of(g: &Graph, v: NodeId) -> InducedSubgraph {
    let (labels, _) = crate::properties::connected_components(g);
    let target = labels[v as usize];
    let keep: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&u| labels[u as usize] == target)
        .collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_weighted_edges;
    use crate::generators;

    #[test]
    fn keeps_internal_edges_only() {
        let g = generators::cycle(6);
        let sub = induced_subgraph(&g, &[0, 1, 2, 4]);
        assert_eq!(sub.graph.num_nodes(), 4);
        // Edges kept: 0-1, 1-2 (4 is isolated among the kept set).
        assert_eq!(sub.graph.num_edges(), 2);
        assert_eq!(sub.to_original, vec![0, 1, 2, 4]);
        assert_eq!(sub.to_new[4], Some(3));
        assert_eq!(sub.to_new[3], None);
    }

    #[test]
    fn weights_preserved() {
        let g = graph_from_weighted_edges(4, &[(0, 1, 9), (1, 2, 4), (2, 3, 2)]).unwrap();
        let sub = induced_subgraph(&g, &[1, 2]);
        assert_eq!(sub.graph.edge_weight(0, 1), Some(4));
    }

    #[test]
    fn duplicates_and_order_normalized() {
        let g = generators::path(5);
        let a = induced_subgraph(&g, &[3, 1, 2, 2]);
        let b = induced_subgraph(&g, &[1, 2, 3]);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.to_original, b.to_original);
    }

    #[test]
    fn component_extraction() {
        let g = crate::builder::graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let c0 = component_of(&g, 1);
        assert_eq!(c0.graph.num_nodes(), 3);
        assert_eq!(c0.graph.num_edges(), 2);
        let c1 = component_of(&g, 4);
        assert_eq!(c1.graph.num_nodes(), 2);
        let c2 = component_of(&g, 5);
        assert_eq!(c2.graph.num_nodes(), 1);
    }

    #[test]
    fn empty_keep_set() {
        let g = generators::path(3);
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.graph.num_nodes(), 0);
    }
}
