//! Balanced vertex separators (heuristic).
//!
//! The paper's §1.1 recounts how `O(√n)` hub labels for planar graphs come
//! from recursively splitting along small balanced separators (Gavoille–
//! Peleg–Pérennes–Raz). This module provides the separator-finding step:
//! a BFS-level heuristic that is *always correct* (removal disconnects the
//! part into pieces of at most `2/3` the vertices) and *small* on planar /
//! grid-like inputs, though without a worst-case size guarantee on
//! arbitrary graphs.

use crate::graph::{Graph, NodeId, INFINITY};

/// A balanced separator of a vertex subset.
#[derive(Debug, Clone)]
pub struct Separator {
    /// The separating vertices.
    pub vertices: Vec<NodeId>,
    /// The remaining parts after removal (each a vertex list), each of size
    /// at most `ceil(2/3 · |part|)`.
    pub parts: Vec<Vec<NodeId>>,
}

/// Finds a balanced separator of the sub-vertex-set `part` of `g` using the
/// BFS-level heuristic: run BFS (restricted to `part`) from an endpoint of
/// an approximate diameter path and cut at the level that best balances
/// "below" vs "above".
///
/// Guarantees: every returned part has at most `max(1, ceil(2|part|/3))`
/// vertices, and no edge of `g` joins two different parts. Falls back to
/// cutting out a single vertex when the part is tiny.
///
/// # Panics
///
/// Panics if `part` is empty.
pub fn bfs_level_separator(g: &Graph, part: &[NodeId]) -> Separator {
    assert!(!part.is_empty(), "cannot separate an empty part");
    if part.len() <= 2 {
        return Separator {
            vertices: vec![part[0]],
            parts: split_off(g, part, &[part[0]]),
        };
    }
    let in_part = member_mask(g.num_nodes(), part);
    // Double sweep inside the part for a deep root.
    let d0 = restricted_bfs(g, part[0], &in_part);
    let far = part
        .iter()
        .copied()
        .filter(|&v| d0[v as usize] != INFINITY)
        .max_by_key(|&v| d0[v as usize])
        .unwrap_or(part[0]);
    let dist = restricted_bfs(g, far, &in_part);

    // Count vertices per BFS level (unreachable ones live in their own
    // components and can go to any side; they are handled by split_off).
    let max_level = part
        .iter()
        .filter(|&&v| dist[v as usize] != INFINITY)
        .map(|&v| dist[v as usize])
        .max()
        .unwrap_or(0);
    if max_level == 0 {
        // Degenerate: the part is a clique-like single level or fully
        // disconnected; cut out the root.
        return Separator {
            vertices: vec![far],
            parts: split_off(g, part, &[far]),
        };
    }
    let mut level_count = vec![0usize; (max_level + 1) as usize];
    let mut reachable = 0usize;
    for &v in part {
        if dist[v as usize] != INFINITY {
            level_count[dist[v as usize] as usize] += 1;
            reachable += 1;
        }
    }
    // Choose the cut level minimizing the larger side while keeping the
    // separator small: score = larger_side + penalty * level_size.
    let mut below = 0usize;
    let mut best_level = 1u64;
    let mut best_score = usize::MAX;
    for level in 1..=max_level {
        below += level_count[(level - 1) as usize];
        let sep = level_count[level as usize];
        let above = reachable - below - sep;
        let score = below.max(above) + 2 * sep;
        if score < best_score {
            best_score = score;
            best_level = level;
        }
    }
    let mut sep: Vec<NodeId> = part
        .iter()
        .copied()
        .filter(|&v| dist[v as usize] == best_level)
        .collect();
    if sep.is_empty() {
        sep.push(far);
    }
    let mut parts = split_off(g, part, &sep);
    // Enforce the 2/3 balance: if a part is still too big (can happen on
    // expanders where one level holds almost everything), recurse on the
    // biggest part's own separator and merge. To stay simple and always
    // terminate we instead peel: move one separator-adjacent vertex of the
    // oversized part into the separator until balanced.
    let limit = (2 * part.len()).div_ceil(3).max(1);
    while let Some(big_idx) = parts.iter().position(|p| p.len() > limit) {
        let big = parts.swap_remove(big_idx);
        // Peel the vertex with the smallest BFS distance (closest to the
        // cut) into the separator, then re-split the remainder.
        let peel = *big
            .iter()
            .min_by_key(|&&v| (dist[v as usize], v))
            .expect("oversized part is nonempty"); // lint:allow(no-panic): big.len() > limit >= 1, so the minimum exists
        sep.push(peel);
        let rest: Vec<NodeId> = big.into_iter().filter(|&v| v != peel).collect();
        for piece in split_off(g, &rest, &[]) {
            parts.push(piece);
        }
    }
    Separator {
        vertices: sep,
        parts,
    }
}

fn member_mask(n: usize, part: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &v in part {
        mask[v as usize] = true;
    }
    mask
}

fn restricted_bfs(g: &Graph, source: NodeId, in_part: &[bool]) -> Vec<u64> {
    let mut dist = vec![INFINITY; g.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbor_ids(u) {
            if in_part[v as usize] && dist[v as usize] == INFINITY {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Splits `part` minus `sep` into connected components (within `part`).
fn split_off(g: &Graph, part: &[NodeId], sep: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut alive = member_mask(g.num_nodes(), part);
    for &s in sep {
        alive[s as usize] = false;
    }
    let mut seen = vec![false; g.num_nodes()];
    let mut parts = Vec::new();
    for &v in part {
        if !alive[v as usize] || seen[v as usize] {
            continue;
        }
        let mut comp = vec![v];
        seen[v as usize] = true;
        let mut i = 0;
        while i < comp.len() {
            let u = comp[i];
            i += 1;
            for &w in g.neighbor_ids(u) {
                if alive[w as usize] && !seen[w as usize] {
                    seen[w as usize] = true;
                    comp.push(w);
                }
            }
        }
        parts.push(comp);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_separator(g: &Graph, part: &[NodeId]) -> Separator {
        let sep = bfs_level_separator(g, part);
        let limit = (2 * part.len()).div_ceil(3).max(1);
        // Parts are balanced.
        for p in &sep.parts {
            assert!(
                p.len() <= limit,
                "part of {} exceeds limit {limit}",
                p.len()
            );
        }
        // Separator + parts partition the input.
        let mut all: Vec<NodeId> = sep.vertices.clone();
        for p in &sep.parts {
            all.extend_from_slice(p);
        }
        all.sort_unstable();
        let mut orig = part.to_vec();
        orig.sort_unstable();
        assert_eq!(all, orig);
        // No edge between different parts.
        for (i, p1) in sep.parts.iter().enumerate() {
            let mask = member_mask(g.num_nodes(), p1);
            for p2 in sep.parts.iter().skip(i + 1) {
                for &v in p2 {
                    for &w in g.neighbor_ids(v) {
                        assert!(!mask[w as usize], "edge {v}-{w} crosses parts");
                    }
                }
            }
        }
        sep
    }

    #[test]
    fn separates_path() {
        let g = generators::path(30);
        let part: Vec<NodeId> = (0..30).collect();
        let sep = check_separator(&g, &part);
        assert!(
            sep.vertices.len() <= 3,
            "a path splits at one vertex: {:?}",
            sep.vertices
        );
    }

    #[test]
    fn separates_grid_with_small_cut() {
        let g = generators::grid(12, 12);
        let part: Vec<NodeId> = (0..144).collect();
        let sep = check_separator(&g, &part);
        assert!(
            sep.vertices.len() <= 30,
            "grid separator should be O(side): {}",
            sep.vertices.len()
        );
        assert!(sep.parts.len() >= 2);
    }

    #[test]
    fn separates_tree() {
        let g = generators::balanced_binary_tree(6);
        let part: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        check_separator(&g, &part);
    }

    #[test]
    fn separates_sub_part_only() {
        // Operate on half the cycle; the other half must be untouched.
        let g = generators::cycle(20);
        let part: Vec<NodeId> = (0..10).collect();
        let sep = check_separator(&g, &part);
        for p in &sep.parts {
            assert!(p.iter().all(|&v| v < 10));
        }
    }

    #[test]
    fn handles_tiny_parts() {
        let g = generators::path(5);
        for size in 1..=2 {
            let part: Vec<NodeId> = (0..size).collect();
            let sep = bfs_level_separator(&g, &part);
            assert_eq!(sep.vertices.len(), 1);
        }
    }

    #[test]
    fn handles_disconnected_parts() {
        let g = crate::builder::graph_from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let part: Vec<NodeId> = (0..6).collect();
        check_separator(&g, &part);
    }

    #[test]
    fn handles_expander_with_peeling() {
        let g = generators::union_of_matchings(60, 3, 5);
        let part: Vec<NodeId> = (0..60).collect();
        check_separator(&g, &part); // balance enforced even if cut is big
    }
}
