//! Canonical shortest-path trees and path extraction.
//!
//! The proof of Theorem 2.1 fixes, for every vertex `v`, an arbitrary
//! shortest-path tree `T_v` and replaces hub sets `S_v` with the vertex set
//! `S*_v` of the minimal subtree of `T_v` containing them. This module
//! provides those trees with a *canonical* deterministic choice
//! (smallest-id parents) plus the closure operation.

use crate::bfs::bfs_with_parents;
use crate::dijkstra::dijkstra_with_parents;
use crate::graph::{Graph, NodeId, INFINITY};
use crate::Distance;

/// A rooted canonical shortest-path tree.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    root: NodeId,
    dist: Vec<Distance>,
    parent: Vec<NodeId>,
}

impl ShortestPathTree {
    /// Builds the canonical shortest-path tree rooted at `root`.
    ///
    /// Uses BFS for unit-weight graphs and Dijkstra otherwise.
    pub fn build(g: &Graph, root: NodeId) -> Self {
        let (dist, parent) = if g.is_unit_weighted() {
            bfs_with_parents(g, root)
        } else {
            dijkstra_with_parents(g, root)
        };
        ShortestPathTree { root, dist, parent }
    }

    /// The tree root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Distance from the root to `v`.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.dist[v as usize]
    }

    /// Parent of `v` in the tree (`root`'s parent is itself); `None` when
    /// `v` is unreachable.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v as usize];
        if p == NodeId::MAX {
            None
        } else {
            Some(p)
        }
    }

    /// The root-to-`v` path as a vertex sequence (inclusive); `None` when
    /// unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[v as usize] == INFINITY {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.root {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Closes `set` under tree ancestors: returns the vertex set of the
    /// minimal subtree rooted at the root containing all of `set` — the
    /// `S*_v` of Theorem 2.1 (Eq. 1). Unreachable members are dropped.
    pub fn ancestor_closure(&self, set: &[NodeId]) -> Vec<NodeId> {
        let mut in_closure = vec![false; self.dist.len()];
        in_closure[self.root as usize] = true;
        for &v in set {
            if self.dist[v as usize] == INFINITY {
                continue;
            }
            let mut cur = v;
            while !in_closure[cur as usize] {
                in_closure[cur as usize] = true;
                cur = self.parent[cur as usize];
            }
        }
        (0..self.dist.len() as NodeId)
            .filter(|&v| in_closure[v as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::generators;

    #[test]
    fn path_extraction_on_grid() {
        let g = generators::grid(3, 3);
        let t = ShortestPathTree::build(&g, 0);
        let p = t.path_to(8).unwrap();
        assert_eq!(p.len(), 5, "4 hops from corner to corner");
        assert_eq!(p[0], 0);
        assert_eq!(p[4], 8);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn unreachable_has_no_path() {
        let g = graph_from_edges(3, &[(0, 1)]).unwrap();
        let t = ShortestPathTree::build(&g, 0);
        assert!(t.path_to(2).is_none());
        assert_eq!(t.parent(2), None);
        assert_eq!(t.distance(2), INFINITY);
    }

    #[test]
    fn root_properties() {
        let g = generators::path(4);
        let t = ShortestPathTree::build(&g, 2);
        assert_eq!(t.root(), 2);
        assert_eq!(t.parent(2), Some(2));
        assert_eq!(t.path_to(2).unwrap(), vec![2]);
    }

    #[test]
    fn closure_contains_set_and_ancestors() {
        let g = generators::balanced_binary_tree(3);
        let t = ShortestPathTree::build(&g, 0);
        // Leaves 7 and 9: closure must contain their root paths.
        let closure = t.ancestor_closure(&[7, 9]);
        // path to 7: 0,1,3,7 ; path to 9: 0,1,4,9
        let expected: Vec<NodeId> = vec![0, 1, 3, 4, 7, 9];
        assert_eq!(closure, expected);
    }

    #[test]
    fn closure_of_empty_set_is_root() {
        let g = generators::path(5);
        let t = ShortestPathTree::build(&g, 3);
        assert_eq!(t.ancestor_closure(&[]), vec![3]);
    }

    #[test]
    fn closure_size_bounded_by_depth_times_set() {
        let g = generators::grid(5, 5);
        let t = ShortestPathTree::build(&g, 0);
        let set = [24u32, 20, 4];
        let closure = t.ancestor_closure(&set);
        let max_depth = 8; // hop diameter of the grid from corner
        assert!(closure.len() <= (max_depth + 1) * set.len());
        for &v in &set {
            assert!(closure.contains(&v));
        }
    }

    #[test]
    fn weighted_tree_canonical_parents() {
        let g = generators::weighted_grid(4, 4, 77);
        let t = ShortestPathTree::build(&g, 0);
        for v in 1..16u32 {
            let p = t.parent(v).unwrap();
            let w = g.edge_weight(p, v).unwrap();
            assert_eq!(t.distance(p) + w, t.distance(v));
        }
    }
}
