//! Graph substrate for the hub-labeling reproduction.
//!
//! This crate provides the undirected graph representation and the classical
//! algorithms every other crate in the workspace builds upon:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) representation of an
//!   undirected graph with `u64` edge weights (weight `0` is allowed, which
//!   the degree-reduction transform of the paper requires).
//! * [`GraphBuilder`] — incremental, validating construction.
//! * Traversal: [`bfs`], [`dijkstra`] (plus bounded, targeted, bidirectional
//!   and path-counting variants), [`apsp`] dense all-pairs matrices and
//!   canonical shortest-path trees ([`sptree`]).
//! * [`generators`] — deterministic and seeded random graph families used by
//!   the experiments (paths, trees, grids, sparse random graphs, …).
//! * [`transform`] — the degree-reduction gadget from the proof of
//!   Theorem 1.4 and integer-weight edge subdivision.
//! * [`properties`] — connectivity, eccentricities, diameter.
//!
//! # Example
//!
//! ```
//! use hl_graph::{GraphBuilder, dijkstra::shortest_path_distances};
//!
//! # fn main() -> Result<(), hl_graph::GraphError> {
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1)?;
//! b.add_edge(1, 2, 2)?;
//! b.add_edge(2, 3, 1)?;
//! let g = b.build();
//! let dist = shortest_path_distances(&g, 0);
//! assert_eq!(dist[3], 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp;
pub mod bfs;
pub mod builder;
pub mod dijkstra;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod properties;
pub mod rng;
pub mod separator;
pub mod sptree;
pub mod subgraph;
pub mod sync;
pub mod transform;
pub mod unionfind;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Graph, NodeId, Weight, INFINITY};

/// Distance value used throughout the workspace (`u64`, with
/// [`INFINITY`] = `u64::MAX` denoting "unreachable").
pub type Distance = u64;
