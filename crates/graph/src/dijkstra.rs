//! Dijkstra-based shortest paths for weighted graphs (weight 0 allowed).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bfs;
use crate::graph::{Graph, NodeId, INFINITY};
use crate::Distance;

/// Single-source shortest-path distances from `source`.
///
/// Dispatches to BFS when the graph is unit-weighted. Unreachable vertices
/// get [`INFINITY`].
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn shortest_path_distances(g: &Graph, source: NodeId) -> Vec<Distance> {
    if g.is_unit_weighted() {
        bfs::bfs_distances(g, source)
    } else {
        dijkstra_distances(g, source)
    }
}

/// Dijkstra distances from `source` (no unit-weight dispatch).
pub fn dijkstra_distances(g: &Graph, source: NodeId) -> Vec<Distance> {
    dijkstra_distances_bounded(g, source, INFINITY)
}

/// Dijkstra distances from `source`, settling only vertices with distance
/// `<= bound`.
pub fn dijkstra_distances_bounded(g: &Graph, source: NodeId, bound: Distance) -> Vec<Distance> {
    let mut dist = vec![INFINITY; g.num_nodes()];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((du, u))) = heap.pop() {
        if du > dist[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = du.saturating_add(w);
            if nd <= bound && nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Dijkstra with canonical parents: among all optimal predecessors the one
/// with the smallest id is chosen, making the shortest-path tree unique and
/// deterministic — the "fixed shortest path trees T_v" of Theorem 2.1's proof.
///
/// Returns `(distances, parents)`; `parent[source] == source`, unreachable
/// vertices get `NodeId::MAX`.
///
/// # Panics
///
/// Debug-asserts that every edge weight is strictly positive; canonical
/// smallest-id parents are only well-defined without zero-weight edges.
pub fn dijkstra_with_parents(g: &Graph, source: NodeId) -> (Vec<Distance>, Vec<NodeId>) {
    debug_assert!(
        g.edges().all(|(_, _, w)| w > 0),
        "dijkstra_with_parents requires strictly positive edge weights"
    );
    let dist = dijkstra_distances(g, source);
    // With final distances known, the canonical parent of v is the
    // smallest-id neighbor u with dist[u] + w(u, v) == dist[v]. Positive
    // weights guarantee dist[u] < dist[v] for tight predecessors, so parent
    // chains strictly decrease in distance and form a tree.
    let mut parent = vec![NodeId::MAX; g.num_nodes()];
    parent[source as usize] = source;
    for v in 0..g.num_nodes() as NodeId {
        if dist[v as usize] == INFINITY || v == source {
            continue;
        }
        let dv = dist[v as usize];
        let mut best = NodeId::MAX;
        for (u, w) in g.neighbors(v) {
            if dist[u as usize] != INFINITY && dist[u as usize] + w == dv && u < best {
                best = u;
            }
        }
        parent[v as usize] = best;
    }
    (dist, parent)
}

/// Counts shortest paths from `source` (saturating), along with distances.
///
/// Used to certify *uniqueness* of shortest paths (count == 1), the key
/// structural property of the `H_{b,l}` gadget (Lemma 2.2).
///
/// # Panics
///
/// Debug-asserts that every edge weight is strictly positive; path counts
/// are ill-defined in the presence of zero-weight edges.
pub fn dijkstra_count_paths(g: &Graph, source: NodeId) -> (Vec<Distance>, Vec<u64>) {
    debug_assert!(
        g.edges().all(|(_, _, w)| w > 0),
        "dijkstra_count_paths requires strictly positive edge weights"
    );
    let dist = dijkstra_distances(g, source);
    // With final distances known, count paths over the shortest-path DAG in
    // increasing-distance order; positive weights make every tight edge go
    // from a strictly smaller distance to a strictly larger one.
    let n = g.num_nodes();
    let mut order: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| dist[v as usize] != INFINITY)
        .collect();
    order.sort_unstable_by_key(|&v| dist[v as usize]);
    let mut count = vec![0u64; n];
    count[source as usize] = 1;
    for &v in &order {
        if v == source {
            continue;
        }
        let dv = dist[v as usize];
        let mut c = 0u64;
        for (u, w) in g.neighbors(v) {
            let du = dist[u as usize];
            if du != INFINITY && du < dv && du + w == dv {
                c = c.saturating_add(count[u as usize]);
            }
        }
        count[v as usize] = c;
    }
    (dist, count)
}

/// Point-to-point distance with early termination once `target` is settled.
pub fn dijkstra_distance_between(g: &Graph, source: NodeId, target: NodeId) -> Distance {
    if source == target {
        return 0;
    }
    let mut dist = vec![INFINITY; g.num_nodes()];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((du, u))) = heap.pop() {
        if u == target {
            return du;
        }
        if du > dist[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = du + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    INFINITY
}

/// Bidirectional Dijkstra point-to-point distance.
///
/// Settles vertices from both endpoints alternately and stops when the two
/// search frontiers certify optimality (`top_f + top_b >= best`).
pub fn bidirectional_distance(g: &Graph, source: NodeId, target: NodeId) -> Distance {
    if source == target {
        return 0;
    }
    let n = g.num_nodes();
    let mut dist_f = vec![INFINITY; n];
    let mut dist_b = vec![INFINITY; n];
    let mut heap_f = BinaryHeap::new();
    let mut heap_b = BinaryHeap::new();
    dist_f[source as usize] = 0;
    dist_b[target as usize] = 0;
    heap_f.push(Reverse((0u64, source)));
    heap_b.push(Reverse((0u64, target)));
    let mut best = INFINITY;
    loop {
        let tf = heap_f.peek().map(|Reverse((d, _))| *d);
        let tb = heap_b.peek().map(|Reverse((d, _))| *d);
        match (tf, tb) {
            (None, None) => break,
            (Some(a), Some(b)) if a.saturating_add(b) >= best => break,
            _ => {}
        }
        // Expand the side with the smaller top; a side that ran dry is
        // skipped (the other may still improve `best`... it cannot, but
        // breaking keeps the invariant simple).
        let forward = match (tf, tb) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!(),
        };
        let (heap, dist, other) = if forward {
            (&mut heap_f, &mut dist_f, &dist_b)
        } else {
            (&mut heap_b, &mut dist_b, &dist_f)
        };
        if let Some(Reverse((du, u))) = heap.pop() {
            if du > dist[u as usize] {
                continue;
            }
            if other[u as usize] != INFINITY {
                best = best.min(du.saturating_add(other[u as usize]));
            }
            for (v, w) in g.neighbors(u) {
                let nd = du + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                    if other[v as usize] != INFINITY {
                        best = best.min(nd.saturating_add(other[v as usize]));
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_weighted_edges;
    use crate::generators;

    fn weighted_diamond() -> Graph {
        // 0 -1- 1 -1- 3 and 0 -3- 2 -0- 3 : d(0,3) = 2 via 0-1-3
        graph_from_weighted_edges(4, &[(0, 1, 1), (1, 3, 1), (0, 2, 3), (2, 3, 0)]).unwrap()
    }

    #[test]
    fn dijkstra_basic() {
        let g = weighted_diamond();
        let d = dijkstra_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 2]);
    }

    #[test]
    fn zero_weight_edges() {
        let g = graph_from_weighted_edges(3, &[(0, 1, 0), (1, 2, 0)]).unwrap();
        let d = dijkstra_distances(&g, 0);
        assert_eq!(d, vec![0, 0, 0]);
    }

    #[test]
    fn dispatch_matches_bfs_on_unit_graph() {
        let g = generators::grid(4, 4);
        for s in 0..4 {
            assert_eq!(shortest_path_distances(&g, s), dijkstra_distances(&g, s));
        }
    }

    #[test]
    fn bounded_dijkstra() {
        let g = weighted_diamond();
        let d = dijkstra_distances_bounded(&g, 0, 1);
        assert_eq!(d, vec![0, 1, INFINITY, INFINITY]);
    }

    #[test]
    fn parents_are_canonical_and_consistent() {
        let g = generators::grid(3, 4);
        let (d, p) = dijkstra_with_parents(&g, 0);
        for v in 1..g.num_nodes() as NodeId {
            let pv = p[v as usize];
            assert!(g.has_edge(pv, v));
            let w = g.edge_weight(pv, v).unwrap();
            assert_eq!(d[pv as usize] + w, d[v as usize]);
            // Canonical: no smaller-id optimal predecessor exists.
            for (u, w2) in g.neighbors(v) {
                if d[u as usize] != INFINITY && d[u as usize] + w2 == d[v as usize] {
                    assert!(pv <= u);
                }
            }
        }
    }

    #[test]
    fn count_paths_unique_on_tree() {
        let g = generators::balanced_binary_tree(4);
        let (_, c) = dijkstra_count_paths(&g, 0);
        for (v, &count) in c.iter().enumerate() {
            assert_eq!(count, 1, "vertex {v}: trees have unique shortest paths");
        }
    }

    #[test]
    fn count_paths_matches_bfs_counts() {
        let g = generators::grid(4, 4);
        let (d1, c1) = bfs::bfs_count_paths(&g, 0);
        let (d2, c2) = dijkstra_count_paths(&g, 0);
        assert_eq!(d1, d2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn point_to_point_and_bidirectional_agree() {
        let g = generators::weighted_grid(5, 5, 0xC0FFEE);
        let full = dijkstra_distances(&g, 7);
        for t in 0..g.num_nodes() as NodeId {
            assert_eq!(dijkstra_distance_between(&g, 7, t), full[t as usize]);
            assert_eq!(bidirectional_distance(&g, 7, t), full[t as usize]);
        }
    }

    #[test]
    fn bidirectional_disconnected() {
        let g = graph_from_weighted_edges(4, &[(0, 1, 2), (2, 3, 2)]).unwrap();
        assert_eq!(bidirectional_distance(&g, 0, 3), INFINITY);
        assert_eq!(dijkstra_distance_between(&g, 0, 3), INFINITY);
    }
}
