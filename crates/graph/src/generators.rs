//! Deterministic and seeded-random graph families used by the experiments.
//!
//! All random generators take an explicit `u64` seed and are reproducible
//! bit-for-bit.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId, Weight};
use crate::rng::Xorshift64;

/// Every generator computes endpoints as indices below the builder's `n`,
/// so [`GraphBuilder::add_edge`] — whose only failure is an out-of-range
/// endpoint — cannot fail here. Funneling all insertions through this one
/// place keeps that argument (and its single waiver) in one spot.
fn must_add(b: &mut GraphBuilder, u: NodeId, v: NodeId, w: Weight) {
    b.add_edge(u, v, w)
        .expect("generator endpoints are below n by construction"); // lint:allow(no-panic): every generator derives endpoints from indices < n, the only error add_edge can return
}

fn must_add_unit(b: &mut GraphBuilder, u: NodeId, v: NodeId) {
    must_add(b, u, v, 1);
}

/// Path graph `0 - 1 - … - (n-1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path requires n >= 1");
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        must_add_unit(&mut b, (i - 1) as NodeId, i as NodeId);
    }
    b.build()
}

/// Cycle graph on `n >= 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires n >= 3");
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 0..n {
        must_add_unit(&mut b, i as NodeId, ((i + 1) % n) as NodeId);
    }
    b.build()
}

/// Star with center `0` and `n - 1` leaves.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "star requires n >= 1");
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        must_add_unit(&mut b, 0, i as NodeId);
    }
    b.build()
}

/// Complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete requires n >= 1");
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            must_add_unit(&mut b, i as NodeId, j as NodeId);
        }
    }
    b.build()
}

/// `rows x cols` 2-dimensional grid, unit weights. Vertex `(r, c)` has id
/// `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid requires positive dimensions");
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                must_add_unit(&mut b, id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                must_add_unit(&mut b, id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// `rows x cols` grid with seeded random integer weights in `[1, 10]` —
/// a stand-in for road-network-like inputs.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn weighted_grid(rows: usize, cols: usize, seed: u64) -> Graph {
    assert!(
        rows > 0 && cols > 0,
        "weighted_grid requires positive dimensions"
    );
    let mut rng = Xorshift64::seed_from_u64(seed);
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let w: Weight = rng.gen_range_inclusive_u64(1, 10);
                must_add(&mut b, id(r, c), id(r, c + 1), w);
            }
            if r + 1 < rows {
                let w: Weight = rng.gen_range_inclusive_u64(1, 10);
                must_add(&mut b, id(r, c), id(r + 1, c), w);
            }
        }
    }
    b.build()
}

/// Perfectly balanced binary tree with `depth` full levels below the root
/// (depth 0 = a single vertex). Ids follow heap order (`children of v` are
/// `2v+1`, `2v+2`).
pub fn balanced_binary_tree(depth: u32) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..n {
        must_add_unit(&mut b, ((v - 1) / 2) as NodeId, v as NodeId);
    }
    b.build()
}

/// Seeded uniformly random labelled tree (random attachment to a previously
/// inserted vertex — a random recursive tree).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "random_tree requires n >= 1");
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        let parent = rng.gen_index(v);
        must_add_unit(&mut b, parent as NodeId, v as NodeId);
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` vertices with `legs` pendant leaves
/// on each spine vertex.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar requires a nonempty spine");
    let n = spine * (legs + 1);
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for i in 1..spine {
        must_add_unit(&mut b, (i - 1) as NodeId, i as NodeId);
    }
    let mut next = spine;
    for i in 0..spine {
        for _ in 0..legs {
            must_add_unit(&mut b, i as NodeId, next as NodeId);
            next += 1;
        }
    }
    b.build()
}

/// Connected sparse random graph: a uniformly random spanning tree
/// (recursive-attachment) plus `extra_edges` additional uniformly random
/// non-duplicate edges. This is the workspace's model for "graphs with
/// `m = O(n)`" — the sparse class the paper studies.
///
/// # Example
///
/// ```
/// use hl_graph::{generators, properties};
///
/// let g = generators::connected_gnm(100, 50, 7);
/// assert_eq!(g.num_edges(), 149);
/// assert!(properties::is_connected(&g));
/// ```
///
/// # Panics
///
/// Panics if `n < 2` or if the requested edges exceed `n(n-1)/2`.
pub fn connected_gnm(n: usize, extra_edges: usize, seed: u64) -> Graph {
    assert!(n >= 2, "connected_gnm requires n >= 2");
    let max_extra = n * (n - 1) / 2 - (n - 1);
    assert!(
        extra_edges <= max_extra,
        "requested {extra_edges} extra edges but only {max_extra} fit in a simple graph"
    );
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut present = std::collections::HashSet::new();
    let mut b = GraphBuilder::with_capacity(n, n - 1 + extra_edges);
    for v in 1..n {
        let parent = rng.gen_index(v);
        must_add_unit(&mut b, parent as NodeId, v as NodeId);
        present.insert((parent.min(v), parent.max(v)));
    }
    let mut added = 0;
    while added < extra_edges {
        let u = rng.gen_index(n);
        let v = rng.gen_index(n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            must_add_unit(&mut b, u as NodeId, v as NodeId);
            added += 1;
        }
    }
    b.build()
}

/// Seeded random `d`-regular-ish graph built as a union of `d` random
/// perfect matchings on an even vertex set (max degree `<= d`, and exactly
/// `d` unless a matching collides with a previous edge).
///
/// # Panics
///
/// Panics if `n` is odd or zero.
pub fn union_of_matchings(n: usize, d: usize, seed: u64) -> Graph {
    assert!(
        n > 0 && n.is_multiple_of(2),
        "union_of_matchings requires positive even n"
    );
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n / 2 * d);
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..d {
        rng.shuffle(&mut perm);
        for pair in perm.chunks_exact(2) {
            must_add_unit(&mut b, pair[0] as NodeId, pair[1] as NodeId);
        }
    }
    b.build()
}

/// Unit-disk graph: `n` seeded-random points in the unit square, an edge
/// between points at Euclidean distance at most `radius`, with weight
/// `round(1000 · distance) + 1`. Planar-like geometric structure — the
/// closest substitute for the road/planar networks of §1.1 that needs no
/// embedding machinery.
///
/// # Panics
///
/// Panics if `n == 0` or `radius <= 0.0`.
pub fn unit_disk(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(n > 0, "unit_disk requires n >= 1");
    assert!(radius > 0.0, "radius must be positive");
    let mut rng = Xorshift64::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen_f64(), rng.gen_f64())).collect();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= radius {
                must_add(
                    &mut b,
                    i as NodeId,
                    j as NodeId,
                    (d * 1000.0).round() as Weight + 1,
                );
            }
        }
    }
    b.build()
}

/// Preferential-attachment graph (Barabási–Albert flavor): each new vertex
/// attaches to `m_edges` existing vertices chosen proportionally to degree
/// (by sampling endpoints of existing edges). Produces the heavy-tailed
/// degree distributions of the "real-world networks" the paper's §1.1
/// discusses.
///
/// # Panics
///
/// Panics if `n < 2` or `m_edges == 0`.
pub fn preferential_attachment(n: usize, m_edges: usize, seed: u64) -> Graph {
    assert!(n >= 2, "preferential_attachment requires n >= 2");
    assert!(m_edges >= 1, "each vertex must attach at least once");
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_edges);
    // Endpoint pool: picking a uniform element = degree-proportional vertex.
    let mut pool: Vec<NodeId> = vec![0, 1];
    must_add_unit(&mut b, 0, 1);
    for v in 2..n {
        let mut targets = std::collections::BTreeSet::new();
        let want = m_edges.min(v);
        let mut attempts = 0;
        while targets.len() < want && attempts < 50 * want {
            targets.insert(pool[rng.gen_index(pool.len())]);
            attempts += 1;
        }
        for &t in &targets {
            must_add_unit(&mut b, v as NodeId, t);
            pool.push(v as NodeId);
            pool.push(t);
        }
    }
    b.build()
}

/// Skewed-degree sparse graph: a random tree plus a hub vertex adjacent to
/// `hub_degree` random vertices. Average degree stays `O(1)` while the
/// maximum degree is large — the case Theorem 1.4's degree-reduction
/// transform exists for.
///
/// # Panics
///
/// Panics if `n < 2` or `hub_degree >= n`.
pub fn skewed_sparse(n: usize, hub_degree: usize, seed: u64) -> Graph {
    assert!(n >= 2, "skewed_sparse requires n >= 2");
    assert!(hub_degree < n, "hub_degree must be < n");
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n - 1 + hub_degree);
    for v in 1..n {
        let parent = rng.gen_index(v);
        must_add_unit(&mut b, parent as NodeId, v as NodeId);
    }
    let mut attached = 0;
    while attached < hub_degree {
        let v = rng.gen_range_usize(1, n);
        must_add_unit(&mut b, 0, v as NodeId);
        attached += 1;
    }
    b.build()
}

/// Connects a possibly-fragmented edge set by threading one unit edge from
/// each additional component to component 0's representative, in vertex-id
/// order. Deterministic, adds at most `components - 1` edges, and keeps
/// every generator below it guaranteed-connected without rejection loops.
fn bridge_components(b: &mut GraphBuilder, uf: &mut crate::unionfind::UnionFind, n: usize) {
    if n == 0 {
        return;
    }
    let anchor = uf.find(0);
    for v in 1..n {
        let root = uf.find(v as u32);
        if root != anchor {
            must_add_unit(b, 0, v as NodeId);
            uf.union(0, v as u32);
        }
    }
}

/// R-MAT / Kronecker-style power-law graph (Chakrabarti–Zhan–Faloutsos):
/// each of the `m` edges picks its endpoints by descending `scale` levels
/// of a 2×2 quadrant matrix with probabilities `(a, b, c, d) =
/// (0.57, 0.19, 0.19, 0.05)` — the standard Graph500 parameters. The
/// vertex count is `2^scale`. Self-loops are re-rolled; duplicate edges
/// collapse in the builder (so `num_edges` is at most `m`). A final
/// union-find pass threads stray components onto vertex 0 so the result
/// is always connected.
///
/// Deterministic for a given `(scale, m, seed)` triple.
///
/// # Panics
///
/// Panics if `scale == 0`, `scale > 31`, or `m == 0`.
pub fn rmat(scale: u32, m: usize, seed: u64) -> Graph {
    assert!(scale > 0 && scale <= 31, "rmat requires 1 <= scale <= 31");
    assert!(m > 0, "rmat requires m >= 1");
    let n = 1usize << scale;
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut uf = crate::unionfind::UnionFind::new(n);
    let mut b = GraphBuilder::with_capacity(n, m + 64);
    // Graph500 quadrant probabilities; cumulative thresholds for one draw.
    const A: f64 = 0.57;
    const AB: f64 = 0.57 + 0.19;
    const ABC: f64 = 0.57 + 0.19 + 0.19;
    let mut placed = 0usize;
    while placed < m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r = rng.gen_f64();
            let (bit_u, bit_v) = if r < A {
                (0, 0)
            } else if r < AB {
                (0, 1)
            } else if r < ABC {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | bit_u;
            v = (v << 1) | bit_v;
        }
        if u == v {
            continue;
        }
        must_add_unit(&mut b, u as NodeId, v as NodeId);
        uf.union(u as u32, v as u32);
        placed += 1;
    }
    bridge_components(&mut b, &mut uf, n);
    b.build()
}

/// Power-law graph via the configuration model: vertex `v >= 1` gets
/// `max(1, floor(c / v^(1/(gamma-1))))` stubs — the discretized inverse of
/// a power-law degree CDF with exponent `gamma` — the stub list is
/// shuffled once, and consecutive stub pairs become edges (self-loops
/// skipped, duplicates collapsed by the builder). A union-find bridging
/// pass connects the leftovers. `gamma` is given in tenths (e.g. `25`
/// means `γ = 2.5`) to keep the signature integral and hashable.
///
/// Deterministic for a given `(n, gamma_tenths, seed)` triple.
///
/// # Panics
///
/// Panics if `n < 2` or `gamma_tenths <= 10` (the exponent must exceed 1).
pub fn power_law_configuration(n: usize, gamma_tenths: u32, seed: u64) -> Graph {
    assert!(n >= 2, "power_law_configuration requires n >= 2");
    assert!(
        gamma_tenths > 10,
        "power-law exponent must exceed 1.0 (gamma_tenths > 10)"
    );
    let gamma = f64::from(gamma_tenths) / 10.0;
    let inv = 1.0 / (gamma - 1.0);
    // Scale constant so the largest degree is ~n^(1/(gamma-1)), capped at
    // n-1 to stay simple.
    let c = (n as f64).powf(inv);
    let mut stubs: Vec<NodeId> = Vec::new();
    for v in 0..n {
        let rank = (v + 1) as f64;
        let deg = (c / rank.powf(inv)).floor().max(1.0) as usize;
        let deg = deg.min(n - 1);
        for _ in 0..deg {
            stubs.push(v as NodeId);
        }
    }
    if !stubs.len().is_multiple_of(2) {
        stubs.pop();
    }
    let mut rng = Xorshift64::seed_from_u64(seed);
    rng.shuffle(&mut stubs);
    let mut uf = crate::unionfind::UnionFind::new(n);
    let mut b = GraphBuilder::with_capacity(n, stubs.len() / 2 + 64);
    for pair in stubs.chunks_exact(2) {
        if pair[0] == pair[1] {
            continue;
        }
        must_add_unit(&mut b, pair[0], pair[1]);
        uf.union(pair[0], pair[1]);
    }
    bridge_components(&mut b, &mut uf, n);
    b.build()
}

/// Road-style network: a `rows × cols` grid with seeded-random integer
/// edge weights in `[1, max_w]` (local streets), plus `shortcuts` long-range
/// weighted edges between uniformly random vertex pairs (highways). The
/// grid skeleton keeps it connected and near-planar; the shortcuts give it
/// the small-separator-but-not-quite structure of real road networks the
/// paper's §1.1 discusses.
///
/// Deterministic for a given `(rows, cols, shortcuts, seed)` tuple.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid_with_shortcuts(rows: usize, cols: usize, shortcuts: usize, seed: u64) -> Graph {
    assert!(
        rows > 0 && cols > 0,
        "grid_with_shortcuts requires rows, cols >= 1"
    );
    let n = rows * cols;
    let max_w: u64 = 8;
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 2 * n + shortcuts);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                must_add(
                    &mut b,
                    id(r, c),
                    id(r, c + 1),
                    rng.gen_range_inclusive_u64(1, max_w),
                );
            }
            if r + 1 < rows {
                must_add(
                    &mut b,
                    id(r, c),
                    id(r + 1, c),
                    rng.gen_range_inclusive_u64(1, max_w),
                );
            }
        }
    }
    let mut placed = 0usize;
    while placed < shortcuts && n >= 2 {
        let u = rng.gen_index(n);
        let v = rng.gen_index(n);
        if u == v {
            continue;
        }
        // Highways are fast relative to hop count: weight scales sublinearly
        // with grid distance so they actually shorten routes.
        let (ur, uc) = (u / cols, u % cols);
        let (vr, vc) = (v / cols, v % cols);
        let manhattan = ur.abs_diff(vr) + uc.abs_diff(vc);
        let w = ((manhattan as u64) / 2).max(1);
        must_add(&mut b, u as NodeId, v as NodeId, w);
        placed += 1;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.max_degree(), 2);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn single_vertex_path() {
        let g = path(1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        assert!((0..7).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(9);
        assert_eq!(g.degree(0), 8);
        assert!((1..9).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn weighted_grid_deterministic() {
        let a = weighted_grid(4, 4, 11);
        let b = weighted_grid(4, 4, 11);
        let c = weighted_grid(4, 4, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_unit_weighted() || a.edges().all(|(_, _, w)| w == 1));
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_binary_tree(3);
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree(64, 5);
        assert_eq!(g.num_edges(), 63);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 15);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn connected_gnm_counts() {
        let g = connected_gnm(50, 30, 99);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 79);
        assert!(properties::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "extra edges")]
    fn connected_gnm_rejects_too_dense() {
        let _ = connected_gnm(4, 100, 0);
    }

    #[test]
    fn union_of_matchings_bounded_degree() {
        let g = union_of_matchings(32, 3, 7);
        assert!(g.max_degree() <= 3);
        assert!(g.num_edges() <= 48);
    }

    #[test]
    fn unit_disk_shape() {
        let g = unit_disk(150, 0.15, 4);
        assert_eq!(g.num_nodes(), 150);
        assert!(g.num_edges() > 0);
        // Geometric graphs at this density are mostly sparse.
        assert!(g.average_degree() < 12.0);
        // Weights reflect distances: all within (0, 1000·0.15 + 1].
        assert!(g.edges().all(|(_, _, w)| (1..=151).contains(&w)));
        assert_eq!(unit_disk(150, 0.15, 4), g, "seeded determinism");
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(300, 2, 11);
        assert_eq!(g.num_nodes(), 300);
        assert!(properties::is_connected(&g));
        assert!(g.average_degree() <= 5.0, "stays sparse");
        // Heavy tail: the max degree should far exceed the average.
        assert!(g.max_degree() as f64 > 3.0 * g.average_degree());
    }

    #[test]
    fn preferential_attachment_deterministic() {
        assert_eq!(
            preferential_attachment(60, 2, 4),
            preferential_attachment(60, 2, 4)
        );
    }

    #[test]
    fn skewed_sparse_has_hub() {
        let g = skewed_sparse(200, 80, 3);
        assert!(g.degree(0) >= 40, "hub should have large degree");
        assert!(g.average_degree() < 4.0);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn generators_deterministic_by_seed() {
        assert_eq!(random_tree(30, 1), random_tree(30, 1));
        assert_eq!(connected_gnm(30, 10, 2), connected_gnm(30, 10, 2));
        assert_eq!(union_of_matchings(30, 2, 3), union_of_matchings(30, 2, 3));
    }

    #[test]
    fn rmat_shape_and_determinism() {
        let g = rmat(10, 4096, 7);
        assert_eq!(g.num_nodes(), 1024);
        assert!(g.num_edges() > 0 && g.num_edges() <= 4096 + 1024);
        assert!(properties::is_connected(&g), "bridging pass connects rmat");
        assert!(g.is_unit_weighted());
        // Skew: the busiest vertex sits far above the average degree.
        assert!(g.max_degree() as f64 > 4.0 * g.average_degree());
        assert_eq!(rmat(10, 4096, 7), g, "same seed, identical edge list");
        assert_ne!(rmat(10, 4096, 8), g, "different seed, different graph");
    }

    #[test]
    fn power_law_configuration_shape_and_determinism() {
        let g = power_law_configuration(2000, 25, 5);
        assert_eq!(g.num_nodes(), 2000);
        assert!(properties::is_connected(&g));
        assert!(g.average_degree() < 12.0, "stays sparse");
        assert!(
            g.max_degree() as f64 > 5.0 * g.average_degree(),
            "heavy tail"
        );
        assert_eq!(power_law_configuration(2000, 25, 5), g);
        assert_ne!(power_law_configuration(2000, 25, 6), g);
    }

    #[test]
    fn grid_with_shortcuts_shape_and_determinism() {
        let g = grid_with_shortcuts(20, 30, 50, 9);
        assert_eq!(g.num_nodes(), 600);
        assert!(properties::is_connected(&g), "grid skeleton connects it");
        assert!(!g.is_unit_weighted(), "road weights are non-uniform");
        // 2·20·30 - 20 - 30 grid edges plus up to 50 shortcuts.
        assert!(g.num_edges() >= 1150);
        assert_eq!(grid_with_shortcuts(20, 30, 50, 9), g);
        assert_ne!(grid_with_shortcuts(20, 30, 50, 10), g);
    }
}
