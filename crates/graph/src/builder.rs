//! Incremental, validating construction of [`Graph`]s.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId, Weight};

/// Builder accumulating undirected edges before freezing them into a CSR
/// [`Graph`].
///
/// Duplicate edges are allowed during accumulation; [`GraphBuilder::build`]
/// keeps the *minimum* weight among duplicates (the natural semantics for
/// shortest-path work).
///
/// # Example
///
/// ```
/// use hl_graph::GraphBuilder;
///
/// # fn main() -> Result<(), hl_graph::GraphError> {
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(0, 1, 9)?;
/// b.add_edge(1, 0, 4)?; // duplicate, lower weight wins
/// let g = b.build();
/// assert_eq!(g.edge_weight(0, 1), Some(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity reserved for `num_edges` edges.
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::with_capacity(num_edges),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added so far (before deduplication).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Grows the vertex set to at least `n` vertices and returns the builder
    /// for chaining.
    pub fn grow_to(&mut self, n: usize) -> &mut Self {
        self.num_nodes = self.num_nodes.max(n);
        self
    }

    /// Adds a fresh vertex and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.num_nodes as NodeId;
        self.num_nodes += 1;
        id
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is not a valid
    /// vertex and [`GraphError::SelfLoop`] when `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), GraphError> {
        if u as usize >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u as u64,
                num_nodes: self.num_nodes,
            });
        }
        if v as usize >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: self.num_nodes,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u as u64 });
        }
        self.edges.push((u.min(v), u.max(v), w));
        Ok(())
    }

    /// Adds an undirected unit-weight edge.
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::add_edge`].
    pub fn add_unit_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.add_edge(u, v, 1)
    }

    /// Freezes the accumulated edges into an immutable CSR [`Graph`].
    ///
    /// Duplicates collapse to their minimum weight. Adjacency lists come out
    /// sorted by neighbor id.
    pub fn build(mut self) -> Graph {
        // Sort (u, v, w); duplicates become adjacent with the smallest weight
        // first, so a linear dedup pass keeps the minimum.
        self.edges.sort_unstable();
        self.edges
            .dedup_by(|next, kept| next.0 == kept.0 && next.1 == kept.1);

        let n = self.num_nodes;
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let total = offsets[n];
        let mut targets = vec![0 as NodeId; total];
        let mut weights = vec![0 as Weight; total];
        let mut cursor = offsets.clone();
        let mut unit = true;
        for &(u, v, w) in &self.edges {
            unit &= w == 1;
            let cu = cursor[u as usize];
            targets[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            targets[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        // Edges were sorted by (u, v); the forward copies are therefore
        // already sorted per row, but the reverse copies need a per-row sort.
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            let row: &mut Vec<(NodeId, Weight)> = &mut targets[lo..hi]
                .iter()
                .copied()
                .zip(weights[lo..hi].iter().copied())
                .collect::<Vec<_>>();
            row.sort_unstable_by_key(|&(t, _)| t);
            for (i, &(t, w)) in row.iter().enumerate() {
                targets[lo + i] = t;
                weights[lo + i] = w;
            }
        }
        let num_edges = self.edges.len();
        Graph::from_csr(offsets, targets, weights, num_edges, unit)
    }
}

/// Builds a unit-weight graph straight from an edge list.
///
/// Convenience for tests and generators.
///
/// # Errors
///
/// Propagates [`GraphError`] from edge insertion.
pub fn graph_from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for &(u, v) in edges {
        b.add_unit_edge(u, v)?;
    }
    Ok(b.build())
}

/// Builds a weighted graph straight from an edge list.
///
/// # Errors
///
/// Propagates [`GraphError`] from edge insertion.
pub fn graph_from_weighted_edges(
    n: usize,
    edges: &[(NodeId, NodeId, Weight)],
) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for &(u, v, w) in edges {
        b.add_edge(u, v, w)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(0, 2, 1),
            Err(GraphError::NodeOutOfRange {
                node: 2,
                num_nodes: 2
            })
        );
        assert_eq!(
            b.add_edge(5, 0, 1),
            Err(GraphError::NodeOutOfRange {
                node: 5,
                num_nodes: 2
            })
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn dedup_keeps_minimum_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 7).unwrap();
        b.add_edge(1, 0, 3).unwrap();
        b.add_edge(0, 1, 5).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn adjacency_sorted() {
        let mut b = GraphBuilder::new(5);
        for v in [4u32, 2, 3, 1] {
            b.add_edge(0, v, v as u64).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbor_ids(0), &[1, 2, 3, 4]);
        let ws: Vec<_> = g.neighbors(0).map(|(_, w)| w).collect();
        assert_eq!(ws, vec![1, 2, 3, 4]);
    }

    #[test]
    fn add_node_grows() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_node();
        assert_eq!(v, 1);
        b.add_edge(0, 1, 1).unwrap();
        assert_eq!(b.build().num_nodes(), 2);
    }

    #[test]
    fn grow_to_never_shrinks() {
        let mut b = GraphBuilder::new(5);
        b.grow_to(3);
        assert_eq!(b.num_nodes(), 5);
        b.grow_to(9);
        assert_eq!(b.num_nodes(), 9);
    }

    #[test]
    fn zero_weight_edges_supported() {
        let g = graph_from_weighted_edges(3, &[(0, 1, 0), (1, 2, 0)]).unwrap();
        assert!(!g.is_unit_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(0));
    }

    #[test]
    fn from_edges_helpers() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(g.is_unit_weighted());
        assert_eq!(g.num_edges(), 2);
        assert!(graph_from_edges(1, &[(0, 1)]).is_err());
    }
}
