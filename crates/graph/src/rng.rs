//! Tiny self-contained pseudo-random generator for seeded, reproducible
//! graph generation and sampling.
//!
//! The workspace must build with **no external dependencies** (offline
//! environments cannot resolve crates.io), so instead of `rand` every
//! seeded utility uses this xorshift64* generator. It is deterministic
//! bit-for-bit across platforms and releases: the same seed always yields
//! the same stream, which the generator tests rely on.
//!
//! Not cryptographic — statistical quality only (xorshift64* passes the
//! usual empirical batteries, which is plenty for graph sampling).

/// Seeded xorshift64* generator with a SplitMix64-scrambled seed.
///
/// # Example
///
/// ```
/// use hl_graph::rng::Xorshift64;
///
/// let mut a = Xorshift64::seed_from_u64(7);
/// let mut b = Xorshift64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Creates a generator from a `u64` seed. Any seed (including 0) is
    /// valid; a SplitMix64 scramble step decorrelates nearby seeds.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // xorshift state must be nonzero.
        Xorshift64 { state: z | 1 }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`, bias-free (Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_u64_below requires a positive bound");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_u64 requires lo < hi");
        lo + self.gen_u64_below(hi - lo)
    }

    /// Uniform value in the *closed* range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_inclusive_u64 requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_u64_below(hi - lo + 1)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_u64_below(n as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Draws `k` distinct elements from `xs` (seeded partial shuffle);
    /// returns fewer when `xs` is shorter than `k`.
    pub fn sample<T: Clone>(&mut self, xs: &[T], k: usize) -> Vec<T> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx.into_iter().map(|i| xs[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = Xorshift64::seed_from_u64(42);
        let mut b = Xorshift64::seed_from_u64(42);
        let mut c = Xorshift64::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_works() {
        let mut r = Xorshift64::seed_from_u64(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Xorshift64::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(r.gen_u64_below(7) < 7);
            let v = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
            let w = r.gen_range_inclusive_u64(1, 10);
            assert!((1..=10).contains(&w));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.gen_u64_below(1), 0);
        assert_eq!(r.gen_range_inclusive_u64(5, 5), 5);
    }

    #[test]
    fn range_values_cover_support() {
        let mut r = Xorshift64::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xorshift64::seed_from_u64(9);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "50! permutations, identity is wildly unlikely"
        );
    }

    #[test]
    fn sample_draws_distinct() {
        let mut r = Xorshift64::seed_from_u64(11);
        let xs: Vec<u32> = (0..30).collect();
        let mut s = r.sample(&xs, 10);
        assert_eq!(s.len(), 10);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
        assert_eq!(r.sample(&xs, 100).len(), 30, "capped at population size");
    }

    #[test]
    fn bools_are_mixed() {
        let mut r = Xorshift64::seed_from_u64(5);
        let heads = (0..1000).filter(|_| r.gen_bool()).count();
        assert!((300..700).contains(&heads), "heads = {heads}");
    }
}
