//! The compressed-sparse-row (CSR) undirected graph representation.

/// Vertex identifier. Graphs in this workspace are bounded by `u32` ids.
pub type NodeId = u32;

/// Edge weight. Weight `0` is legal (used by the degree-reduction transform).
pub type Weight = u64;

/// Sentinel distance denoting an unreachable vertex.
pub const INFINITY: u64 = u64::MAX;

/// An undirected graph in CSR form.
///
/// Each undirected edge `{u, v}` is stored twice (once per direction).
/// The structure is immutable after construction; use
/// [`GraphBuilder`](crate::GraphBuilder) to create one.
///
/// # Example
///
/// ```
/// use hl_graph::GraphBuilder;
///
/// # fn main() -> Result<(), hl_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1)?;
/// b.add_edge(1, 2, 5)?;
/// let g = b.build();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(1), 2);
/// let nbrs: Vec<_> = g.neighbors(1).collect();
/// assert_eq!(nbrs, vec![(0, 1), (2, 5)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<Weight>,
    num_edges: usize,
    unit_weights: bool,
}

impl Graph {
    /// Assembles a graph from raw CSR arrays. Used by [`crate::GraphBuilder`];
    /// invariants (sorted adjacency, symmetric edges) are the builder's
    /// responsibility.
    pub(crate) fn from_csr(
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        weights: Vec<Weight>,
        num_edges: usize,
        unit_weights: bool,
    ) -> Self {
        debug_assert_eq!(targets.len(), weights.len());
        debug_assert_eq!(*offsets.last().unwrap_or(&0), targets.len());
        Graph {
            offsets,
            targets,
            weights,
            num_edges,
            unit_weights,
        }
    }

    /// Creates an empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
            num_edges: 0,
            unit_weights: true,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `true` when every edge has weight exactly 1, enabling BFS-based
    /// shortest paths.
    #[inline]
    pub fn is_unit_weighted(&self) -> bool {
        self.unit_weights
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n` as a float (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / self.num_nodes() as f64
    }

    /// Iterates over `(neighbor, weight)` pairs of `v`, sorted by neighbor id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        let v = v as usize;
        let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
        Neighbors {
            targets: &self.targets[lo..hi],
            weights: &self.weights[lo..hi],
            idx: 0,
        }
    }

    /// The sorted neighbor ids of `v` (without weights).
    #[inline]
    pub fn neighbor_ids(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Returns the weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let ids = self.neighbor_ids(u);
        ids.binary_search(&v).ok().map(|i| {
            let base = self.offsets[u as usize];
            self.weights[base + i]
        })
    }

    /// `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Iterates over every undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .filter_map(move |(v, w)| if u < v { Some((u, v, w)) } else { None })
        })
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_weight(&self) -> u64 {
        self.edges().map(|(_, _, w)| w).sum()
    }

    /// The largest edge weight, or `None` for an edgeless graph.
    pub fn max_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().max()
    }

    /// Approximate heap footprint of the CSR arrays, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
            + self.weights.len() * std::mem::size_of::<Weight>()
    }
}

/// Iterator over the `(neighbor, weight)` pairs of one vertex.
///
/// Produced by [`Graph::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    targets: &'a [NodeId],
    weights: &'a [Weight],
    idx: usize,
}

impl<'a> Iterator for Neighbors<'a> {
    type Item = (NodeId, Weight);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.idx < self.targets.len() {
            let item = (self.targets[self.idx], self.weights[self.idx]);
            self.idx += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.targets.len() - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 2).unwrap();
        b.add_edge(0, 2, 3).unwrap();
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_unit_weighted());
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_weight(), None);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn triangle_basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(!g.is_unit_weighted());
        assert_eq!(g.edge_weight(0, 2), Some(3));
        assert_eq!(g.edge_weight(2, 0), Some(3));
        assert_eq!(g.edge_weight(1, 1), None);
        assert!(g.has_edge(1, 2));
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.max_weight(), Some(3));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 3), (1, 2, 2)]);
    }

    #[test]
    fn neighbors_sorted_and_exact_size() {
        let g = triangle();
        let it = g.neighbors(2);
        assert_eq!(it.len(), 2);
        let nbrs: Vec<_> = it.collect();
        assert_eq!(nbrs, vec![(0, 3), (1, 2)]);
        assert_eq!(g.neighbor_ids(2), &[0, 1]);
    }

    #[test]
    fn unit_weight_detection() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1).unwrap();
        assert!(b.build().is_unit_weighted());
    }

    #[test]
    fn memory_estimate_positive() {
        assert!(triangle().memory_bytes() > 0);
    }

    #[test]
    fn debug_names_fields() {
        let g = triangle();
        assert!(format!("{g:?}").contains("offsets"));
    }
}
