//! Panic-free mutex access.
//!
//! A poisoned `Mutex` means some other thread panicked while holding the
//! lock. Every mutex in this workspace guards data whose invariants are
//! maintained *before* the lock is released (caches, accumulators,
//! worklists), so the guarded value is still coherent after a poison —
//! recovering it is strictly better than propagating a second panic out
//! of an otherwise-healthy thread. These helpers centralize that policy
//! so callers never need `lock().unwrap()`.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering the guard if the mutex was poisoned.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires a read guard on `l`, recovering from poison.
pub fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires a write guard on `l`, recovering from poison.
pub fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Unwraps a `Mutex` into its inner value, recovering from poison.
pub fn into_inner_unpoisoned<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, RwLock};

    #[test]
    fn lock_and_into_inner_roundtrip() {
        let m = Mutex::new(7u32);
        *lock_unpoisoned(&m) += 1;
        assert_eq!(into_inner_unpoisoned(m), 8);
    }

    #[test]
    fn rwlock_read_write_roundtrip() {
        let l = RwLock::new(3u32);
        *write_unpoisoned(&l) += 1;
        assert_eq!(*read_unpoisoned(&l), 4);
    }

    #[test]
    fn poisoned_rwlock_is_recovered() {
        let l = std::sync::Arc::new(RwLock::new(9u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert!(l.is_poisoned());
        *write_unpoisoned(&l) += 1;
        assert_eq!(*read_unpoisoned(&l), 10);
    }

    #[test]
    fn poisoned_mutex_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(41u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 42);
    }
}
