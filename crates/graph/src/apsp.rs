//! Dense all-pairs shortest path matrices.
//!
//! Ground truth for verifying hub labelings and distance labelings. Entries
//! are stored as `u32` (with `u32::MAX` = unreachable) to halve memory; all
//! instances used for full verification fit comfortably.

use std::sync::Mutex;

use crate::dijkstra::shortest_path_distances;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId, INFINITY};
use crate::sync::{into_inner_unpoisoned, lock_unpoisoned};
use crate::Distance;

/// Sentinel for "unreachable" inside the dense matrix.
const UNREACHABLE: u32 = u32::MAX;

/// Dense `n x n` shortest-path distance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<u32>,
}

impl DistanceMatrix {
    /// Computes the matrix by running SSSP from every vertex, in parallel
    /// across available cores.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DistanceOverflow`] if any finite distance
    /// exceeds `u32::MAX - 1`.
    pub fn compute(g: &Graph) -> Result<Self, GraphError> {
        let n = g.num_nodes();
        let mut data = vec![UNREACHABLE; n * n];
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let threads = threads.min(n.max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);
        let error: Mutex<Option<GraphError>> = Mutex::new(None);

        // Hand out disjoint row slices to worker threads.
        let rows: Vec<Mutex<&mut [u32]>> = data.chunks_mut(n.max(1)).map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let v = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if v >= n {
                        break;
                    }
                    let dist = shortest_path_distances(g, v as NodeId);
                    let mut row = lock_unpoisoned(&rows[v]);
                    for (u, &d) in dist.iter().enumerate() {
                        if d == INFINITY {
                            row[u] = UNREACHABLE;
                        } else if d >= UNREACHABLE as u64 {
                            *lock_unpoisoned(&error) =
                                Some(GraphError::DistanceOverflow { distance: d });
                            return;
                        } else {
                            row[u] = d as u32;
                        }
                    }
                });
            }
        });
        if let Some(e) = into_inner_unpoisoned(error) {
            return Err(e);
        }
        Ok(DistanceMatrix { n, data })
    }

    /// Number of vertices the matrix covers.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Distance between `u` and `v` ([`INFINITY`] when unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        let raw = self.data[u as usize * self.n + v as usize];
        if raw == UNREACHABLE {
            INFINITY
        } else {
            raw as Distance
        }
    }

    /// The full distance row of vertex `u`, as raw `u32` entries
    /// (`u32::MAX` = unreachable).
    pub fn row(&self, u: NodeId) -> &[u32] {
        &self.data[u as usize * self.n..(u as usize + 1) * self.n]
    }

    /// Iterates over all ordered pairs `(u, v, dist)` with finite distance.
    pub fn finite_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, Distance)> + '_ {
        (0..self.n as NodeId).flat_map(move |u| {
            (0..self.n as NodeId).filter_map(move |v| {
                let d = self.distance(u, v);
                if d == INFINITY {
                    None
                } else {
                    Some((u, v, d))
                }
            })
        })
    }

    /// Largest finite entry (the diameter for connected graphs).
    pub fn max_finite(&self) -> Distance {
        self.data
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .map(|&d| d as Distance)
            .max()
            .unwrap_or(0)
    }
}

/// The set of *valid hubs* `H_{uv} = { x : d(u,x) + d(x,v) = d(u,v) }` for a
/// pair, computed from a distance matrix. This is the central object of the
/// Theorem 4.1 construction.
pub fn valid_hubs(m: &DistanceMatrix, u: NodeId, v: NodeId) -> Vec<NodeId> {
    let duv = m.distance(u, v);
    if duv == INFINITY {
        return Vec::new();
    }
    (0..m.num_nodes() as NodeId)
        .filter(|&x| {
            let a = m.distance(u, x);
            let b = m.distance(x, v);
            a != INFINITY && b != INFINITY && a + b == duv
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, graph_from_weighted_edges};
    use crate::generators;

    #[test]
    fn matrix_matches_sssp() {
        let g = generators::weighted_grid(6, 7, 5);
        let m = DistanceMatrix::compute(&g).unwrap();
        for v in [0u32, 3, 17, 41] {
            let d = shortest_path_distances(&g, v);
            for u in 0..g.num_nodes() as NodeId {
                assert_eq!(m.distance(v, u), d[u as usize]);
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let g = generators::connected_gnm(40, 20, 8);
        let m = DistanceMatrix::compute(&g).unwrap();
        for u in 0..40u32 {
            for v in 0..40u32 {
                assert_eq!(m.distance(u, v), m.distance(v, u));
            }
        }
    }

    #[test]
    fn unreachable_pairs() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let m = DistanceMatrix::compute(&g).unwrap();
        assert_eq!(m.distance(0, 2), INFINITY);
        assert_eq!(m.distance(0, 1), 1);
        assert_eq!(
            m.finite_pairs().count(),
            8,
            "2 components of 2 vertices: 4 pairs each"
        );
    }

    #[test]
    fn max_finite_is_diameter() {
        let g = generators::path(9);
        let m = DistanceMatrix::compute(&g).unwrap();
        assert_eq!(m.max_finite(), 8);
    }

    #[test]
    fn valid_hubs_on_path() {
        let g = generators::path(5);
        let m = DistanceMatrix::compute(&g).unwrap();
        // Every vertex between 1 and 3 (inclusive) lies on the unique 1-3
        // shortest path.
        assert_eq!(valid_hubs(&m, 1, 3), vec![1, 2, 3]);
        // A vertex is its own only hub at distance 0... plus everything at
        // distance 0 from it, i.e. itself.
        assert_eq!(valid_hubs(&m, 2, 2), vec![2]);
    }

    #[test]
    fn valid_hubs_on_cycle() {
        let g = generators::cycle(6);
        let m = DistanceMatrix::compute(&g).unwrap();
        // Antipodal pair 0-3: both halves are shortest, all 6 vertices valid.
        assert_eq!(valid_hubs(&m, 0, 3).len(), 6);
        // Adjacent pair: only the two endpoints.
        assert_eq!(valid_hubs(&m, 0, 1), vec![0, 1]);
    }

    #[test]
    fn overflow_detected() {
        let g = graph_from_weighted_edges(2, &[(0, 1, u64::from(u32::MAX))]).unwrap();
        assert!(matches!(
            DistanceMatrix::compute(&g),
            Err(GraphError::DistanceOverflow { .. })
        ));
    }

    #[test]
    fn row_access() {
        let g = generators::path(4);
        let m = DistanceMatrix::compute(&g).unwrap();
        assert_eq!(m.row(0), &[0, 1, 2, 3]);
    }
}
