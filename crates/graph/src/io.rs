//! Plain-text edge-list serialization (a DIMACS-like format).
//!
//! Format: a header line `p <num_nodes> <num_edges>` followed by one
//! `e <u> <v> <w>` line per undirected edge. Lines starting with `c` are
//! comments. This keeps experiment artifacts diffable and lets users feed
//! their own graphs to the binaries.

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Writes `g` in edge-list format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(g: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "p {} {}", g.num_nodes(), g.num_edges())?;
    for (u, v, w) in g.edges() {
        writeln!(out, "e {u} {v} {w}")?;
    }
    Ok(())
}

/// Reads a graph in edge-list format.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] on malformed input and
/// propagates node-range/self-loop errors from the builder. I/O errors are
/// folded into `InvalidParameters` with the underlying message.
pub fn read_edge_list<R: BufRead>(input: R) -> Result<Graph, GraphError> {
    let bad = |msg: &str, line_no: usize| GraphError::InvalidParameters {
        reason: format!("{msg} (line {line_no})"),
    };
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges = 0usize;
    let mut seen_edges = 0usize;
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(|e| GraphError::InvalidParameters {
            reason: format!("read failure: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(bad("duplicate header", i + 1));
                }
                let n: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("header needs a node count", i + 1))?;
                declared_edges = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("header needs an edge count", i + 1))?;
                builder = Some(GraphBuilder::with_capacity(n, declared_edges));
            }
            Some("e") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| bad("edge before header", i + 1))?;
                let u: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("edge needs endpoints", i + 1))?;
                let v: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("edge needs endpoints", i + 1))?;
                let w: u64 = match parts.next() {
                    None => 1,
                    Some(t) => t.parse().map_err(|_| bad("bad weight", i + 1))?,
                };
                b.add_edge(u, v, w)?;
                seen_edges += 1;
            }
            Some(tok) => return Err(bad(&format!("unknown record '{tok}'"), i + 1)),
            None => unreachable!("empty lines are skipped"),
        }
    }
    let builder = builder.ok_or_else(|| GraphError::InvalidParameters {
        reason: "missing header line".into(),
    })?;
    if seen_edges != declared_edges {
        return Err(GraphError::InvalidParameters {
            reason: format!("header declared {declared_edges} edges, found {seen_edges}"),
        });
    }
    Ok(builder.build())
}

/// Serializes to an in-memory string (convenience for tests and tools).
pub fn to_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("io::Write for Vec<u8> is infallible"); // lint:allow(no-panic): the io::Write impl for Vec<u8> never errors
    String::from_utf8_lossy(&buf).into_owned()
}

/// Parses from a string (convenience for tests and tools).
///
/// # Errors
///
/// Same as [`read_edge_list`].
pub fn from_str(s: &str) -> Result<Graph, GraphError> {
    read_edge_list(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_weighted() {
        let g = generators::weighted_grid(4, 5, 9);
        let text = to_string(&g);
        let h = from_str(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn roundtrip_unit() {
        let g = generators::grid(3, 3);
        let h = from_str(&to_string(&g)).unwrap();
        assert_eq!(g, h);
        assert!(h.is_unit_weighted());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "c hello\n\np 3 2\nc mid comment\ne 0 1 5\ne 1 2 7\n";
        let g = from_str(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.edge_weight(1, 2), Some(7));
    }

    #[test]
    fn default_weight_is_one() {
        let g = from_str("p 2 1\ne 0 1\n").unwrap();
        assert!(g.is_unit_weighted());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_str("").is_err(), "missing header");
        assert!(from_str("e 0 1 1\n").is_err(), "edge before header");
        assert!(
            from_str("p 2 1\np 2 1\ne 0 1 1\n").is_err(),
            "duplicate header"
        );
        assert!(from_str("p 2 2\ne 0 1 1\n").is_err(), "edge count mismatch");
        assert!(from_str("p x 1\ne 0 1 1\n").is_err(), "bad node count");
        assert!(from_str("p 2 1\ne 0 5 1\n").is_err(), "node out of range");
        assert!(from_str("p 2 1\nq 0 1\n").is_err(), "unknown record");
        assert!(from_str("p 2 1\ne 0 1 zz\n").is_err(), "bad weight");
    }

    #[test]
    fn error_mentions_line_number() {
        let err = from_str("p 2 1\nq 0 1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
