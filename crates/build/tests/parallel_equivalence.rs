//! Parallel-vs-sequential equivalence suite.
//!
//! For every graph family the ISSUE names — sparse gnm, unit-weight grid,
//! power-law, and a small paper `H_{b,ℓ}` gadget — the parallel pipeline
//! must produce labels **byte-identical** to sequential PLL at every
//! thread count, and those labels must answer every queried pair with the
//! exact BFS/Dijkstra distance.

use hl_build::{build_with_order, BuildConfig};
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::FlatLabeling;
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, Graph, NodeId};
use hl_lowerbound::{GadgetParams, HGraph};

fn sequential_flat(g: &Graph, order: &[NodeId]) -> FlatLabeling {
    FlatLabeling::from_labeling(PrunedLandmarkLabeling::with_order(g, order.to_vec()).labeling())
}

/// Asserts byte-identity across threads ∈ {1, 2, 4} and spot-checks the
/// labels against ground-truth single-source distances from a few seeded
/// sources.
fn assert_equivalent_and_exact(g: &Graph, name: &str) {
    let order = hl_core::order::by_degree(g);
    let reference = sequential_flat(g, &order);
    for threads in [1usize, 2, 4] {
        let out = build_with_order(g, order.clone(), BuildConfig::with_threads(threads))
            .unwrap_or_else(|e| panic!("{name}: build failed at {threads} threads: {e}"));
        assert_eq!(
            out.labeling, reference,
            "{name}: labels diverge from sequential PLL at {threads} threads"
        );
        assert_eq!(out.stats.threads, threads);
    }
    // Ground truth: full single-source distances from seeded sources.
    let n = g.num_nodes();
    let mut rng = Xorshift64::seed_from_u64(0xE0_11AB);
    for _ in 0..4 {
        let s = rng.gen_index(n) as NodeId;
        let truth = hl_graph::dijkstra::shortest_path_distances(g, s);
        for _ in 0..200 {
            let v = rng.gen_index(n) as NodeId;
            assert_eq!(
                reference.query(s, v),
                truth[v as usize],
                "{name}: wrong distance for ({s}, {v})"
            );
        }
    }
}

#[test]
fn gnm_equivalence() {
    let g = generators::connected_gnm(400, 500, 11);
    assert_equivalent_and_exact(&g, "connected_gnm(400, 500)");
}

#[test]
fn grid_equivalence() {
    let g = generators::grid(17, 19);
    assert_equivalent_and_exact(&g, "grid(17, 19)");
}

#[test]
fn power_law_equivalence() {
    let g = generators::power_law_configuration(600, 25, 13);
    assert_equivalent_and_exact(&g, "power_law_configuration(600)");
}

#[test]
fn rmat_equivalence() {
    let g = generators::rmat(9, 2048, 5);
    assert_equivalent_and_exact(&g, "rmat(9, 2048)");
}

#[test]
fn weighted_road_style_equivalence() {
    let g = generators::grid_with_shortcuts(12, 14, 30, 7);
    assert_equivalent_and_exact(&g, "grid_with_shortcuts(12, 14, 30)");
}

#[test]
fn paper_gadget_equivalence() {
    // A small H_{b,ℓ} hard instance from Theorem 2.1 — adversarial
    // structure for hub labelings, so a good equivalence probe.
    let params = GadgetParams::new(3, 2).unwrap();
    let h = HGraph::build(params);
    assert_equivalent_and_exact(h.graph(), "H_{3,2}");
}

#[test]
fn every_order_strategy_is_thread_invariant() {
    use hl_core::order::{BetweennessOrder, BfsLevelOrder, DegreeOrder, RandomOrder};
    let g = generators::connected_gnm(200, 260, 3);
    let strategies: Vec<Box<dyn hl_core::VertexOrder>> = vec![
        Box::new(DegreeOrder),
        Box::new(BfsLevelOrder),
        Box::new(BetweennessOrder {
            samples: 16,
            seed: 2,
        }),
        Box::new(RandomOrder { seed: 4 }),
    ];
    for strategy in &strategies {
        let one = hl_build::build_with_strategy(&g, strategy.as_ref(), BuildConfig::sequential())
            .unwrap();
        let four =
            hl_build::build_with_strategy(&g, strategy.as_ref(), BuildConfig::with_threads(4))
                .unwrap();
        assert_eq!(
            one.labeling,
            four.labeling,
            "strategy {} is not thread-invariant",
            strategy.name()
        );
    }
}
