//! Build-time telemetry: per-batch timings, the label-size growth curve,
//! and pruning effectiveness, with a hand-rolled JSON snapshot (the
//! workspace is dependency-free, so no serde).

/// Telemetry for one root batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Roots processed in this batch.
    pub roots: usize,
    /// Label entries proposed by the batch's waves (before the commit
    /// filter).
    pub candidate_entries: usize,
    /// Entries that survived the commit filter.
    pub committed_entries: usize,
    /// Total committed entries after this batch (growth curve sample).
    pub entries_after: usize,
    /// Wall-clock seconds for the batch (waves + commit).
    pub seconds: f64,
}

/// Telemetry for a whole parallel build.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildStats {
    /// Worker threads used.
    pub threads: usize,
    /// Largest batch size the ramp-up reached.
    pub batch_cap: usize,
    /// Name of the ordering strategy (or `"explicit"` for a caller-supplied
    /// permutation).
    pub order: String,
    /// Per-batch telemetry, in processing order.
    pub batches: Vec<BatchStats>,
    /// Vertices popped across all waves.
    pub wave_pops: u64,
    /// Pops cut by the committed-prefix pruning test.
    pub wave_pruned: u64,
    /// End-to-end wall-clock seconds.
    pub total_seconds: f64,
}

impl BuildStats {
    /// Final label entry count, `Σ_v |S_v|`.
    pub fn label_entries(&self) -> usize {
        self.batches.last().map_or(0, |b| b.entries_after)
    }

    /// Fraction of wave pops cut by the pruning test. High is good — it is
    /// what keeps PLL subquadratic in practice.
    pub fn pruning_hit_rate(&self) -> f64 {
        if self.wave_pops == 0 {
            return 0.0;
        }
        self.wave_pruned as f64 / self.wave_pops as f64
    }

    /// Fraction of wave-proposed entries discarded by the commit filter —
    /// the price of batching (work sequential PLL would never do).
    pub fn commit_discard_rate(&self) -> f64 {
        let cand: usize = self.batches.iter().map(|b| b.candidate_entries).sum();
        if cand == 0 {
            return 0.0;
        }
        let kept: usize = self.batches.iter().map(|b| b.committed_entries).sum();
        (cand - kept) as f64 / cand as f64
    }

    /// The label-size growth curve as `(roots_processed, total_entries)`
    /// samples, one per batch.
    pub fn growth_curve(&self) -> Vec<(usize, usize)> {
        let mut roots = 0;
        self.batches
            .iter()
            .map(|b| {
                roots += b.roots;
                (roots, b.entries_after)
            })
            .collect()
    }

    /// Compact single-line JSON snapshot. The growth curve is downsampled
    /// to at most 64 evenly spaced batches so million-vertex builds stay
    /// readable.
    pub fn to_json(&self) -> String {
        let curve = self.growth_curve();
        let step = curve.len().div_ceil(64).max(1);
        let mut curve_json = String::from("[");
        for (k, (roots, entries)) in curve
            .iter()
            .enumerate()
            .filter(|(k, _)| k % step == 0 || *k == curve.len() - 1)
            .map(|(_, p)| p)
            .enumerate()
        {
            if k > 0 {
                curve_json.push(',');
            }
            curve_json.push_str(&format!("[{roots},{entries}]"));
        }
        curve_json.push(']');
        format!(
            concat!(
                "{{\"threads\":{},\"order\":\"{}\",\"batch_cap\":{},",
                "\"batches\":{},\"build_seconds\":{:.6},\"label_entries\":{},",
                "\"wave_pops\":{},\"wave_pruned\":{},\"pruning_hit_rate\":{:.4},",
                "\"commit_discard_rate\":{:.4},\"growth_curve\":{}}}"
            ),
            self.threads,
            self.order,
            self.batch_cap,
            self.batches.len(),
            self.total_seconds,
            self.label_entries(),
            self.wave_pops,
            self.wave_pruned,
            self.pruning_hit_rate(),
            self.commit_discard_rate(),
            curve_json,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BuildStats {
        BuildStats {
            threads: 2,
            batch_cap: 4,
            order: "degree".into(),
            batches: vec![
                BatchStats {
                    roots: 2,
                    candidate_entries: 10,
                    committed_entries: 8,
                    entries_after: 8,
                    seconds: 0.5,
                },
                BatchStats {
                    roots: 4,
                    candidate_entries: 6,
                    committed_entries: 4,
                    entries_after: 12,
                    seconds: 0.25,
                },
            ],
            wave_pops: 100,
            wave_pruned: 75,
            total_seconds: 0.8,
        }
    }

    #[test]
    fn derived_rates() {
        let s = sample();
        assert_eq!(s.label_entries(), 12);
        assert!((s.pruning_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.commit_discard_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.growth_curve(), vec![(2, 8), (6, 12)]);
    }

    #[test]
    fn json_is_wellformed_and_complete() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"threads\":2"));
        assert!(j.contains("\"order\":\"degree\""));
        assert!(j.contains("\"label_entries\":12"));
        assert!(j.contains("\"growth_curve\":[[2,8],[6,12]]"));
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = BuildStats {
            threads: 1,
            batch_cap: 1,
            order: "explicit".into(),
            batches: Vec::new(),
            wave_pops: 0,
            wave_pruned: 0,
            total_seconds: 0.0,
        };
        assert_eq!(s.label_entries(), 0);
        assert_eq!(s.pruning_hit_rate(), 0.0);
        assert_eq!(s.commit_discard_rate(), 0.0);
        assert!(s.to_json().contains("\"growth_curve\":[]"));
    }
}
