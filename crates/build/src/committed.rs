//! The committed label prefix: what every wave in a batch prunes against.
//!
//! Between batches the structure is frozen; during a batch, worker threads
//! share it by immutable reference, so there is no synchronisation on the
//! hot path. After the batch barrier the main thread appends the filtered
//! batch entries with `&mut` access. Per-vertex hub lists are kept sorted
//! by hub id at all times, which makes the structure a [`LabelingView`] —
//! the same merge-join query interface the serving-side [`FlatLabeling`]
//! (`hl_core::FlatLabeling`) exposes.

use hl_core::{FlatLabeling, LabelingView};
use hl_graph::{Distance, NodeId};

/// Growable labeling with per-vertex sorted hub/distance columns.
#[derive(Debug, Clone)]
pub struct CommittedLabels {
    hubs: Vec<Vec<NodeId>>,
    dists: Vec<Vec<Distance>>,
    entries: usize,
}

impl CommittedLabels {
    /// An empty prefix over `n` vertices.
    pub fn new(n: usize) -> Self {
        CommittedLabels {
            hubs: vec![Vec::new(); n],
            dists: vec![Vec::new(); n],
            entries: 0,
        }
    }

    /// Total committed entries, `Σ_v |S_v|`.
    pub fn num_entries(&self) -> usize {
        self.entries
    }

    /// Inserts `(hub, dist)` into vertex `v`'s label, keeping the hub
    /// column sorted. `hub` must not already be present (PLL never
    /// assigns the same hub twice).
    pub fn insert(&mut self, v: NodeId, hub: NodeId, dist: Distance) {
        let hs = &mut self.hubs[v as usize];
        let pos = hs.partition_point(|&h| h < hub);
        hs.insert(pos, hub);
        self.dists[v as usize].insert(pos, dist);
        self.entries += 1;
    }

    /// Freezes the finished labeling into the serving-side CSR arena.
    /// Per-vertex columns are already hub-sorted, so this is a straight
    /// copy — and the output is byte-identical to
    /// `FlatLabeling::from_labeling` of a sequential PLL run with the same
    /// vertex order.
    pub fn into_flat(self) -> FlatLabeling {
        let mut flat = FlatLabeling::with_capacity(self.hubs.len(), self.entries);
        for (hs, ds) in self.hubs.iter().zip(self.dists.iter()) {
            flat.push_label(hs, ds);
        }
        flat
    }
}

impl LabelingView for CommittedLabels {
    fn num_nodes(&self) -> usize {
        self.hubs.len()
    }

    fn hubs_of(&self, v: NodeId) -> &[NodeId] {
        &self.hubs[v as usize]
    }

    fn dists_of(&self, v: NodeId) -> &[Distance] {
        &self.dists[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::INFINITY;

    #[test]
    fn insert_keeps_hub_columns_sorted() {
        let mut c = CommittedLabels::new(2);
        c.insert(0, 5, 2);
        c.insert(0, 1, 7);
        c.insert(0, 3, 4);
        assert_eq!(c.hubs_of(0), &[1, 3, 5]);
        assert_eq!(c.dists_of(0), &[7, 4, 2]);
        assert_eq!(c.num_entries(), 3);
    }

    #[test]
    fn view_query_answers_through_shared_hub() {
        let mut c = CommittedLabels::new(2);
        c.insert(0, 0, 0);
        c.insert(1, 0, 3);
        assert_eq!(c.query(0, 1), 3);
        assert_eq!(c.query(1, 1), 6); // via hub 0 only
        let mut empty = CommittedLabels::new(2);
        empty.insert(0, 0, 0);
        assert_eq!(empty.query(0, 1), INFINITY);
    }

    #[test]
    fn into_flat_round_trips() {
        let mut c = CommittedLabels::new(3);
        c.insert(0, 0, 0);
        c.insert(1, 0, 1);
        c.insert(1, 1, 0);
        c.insert(2, 0, 2);
        let flat = c.into_flat();
        assert_eq!(flat.num_nodes(), 3);
        assert_eq!(flat.num_entries(), 4);
        assert_eq!(flat.hubs_of(1), &[0, 1]);
        assert_eq!(flat.query(0, 2), 2);
    }
}
