//! Typed errors for the parallel construction pipeline.

use hl_core::OrderError;

/// Everything that can go wrong while building a labeling in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The requested ordering strategy could not produce an order.
    Order(OrderError),
    /// `threads == 0` — the pipeline needs at least one worker.
    ZeroThreads,
    /// The supplied order is not a permutation of the vertex set.
    NotAPermutation,
    /// A worker thread panicked; the build result would be incomplete.
    WorkerPanicked,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Order(e) => write!(f, "ordering failed: {e}"),
            BuildError::ZeroThreads => write!(f, "parallel build needs at least one thread"),
            BuildError::NotAPermutation => {
                write!(f, "vertex order must be a permutation of 0..n")
            }
            BuildError::WorkerPanicked => write!(f, "a build worker panicked"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Order(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OrderError> for BuildError {
    fn from(e: OrderError) -> Self {
        BuildError::Order(e)
    }
}
