//! `hl-build` — parallel, ordering-aware Pruned Landmark Labeling
//! construction for million-vertex graphs.
//!
//! The single-threaded PLL in `hl_core::pll` tops out at stress-test
//! sizes; every scale experiment around the paper (*Hardness of exact
//! distance queries in sparse graphs through hub labeling*, Kosowski–
//! Uznański–Viennot, PODC 2019) needs labelings over graphs far bigger
//! than that. This crate provides a batch/commit pipeline on std threads
//! (the workspace is dependency-free) whose output is **bit-identical to
//! sequential PLL** for the same vertex order, at any thread count:
//!
//! * [`pipeline`] — the batch/commit pipeline ([`build_with_order`],
//!   [`build_with_strategy`], [`BuildConfig`], [`BuildOutput`]); the
//!   module docs carry the determinism argument;
//! * [`committed`] — [`CommittedLabels`], the growable committed-prefix
//!   labeling all waves prune against (a
//!   [`LabelingView`](hl_core::LabelingView), like the serving-side
//!   arena);
//! * [`wave`] — one pruned BFS/Dijkstra wave with reusable per-worker
//!   scratch;
//! * [`stats`] — [`BuildStats`] telemetry: per-batch timings, the
//!   label-size growth curve, pruning hit rate, and a JSON snapshot;
//! * [`error`] — [`BuildError`].
//!
//! Ordering strategies come from `hl_core::order` behind the
//! [`VertexOrder`](hl_core::VertexOrder) trait (degree, BFS-level,
//! sampled betweenness, closeness, random, identity).
//!
//! # Example
//!
//! ```
//! use hl_build::{build_with_strategy, BuildConfig};
//! use hl_core::order::DegreeOrder;
//! use hl_graph::generators;
//!
//! let g = generators::connected_gnm(200, 300, 7);
//! let out = build_with_strategy(&g, &DegreeOrder, BuildConfig::with_threads(2)).unwrap();
//! assert_eq!(out.labeling.query(0, 1), hl_core::LabelingView::query(&out.labeling, 1, 0));
//! println!("{}", out.stats.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod committed;
pub mod error;
pub mod pipeline;
pub mod stats;
pub mod wave;

pub use committed::CommittedLabels;
pub use error::BuildError;
pub use pipeline::{build_with_order, build_with_strategy, BuildConfig, BuildOutput};
pub use stats::{BatchStats, BuildStats};
