//! The batch/commit pipeline: parallel PLL that is bit-identical to the
//! sequential algorithm.
//!
//! # Protocol
//!
//! Roots are processed in batches. Within a batch, every root runs a
//! pruned wave ([`crate::wave`]) on a worker pool; waves prune **only**
//! against the immutable committed prefix (labels of all earlier
//! batches), so they never observe each other and their results do not
//! depend on scheduling. Because a wave cannot see the labels its own
//! batch is producing, its candidate set is a *superset* of what
//! sequential PLL would assign from that root.
//!
//! The commit step then replays the batch sequentially in canonical root
//! order and removes exactly the surplus: a candidate `(v, d)` from the
//! batch's `j`-th root survives iff no earlier in-batch root `r_i`
//! (`i < j`) already covers it, i.e. iff
//! `min_i d(r_j, r_i) + d(r_i, v) > d`, with both summands read from the
//! *filtered* in-batch entries committed so far.
//!
//! # Why the output is bit-identical to sequential PLL
//!
//! By Akiba–Iwata–Yoshida's pruning lemma, sequential PLL assigns root
//! `r` as a hub of exactly the vertices `v` (reachable from `r`) whose
//! prefix query is strictly worse than the true distance:
//! `query_{L_before_r}(r, v) > d(r, v)`. Any hub `h` contributing to that
//! query lives either in the committed prefix (earlier batch) or in the
//! current batch's delta — there is no third place. The wave applies the
//! committed half of the test (and, pruning strictly less than sequential
//! PLL would, reaches every sequentially-labeled vertex at its exact
//! distance); the commit filter applies the in-batch half against the
//! already-filtered delta, which by induction over roots equals the
//! sequential labels. Every candidate therefore survives iff sequential
//! PLL would have kept it, with the same distance — so the final labels,
//! and the [`FlatLabeling`] arena serialized from them, are byte-equal
//! for every thread count and every batch schedule.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use hl_core::order::is_permutation;
use hl_core::{FlatLabeling, VertexOrder};
use hl_graph::{Distance, Graph, NodeId, INFINITY};

use crate::committed::CommittedLabels;
use crate::error::BuildError;
use crate::stats::{BatchStats, BuildStats};
use crate::wave::{run_wave, WaveScratch};

/// Knobs for the parallel pipeline. The defaults build sequentially;
/// raise [`BuildConfig::threads`] to parallelize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildConfig {
    /// Worker threads (must be >= 1). `1` degenerates to sequential PLL
    /// with zero wasted work.
    pub threads: usize,
    /// Largest batch size the ramp-up may reach; `0` picks automatically
    /// (1 for a single thread, 4096 otherwise). Batch size trades wave
    /// parallelism against candidates the commit filter throws away — it
    /// never changes the output.
    pub batch_cap: usize,
}

impl BuildConfig {
    /// Sequential defaults.
    pub fn sequential() -> Self {
        BuildConfig {
            threads: 1,
            batch_cap: 0,
        }
    }

    /// Parallel defaults for `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        BuildConfig {
            threads,
            batch_cap: 0,
        }
    }

    fn effective_cap(&self) -> usize {
        if self.batch_cap > 0 {
            self.batch_cap
        } else if self.threads <= 1 {
            1
        } else {
            4096
        }
    }
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig::sequential()
    }
}

/// A finished parallel build: the serving-ready labeling, the order it
/// used, and the build telemetry.
#[derive(Debug, Clone)]
pub struct BuildOutput {
    /// The labeling, already in the query-time CSR arena.
    pub labeling: FlatLabeling,
    /// The vertex order the labeling was built with.
    pub order: Vec<NodeId>,
    /// Per-batch telemetry.
    pub stats: BuildStats,
}

/// Builds a labeling with a pluggable ordering strategy.
///
/// # Errors
///
/// Propagates the strategy's ordering error and any [`BuildError`] from
/// the pipeline itself.
pub fn build_with_strategy(
    g: &Graph,
    strategy: &dyn VertexOrder,
    config: BuildConfig,
) -> Result<BuildOutput, BuildError> {
    let order = strategy.compute(g)?;
    let mut out = build_with_order(g, order, config)?;
    out.stats.order = strategy.name().to_string();
    Ok(out)
}

/// Builds a labeling processing vertices in the given explicit order.
///
/// # Errors
///
/// Returns [`BuildError::ZeroThreads`] when `config.threads == 0`,
/// [`BuildError::NotAPermutation`] when `order` is not a permutation of
/// the vertex set, and [`BuildError::WorkerPanicked`] if a worker dies.
pub fn build_with_order(
    g: &Graph,
    order: Vec<NodeId>,
    config: BuildConfig,
) -> Result<BuildOutput, BuildError> {
    if config.threads == 0 {
        return Err(BuildError::ZeroThreads);
    }
    if !is_permutation(&order, g.num_nodes()) {
        return Err(BuildError::NotAPermutation);
    }
    let n = g.num_nodes();
    let cap = config.effective_cap();
    let started = Instant::now();

    let mut committed = CommittedLabels::new(n);
    let mut scratches: Vec<WaveScratch> =
        (0..config.threads).map(|_| WaveScratch::new(n)).collect();
    // Commit-phase state, allocated once and reset via touch lists.
    let mut delta: Vec<Vec<(u32, Distance)>> = vec![Vec::new(); n];
    let mut delta_touched: Vec<NodeId> = Vec::new();
    let mut root_to_batch: Vec<Distance> = vec![INFINITY; cap];

    let mut batches = Vec::new();
    let mut batch_size = config.threads.max(2).min(cap);
    let mut next = 0usize;
    while next < order.len() {
        let batch = &order[next..order.len().min(next + batch_size)];
        next += batch.len();
        let batch_started = Instant::now();

        // Wave phase: one pruned wave per root, against the frozen prefix.
        let waves = run_batch_waves(g, &committed, batch, &mut scratches)?;

        // Commit phase: replay in canonical order, filtering candidates
        // against the in-batch entries committed so far.
        let candidate_entries: usize = waves.iter().map(Vec::len).sum();
        let mut committed_entries = 0usize;
        for (j, cand) in waves.iter().enumerate() {
            // root_to_batch[i] = d(r_j, r_i) for earlier in-batch hubs r_i
            // of r_j — read from r_j's own filtered delta.
            for &(i, d) in &delta[batch[j] as usize] {
                root_to_batch[i as usize] = d;
            }
            for &(v, d) in cand {
                let covered = delta[v as usize]
                    .iter()
                    .any(|&(i, dv)| root_to_batch[i as usize].saturating_add(dv) <= d);
                if !covered {
                    if delta[v as usize].is_empty() {
                        delta_touched.push(v);
                    }
                    delta[v as usize].push((j as u32, d));
                    committed_entries += 1;
                }
            }
            for &(i, _) in &delta[batch[j] as usize] {
                root_to_batch[i as usize] = INFINITY;
            }
        }
        for &v in &delta_touched {
            for &(i, d) in &delta[v as usize] {
                committed.insert(v, batch[i as usize], d);
            }
            delta[v as usize].clear();
        }
        delta_touched.clear();

        batches.push(BatchStats {
            roots: batch.len(),
            candidate_entries,
            committed_entries,
            entries_after: committed.num_entries(),
            seconds: batch_started.elapsed().as_secs_f64(),
        });
        batch_size = (batch_size * 2).min(cap);
    }

    let (wave_pops, wave_pruned) = scratches
        .iter()
        .map(WaveScratch::counters)
        .fold((0, 0), |(p, q), (a, b)| (p + a, q + b));
    let stats = BuildStats {
        threads: config.threads,
        batch_cap: cap,
        order: "explicit".to_string(),
        batches,
        wave_pops,
        wave_pruned,
        total_seconds: started.elapsed().as_secs_f64(),
    };
    Ok(BuildOutput {
        labeling: committed.into_flat(),
        order,
        stats,
    })
}

/// Runs the batch's waves on the worker pool and returns each root's
/// candidate list, indexed like `batch`.
fn run_batch_waves(
    g: &Graph,
    committed: &CommittedLabels,
    batch: &[NodeId],
    scratches: &mut [WaveScratch],
) -> Result<Vec<Vec<(NodeId, Distance)>>, BuildError> {
    // Single-threaded (or single-root) batches skip the pool entirely.
    if scratches.len() == 1 || batch.len() == 1 {
        let scratch = scratches.first_mut().ok_or(BuildError::ZeroThreads)?;
        return Ok(batch
            .iter()
            .map(|&root| run_wave(g, committed, root, scratch))
            .collect());
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); batch.len()];
    let worker_outputs = std::thread::scope(|scope| {
        let handles: Vec<_> = scratches
            .iter_mut()
            .map(|scratch| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<(NodeId, Distance)>)> = Vec::new();
                    loop {
                        let j = cursor.fetch_add(1, Ordering::Relaxed);
                        if j >= batch.len() {
                            break;
                        }
                        local.push((j, run_wave(g, committed, batch[j], scratch)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| BuildError::WorkerPanicked))
            .collect::<Result<Vec<_>, _>>()
    })?;
    for (j, cand) in worker_outputs.into_iter().flatten() {
        slots[j] = cand;
    }
    Ok(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_core::cover::verify_exact;
    use hl_core::order::DegreeOrder;
    use hl_core::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    fn sequential_flat(g: &Graph, order: &[NodeId]) -> FlatLabeling {
        FlatLabeling::from_labeling(
            PrunedLandmarkLabeling::with_order(g, order.to_vec()).labeling(),
        )
    }

    #[test]
    fn zero_threads_rejected() {
        let g = generators::path(4);
        let cfg = BuildConfig {
            threads: 0,
            batch_cap: 0,
        };
        assert_eq!(
            build_with_order(&g, vec![0, 1, 2, 3], cfg).unwrap_err(),
            BuildError::ZeroThreads
        );
    }

    #[test]
    fn bad_order_rejected() {
        let g = generators::path(3);
        assert_eq!(
            build_with_order(&g, vec![0, 0, 1], BuildConfig::sequential()).unwrap_err(),
            BuildError::NotAPermutation
        );
    }

    #[test]
    fn sequential_config_matches_classic_pll() {
        let g = generators::connected_gnm(60, 60, 3);
        let order = hl_core::order::by_degree(&g);
        let out = build_with_order(&g, order.clone(), BuildConfig::sequential()).unwrap();
        assert_eq!(out.labeling, sequential_flat(&g, &order));
        assert_eq!(out.stats.label_entries(), out.labeling.num_entries());
    }

    #[test]
    fn batching_never_changes_output() {
        let g = generators::connected_gnm(80, 90, 5);
        let order = hl_core::order::by_degree(&g);
        let reference = sequential_flat(&g, &order);
        for cap in [1, 2, 3, 7, 16, 80] {
            let cfg = BuildConfig {
                threads: 1,
                batch_cap: cap,
            };
            let out = build_with_order(&g, order.clone(), cfg).unwrap();
            assert_eq!(out.labeling, reference, "batch_cap = {cap}");
        }
    }

    #[test]
    fn parallel_output_is_exact_and_identical() {
        let g = generators::grid(9, 11);
        let order = hl_core::order::by_degree(&g);
        let reference = sequential_flat(&g, &order);
        for threads in [2, 4] {
            let out =
                build_with_order(&g, order.clone(), BuildConfig::with_threads(threads)).unwrap();
            assert_eq!(out.labeling, reference, "threads = {threads}");
            assert!(verify_exact(&g, &out.labeling.to_labeling())
                .unwrap()
                .is_exact());
        }
    }

    #[test]
    fn weighted_graphs_go_through_dijkstra_waves() {
        let g = generators::grid_with_shortcuts(8, 8, 12, 2);
        let order = hl_core::order::by_degree(&g);
        let reference = sequential_flat(&g, &order);
        let out = build_with_order(&g, order, BuildConfig::with_threads(3)).unwrap();
        assert_eq!(out.labeling, reference);
    }

    #[test]
    fn strategy_entry_point_records_order_name() {
        let g = generators::star(20);
        let out = build_with_strategy(&g, &DegreeOrder, BuildConfig::with_threads(2)).unwrap();
        assert_eq!(out.stats.order, "degree");
        assert_eq!(out.order[0], 0, "star center is processed first");
        assert!(out.labeling.max_hubs() <= 2);
    }

    #[test]
    fn stats_account_for_every_committed_entry() {
        let g = generators::connected_gnm(50, 40, 9);
        let order = hl_core::order::by_degree(&g);
        let out = build_with_order(&g, order, BuildConfig::with_threads(2)).unwrap();
        let committed: usize = out.stats.batches.iter().map(|b| b.committed_entries).sum();
        assert_eq!(committed, out.labeling.num_entries());
        let roots: usize = out.stats.batches.iter().map(|b| b.roots).sum();
        assert_eq!(roots, 50);
        assert!(out.stats.wave_pops >= out.labeling.num_entries() as u64);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = hl_graph::builder::graph_from_edges(1, &[]).unwrap();
        let out = build_with_order(&g, vec![0], BuildConfig::with_threads(4)).unwrap();
        assert_eq!(out.labeling.num_entries(), 1); // the self-entry
    }
}
