//! A single pruned BFS/Dijkstra wave from one root, pruning against the
//! immutable committed prefix.
//!
//! The pruning test "is `d(root, u)` already covered by committed hubs?"
//! is exactly the merge-join query of
//! [`hl_core::LabelingView`] between `root`'s and `u`'s
//! committed labels. We evaluate it through a scratch table indexed by hub
//! id — load `root`'s committed label once, then each visited vertex `u`
//! costs one linear scan of `u`'s label — which is the standard
//! cache-friendly formulation of the same min-plus join (the root side of
//! the merge is pre-expanded into an array).
//!
//! A wave only *proposes* entries: because it cannot see the labels the
//! rest of its batch is producing concurrently, its candidate set is a
//! superset of what sequential PLL would assign. The commit step
//! ([`crate::pipeline`]) filters it down.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hl_core::LabelingView;
use hl_graph::{Distance, Graph, NodeId, INFINITY};

use crate::committed::CommittedLabels;

/// Reusable per-worker buffers: all `O(n)` allocations a wave needs, paid
/// once per worker instead of once per root.
pub struct WaveScratch {
    /// Tentative distance from the current root.
    dist: Vec<Distance>,
    /// Vertices whose `dist` entry must be reset after the wave.
    visited: Vec<NodeId>,
    /// `root_dist[h]` = committed `d(root, h)`, or `INFINITY`.
    root_dist: Vec<Distance>,
    /// Hubs loaded into `root_dist` (for cheap reset).
    touched: Vec<NodeId>,
    /// Vertices popped across all waves run with this scratch.
    pops: u64,
    /// Pops cut by the pruning test.
    pruned: u64,
}

impl WaveScratch {
    /// Buffers for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        WaveScratch {
            dist: vec![INFINITY; n],
            visited: Vec::new(),
            root_dist: vec![INFINITY; n],
            touched: Vec::new(),
            pops: 0,
            pruned: 0,
        }
    }

    /// `(pops, pruned)` accumulated over every wave run with this scratch.
    pub fn counters(&self) -> (u64, u64) {
        (self.pops, self.pruned)
    }

    fn load_root(&mut self, committed: &CommittedLabels, root: NodeId) {
        for (&h, &d) in committed.hubs_of(root).iter().zip(committed.dists_of(root)) {
            self.root_dist[h as usize] = d;
            self.touched.push(h);
        }
    }

    /// Min-plus join of `root`'s (pre-loaded) and `u`'s committed labels.
    fn covered(&mut self, committed: &CommittedLabels, u: NodeId, du: Distance) -> bool {
        self.pops += 1;
        let hs = committed.hubs_of(u);
        let ds = committed.dists_of(u);
        for (&h, &d) in hs.iter().zip(ds) {
            let dr = self.root_dist[h as usize];
            if dr != INFINITY && dr.saturating_add(d) <= du {
                self.pruned += 1;
                return true;
            }
        }
        false
    }

    fn reset(&mut self) {
        for &v in &self.visited {
            self.dist[v as usize] = INFINITY;
        }
        self.visited.clear();
        for &h in &self.touched {
            self.root_dist[h as usize] = INFINITY;
        }
        self.touched.clear();
    }
}

/// Runs one pruned wave from `root` and returns the candidate entries
/// `(v, d(root, v))` in the order sequential PLL would have assigned them
/// (BFS/heap pop order). BFS on unit-weight graphs, Dijkstra otherwise.
pub fn run_wave(
    g: &Graph,
    committed: &CommittedLabels,
    root: NodeId,
    scratch: &mut WaveScratch,
) -> Vec<(NodeId, Distance)> {
    let candidates = if g.is_unit_weighted() {
        wave_unit(g, committed, root, scratch)
    } else {
        wave_weighted(g, committed, root, scratch)
    };
    scratch.reset();
    candidates
}

fn wave_unit(
    g: &Graph,
    committed: &CommittedLabels,
    root: NodeId,
    scratch: &mut WaveScratch,
) -> Vec<(NodeId, Distance)> {
    scratch.load_root(committed, root);
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    scratch.dist[root as usize] = 0;
    scratch.visited.push(root);
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = scratch.dist[u as usize];
        if scratch.covered(committed, u, du) {
            continue;
        }
        out.push((u, du));
        for &v in g.neighbor_ids(u) {
            if scratch.dist[v as usize] == INFINITY {
                scratch.dist[v as usize] = du + 1;
                scratch.visited.push(v);
                queue.push_back(v);
            }
        }
    }
    out
}

fn wave_weighted(
    g: &Graph,
    committed: &CommittedLabels,
    root: NodeId,
    scratch: &mut WaveScratch,
) -> Vec<(NodeId, Distance)> {
    scratch.load_root(committed, root);
    let mut out = Vec::new();
    let mut heap = BinaryHeap::new();
    scratch.dist[root as usize] = 0;
    scratch.visited.push(root);
    heap.push(Reverse((0u64, root)));
    while let Some(Reverse((du, u))) = heap.pop() {
        if du > scratch.dist[u as usize] {
            continue;
        }
        if scratch.covered(committed, u, du) {
            continue;
        }
        out.push((u, du));
        for (v, w) in g.neighbors(u) {
            let nd = du.saturating_add(w);
            if nd < scratch.dist[v as usize] {
                if scratch.dist[v as usize] == INFINITY {
                    scratch.visited.push(v);
                }
                scratch.dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::generators;

    #[test]
    fn first_wave_reaches_everything() {
        let g = generators::path(5);
        let committed = CommittedLabels::new(5);
        let mut scratch = WaveScratch::new(5);
        let cand = run_wave(&g, &committed, 0, &mut scratch);
        assert_eq!(cand, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn committed_prefix_prunes_later_waves() {
        // Path 0-1-2-3-4 with vertex 2 fully committed: a wave from 0
        // stops expanding past 2 (every farther vertex is covered).
        let g = generators::path(5);
        let mut committed = CommittedLabels::new(5);
        for v in 0..5u32 {
            committed.insert(v, 2, (i64::from(v) - 2).unsigned_abs());
        }
        let mut scratch = WaveScratch::new(5);
        let cand = run_wave(&g, &committed, 0, &mut scratch);
        assert_eq!(cand, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn scratch_resets_between_waves() {
        let g = generators::cycle(6);
        let committed = CommittedLabels::new(6);
        let mut scratch = WaveScratch::new(6);
        let a = run_wave(&g, &committed, 3, &mut scratch);
        let b = run_wave(&g, &committed, 3, &mut scratch);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_wave_uses_dijkstra() {
        let g =
            hl_graph::builder::graph_from_weighted_edges(3, &[(0, 1, 5), (1, 2, 5), (0, 2, 20)])
                .unwrap();
        let committed = CommittedLabels::new(3);
        let mut scratch = WaveScratch::new(3);
        let cand = run_wave(&g, &committed, 0, &mut scratch);
        assert_eq!(cand, vec![(0, 0), (1, 5), (2, 10)]);
    }
}
