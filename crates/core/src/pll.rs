//! Pruned Landmark Labeling (PLL), the canonical practical construction of
//! exact hub labelings (2-hop covers, Cohen–Halperin–Kaplan–Zwick), computed with the pruning
//! strategy of Akiba–Iwata–Yoshida.
//!
//! Vertices are processed in a given importance order; a pruned BFS/Dijkstra
//! from the `k`-th vertex adds it as a hub only to vertices whose distance
//! is not already covered by earlier hubs. The result is exact *by
//! construction* for any processing order; the order only affects size.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hl_graph::{Distance, Graph, NodeId, INFINITY};

use crate::label::{HubLabel, HubLabeling};
use crate::order;
use crate::order::{OrderError, VertexOrder};

/// A finished PLL labeling, remembering the order it was built with.
#[derive(Debug, Clone)]
pub struct PrunedLandmarkLabeling {
    labeling: HubLabeling,
    order: Vec<NodeId>,
}

impl PrunedLandmarkLabeling {
    /// Builds the labeling with the classic decreasing-degree order.
    pub fn by_degree(g: &Graph) -> Self {
        Self::with_order(g, order::by_degree(g))
    }

    /// Builds the labeling with a seeded random order (useful as a
    /// worst-case-ish contrast to importance orders).
    pub fn by_random_order(g: &Graph, seed: u64) -> Self {
        Self::with_order(g, order::random(g, seed))
    }

    /// Builds the labeling with sampled-betweenness order.
    ///
    /// # Errors
    ///
    /// Returns [`OrderError`] when the order heuristic cannot produce a
    /// meaningful order (`samples == 0`, disconnected graph) — the old
    /// behaviour silently fell back to a signal-free permutation.
    pub fn by_betweenness(g: &Graph, samples: usize, seed: u64) -> Result<Self, OrderError> {
        Ok(Self::with_order(
            g,
            order::by_sampled_betweenness(g, samples, seed)?,
        ))
    }

    /// Builds the labeling with a pluggable [`VertexOrder`] strategy.
    ///
    /// # Errors
    ///
    /// Propagates the strategy's [`OrderError`].
    pub fn with_strategy(g: &Graph, strategy: &dyn VertexOrder) -> Result<Self, OrderError> {
        Ok(Self::with_order(g, strategy.compute(g)?))
    }

    /// Builds the labeling processing vertices in the given order.
    ///
    /// Uses pruned BFS on unit-weight graphs and pruned Dijkstra otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the vertex set.
    pub fn with_order(g: &Graph, order: Vec<NodeId>) -> Self {
        assert!(
            order::is_permutation(&order, g.num_nodes()),
            "PLL order must be a permutation of the vertex set"
        );
        let labeling = if g.is_unit_weighted() {
            build_unit(g, &order)
        } else {
            build_weighted(g, &order)
        };
        PrunedLandmarkLabeling { labeling, order }
    }

    /// The vertex order the labeling was built with.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Borrow the underlying labeling.
    pub fn labeling(&self) -> &HubLabeling {
        &self.labeling
    }

    /// Extracts the underlying labeling.
    pub fn into_labeling(self) -> HubLabeling {
        self.labeling
    }
}

/// Shared pruning oracle: distance upper bound for `(root, u)` from the
/// labels built so far, using a scratch table indexed by hub id.
struct Pruner {
    /// dist_from_root[h] = d(root, h) if h is a hub of root's label so far.
    dist_from_root: Vec<Distance>,
    touched: Vec<NodeId>,
}

impl Pruner {
    fn new(n: usize) -> Self {
        Pruner {
            dist_from_root: vec![INFINITY; n],
            touched: Vec::new(),
        }
    }

    fn load_root(&mut self, root_label: &[(NodeId, Distance)]) {
        for &(h, d) in root_label {
            self.dist_from_root[h as usize] = d;
            self.touched.push(h);
        }
    }

    /// Upper bound on d(root, u) via already-assigned hubs.
    fn query(&self, u_label: &[(NodeId, Distance)]) -> Distance {
        let mut best = INFINITY;
        for &(h, d) in u_label {
            let dr = self.dist_from_root[h as usize];
            if dr != INFINITY {
                let cand = dr.saturating_add(d);
                if cand < best {
                    best = cand;
                }
            }
        }
        best
    }

    fn clear(&mut self) {
        for &h in &self.touched {
            self.dist_from_root[h as usize] = INFINITY;
        }
        self.touched.clear();
    }
}

fn build_unit(g: &Graph, order: &[NodeId]) -> HubLabeling {
    let n = g.num_nodes();
    let mut labels: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
    let mut pruner = Pruner::new(n);
    let mut dist = vec![INFINITY; n];
    let mut visited: Vec<NodeId> = Vec::new();
    for &root in order {
        let root_label = labels[root as usize].clone();
        pruner.load_root(&root_label);
        let mut queue = VecDeque::new();
        dist[root as usize] = 0;
        visited.push(root);
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            // Prune: if existing labels already certify d(root, u) <= du,
            // adding root as a hub of u is redundant, and (by the pruning
            // lemma) so is expanding beyond u.
            if pruner.query(&labels[u as usize]) <= du {
                continue;
            }
            labels[u as usize].push((root, du));
            for &v in g.neighbor_ids(u) {
                if dist[v as usize] == INFINITY {
                    dist[v as usize] = du + 1;
                    visited.push(v);
                    queue.push_back(v);
                }
            }
        }
        for &v in &visited {
            dist[v as usize] = INFINITY;
        }
        visited.clear();
        pruner.clear();
    }
    labels.into_iter().map(HubLabel::from_pairs).collect()
}

fn build_weighted(g: &Graph, order: &[NodeId]) -> HubLabeling {
    let n = g.num_nodes();
    let mut labels: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
    let mut pruner = Pruner::new(n);
    let mut dist = vec![INFINITY; n];
    let mut visited: Vec<NodeId> = Vec::new();
    for &root in order {
        let root_label = labels[root as usize].clone();
        pruner.load_root(&root_label);
        let mut heap = BinaryHeap::new();
        dist[root as usize] = 0;
        visited.push(root);
        heap.push(Reverse((0u64, root)));
        while let Some(Reverse((du, u))) = heap.pop() {
            if du > dist[u as usize] {
                continue;
            }
            if pruner.query(&labels[u as usize]) <= du {
                continue;
            }
            labels[u as usize].push((root, du));
            for (v, w) in g.neighbors(u) {
                let nd = du.saturating_add(w);
                if nd < dist[v as usize] {
                    if dist[v as usize] == INFINITY {
                        visited.push(v);
                    }
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        for &v in &visited {
            dist[v as usize] = INFINITY;
        }
        visited.clear();
        pruner.clear();
    }
    labels.into_iter().map(HubLabel::from_pairs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact;
    use hl_graph::generators;

    #[test]
    fn exact_on_path() {
        let g = generators::path(10);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_grid_all_orders() {
        let g = generators::grid(5, 6);
        for hl in [
            PrunedLandmarkLabeling::by_degree(&g),
            PrunedLandmarkLabeling::by_random_order(&g, 1),
            PrunedLandmarkLabeling::by_betweenness(&g, 10, 2).unwrap(),
            PrunedLandmarkLabeling::with_order(&g, order::by_closeness(&g).unwrap()),
            PrunedLandmarkLabeling::with_strategy(&g, &order::BfsLevelOrder).unwrap(),
        ] {
            assert!(verify_exact(&g, hl.labeling()).unwrap().is_exact());
        }
    }

    #[test]
    fn exact_on_weighted_grid() {
        let g = generators::weighted_grid(6, 6, 13);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_disconnected_graph() {
        let g = hl_graph::builder::graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let report = verify_exact(&g, &hl).unwrap();
        assert!(
            report.is_exact(),
            "infinity must round-trip for separated pairs"
        );
    }

    #[test]
    fn star_labels_are_tiny() {
        // On a star, processing the center first gives every leaf a
        // two-hub label {center, self}.
        let g = generators::star(50);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        assert!(hl.max_hubs() <= 2);
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn tree_labels_logarithmic_scale() {
        let g = generators::balanced_binary_tree(7); // 255 vertices
        let hl = PrunedLandmarkLabeling::by_betweenness(&g, 32, 3)
            .unwrap()
            .into_labeling();
        // Heuristic orders on a balanced tree should stay well below n/2.
        assert!(hl.average_hubs() < 24.0, "avg = {}", hl.average_hubs());
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn first_vertex_in_order_hits_everything() {
        let g = generators::cycle(9);
        let pll = PrunedLandmarkLabeling::by_degree(&g);
        let first = pll.order()[0];
        let hl = pll.labeling();
        for v in 0..9u32 {
            assert!(
                hl.label(v).contains(first),
                "first-order vertex is a universal hub"
            );
        }
    }

    #[test]
    fn zero_weight_edges_handled() {
        let g = hl_graph::builder::graph_from_weighted_edges(4, &[(0, 1, 0), (1, 2, 3), (2, 3, 0)])
            .unwrap();
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
        assert_eq!(hl.query(0, 3), 3);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_bad_order() {
        let g = generators::path(3);
        let _ = PrunedLandmarkLabeling::with_order(&g, vec![0, 0, 1]);
    }

    #[test]
    fn random_order_deterministic() {
        let g = generators::connected_gnm(30, 15, 4);
        let a = PrunedLandmarkLabeling::by_random_order(&g, 9).into_labeling();
        let b = PrunedLandmarkLabeling::by_random_order(&g, 9).into_labeling();
        assert_eq!(a, b);
    }
}
