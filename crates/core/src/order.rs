//! Vertex orderings for ordering-sensitive constructions (PLL, greedy).
//!
//! PLL label sizes depend heavily on processing important vertices first;
//! these orders are the standard heuristics. Each is available both as a
//! free function and as a [`VertexOrder`] strategy object, so construction
//! pipelines (notably `hl-build`) can accept the ordering as a pluggable
//! parameter and sweep the ordering space without special-casing names.
//!
//! Orders that can silently degrade — sampled betweenness with zero
//! samples, closeness on a disconnected graph — return a typed
//! [`OrderError`] instead of a quietly meaningless permutation.

use hl_graph::dijkstra::shortest_path_distances;
use hl_graph::properties::connected_components;
use hl_graph::rng::Xorshift64;
use hl_graph::sptree::ShortestPathTree;
use hl_graph::{Graph, NodeId, INFINITY};

/// Why an ordering heuristic refused to produce an order.
///
/// These are the "silent degradation" cases: the old code returned a
/// permutation that *looked* fine but carried no ordering signal (all-zero
/// scores, unreachable vertices counted as distance zero). Callers that
/// want a fallback should match on the variant and pick a different order
/// explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderError {
    /// Sampled betweenness with `samples == 0`: every score would be zero
    /// and the "order" would collapse to the identity permutation.
    ZeroSamples,
    /// The heuristic assumes a connected graph, but this one has several
    /// components — unreachable vertices would be scored as if they were
    /// at distance zero (closeness) or never sampled at all (betweenness
    /// with few samples), producing an arbitrary order.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
}

impl std::fmt::Display for OrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderError::ZeroSamples => {
                write!(f, "betweenness order needs at least one sample source")
            }
            OrderError::Disconnected { components } => write!(
                f,
                "order heuristic assumes a connected graph, found {components} components"
            ),
        }
    }
}

impl std::error::Error for OrderError {}

/// A pluggable vertex-ordering strategy.
///
/// Implementations compute a permutation of `0..n` to feed an
/// ordering-sensitive construction (PLL processes vertices front to back,
/// so "important" vertices must come first). Strategies carry their own
/// parameters (seed, sample count), which keeps construction pipelines
/// free of per-heuristic knobs.
pub trait VertexOrder {
    /// Short stable name for CLI flags, stats and bench snapshots.
    fn name(&self) -> &'static str;

    /// Computes the processing order for `g`.
    ///
    /// # Errors
    ///
    /// Returns [`OrderError`] when the heuristic cannot produce a
    /// meaningful order for this graph (see the variants).
    fn compute(&self, g: &Graph) -> Result<Vec<NodeId>, OrderError>;
}

/// Identity order `0, 1, …, n-1`.
pub fn identity(g: &Graph) -> Vec<NodeId> {
    (0..g.num_nodes() as NodeId).collect()
}

/// Vertices by decreasing degree (ties by id) — the classic PLL heuristic.
pub fn by_degree(g: &Graph) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    order
}

/// Seeded uniformly random order.
pub fn random(g: &Graph, seed: u64) -> Vec<NodeId> {
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut order: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    rng.shuffle(&mut order);
    order
}

/// Approximate-betweenness order: counts, over `samples` seeded random
/// sources, how often each vertex appears on a canonical shortest-path
/// tree path, and sorts by decreasing count.
///
/// This favors vertices through which many shortest paths route — the
/// "highway" vertices that make good early hubs.
///
/// # Errors
///
/// Returns [`OrderError::ZeroSamples`] when `samples == 0` (every score
/// would be zero) and [`OrderError::Disconnected`] on disconnected graphs
/// (components missed by the sample sources would be left unscored and
/// fall back to an arbitrary identity tail).
pub fn by_sampled_betweenness(
    g: &Graph,
    samples: usize,
    seed: u64,
) -> Result<Vec<NodeId>, OrderError> {
    if samples == 0 {
        return Err(OrderError::ZeroSamples);
    }
    let n = g.num_nodes();
    let (_, components) = connected_components(g);
    if components > 1 {
        return Err(OrderError::Disconnected { components });
    }
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut score = vec![0u64; n];
    let mut sources: Vec<NodeId> = (0..n as NodeId).collect();
    rng.shuffle(&mut sources);
    for &s in sources.iter().take(samples.min(n)) {
        let t = ShortestPathTree::build(g, s);
        // Accumulate subtree sizes: each vertex's count of descendants is
        // the number of shortest paths from s (in the canonical tree)
        // passing through it.
        let mut order: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| t.distance(v) != INFINITY)
            .collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(t.distance(v)));
        let mut subtree = vec![1u64; n];
        for &v in &order {
            if v != s {
                if let Some(p) = t.parent(v) {
                    subtree[p as usize] += subtree[v as usize];
                }
            }
            score[v as usize] += subtree[v as usize];
        }
    }
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(score[v as usize]), v));
    Ok(order)
}

/// Order by decreasing eccentricity-centrality (closeness-like): vertices
/// with small total distance to everything come first. Quadratic; for small
/// graphs and experiments only.
///
/// # Errors
///
/// Returns [`OrderError::Disconnected`] on disconnected graphs, where
/// "total distance" is undefined (the old behaviour scored unreachable
/// pairs as distance zero, making isolated vertices look maximally
/// central).
pub fn by_closeness(g: &Graph) -> Result<Vec<NodeId>, OrderError> {
    let n = g.num_nodes();
    let (_, components) = connected_components(g);
    if components > 1 {
        return Err(OrderError::Disconnected { components });
    }
    let mut total = vec![0u128; n];
    for v in 0..n as NodeId {
        let d = shortest_path_distances(g, v);
        total[v as usize] = d.iter().map(|&x| x as u128).sum();
    }
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| (total[v as usize], v));
    Ok(order)
}

/// BFS-level order: repeatedly roots a BFS at the highest-degree vertex
/// not yet reached, then sorts by (level, decreasing degree, id).
///
/// Vertices near the structural "center" of each component come first —
/// a cheap `O(n + m)` stand-in for closeness that scales to millions of
/// vertices and handles disconnected graphs (every component gets its own
/// root).
pub fn by_bfs_level(g: &Graph) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut level = vec![INFINITY; n];
    let mut by_deg: Vec<NodeId> = by_degree(g);
    let mut queue = std::collections::VecDeque::new();
    for &root in &by_deg {
        if level[root as usize] != INFINITY {
            continue;
        }
        level[root as usize] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbor_ids(u) {
                if level[v as usize] == INFINITY {
                    level[v as usize] = level[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    // `by_deg` is already (degree desc, id asc); a stable sort by level
    // keeps that as the tie-break within each level.
    by_deg.sort_by_key(|&v| level[v as usize]);
    by_deg
}

/// Validates that `order` is a permutation of `0..n`.
pub fn is_permutation(order: &[NodeId], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in order {
        if (v as usize) >= n || seen[v as usize] {
            return false;
        }
        seen[v as usize] = true;
    }
    true
}

/// [`VertexOrder`] strategy for [`by_degree`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeOrder;

impl VertexOrder for DegreeOrder {
    fn name(&self) -> &'static str {
        "degree"
    }

    fn compute(&self, g: &Graph) -> Result<Vec<NodeId>, OrderError> {
        Ok(by_degree(g))
    }
}

/// [`VertexOrder`] strategy for [`identity`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityOrder;

impl VertexOrder for IdentityOrder {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn compute(&self, g: &Graph) -> Result<Vec<NodeId>, OrderError> {
        Ok(identity(g))
    }
}

/// [`VertexOrder`] strategy for [`random`].
#[derive(Debug, Clone, Copy)]
pub struct RandomOrder {
    /// RNG seed; the same seed always yields the same order.
    pub seed: u64,
}

impl VertexOrder for RandomOrder {
    fn name(&self) -> &'static str {
        "random"
    }

    fn compute(&self, g: &Graph) -> Result<Vec<NodeId>, OrderError> {
        Ok(random(g, self.seed))
    }
}

/// [`VertexOrder`] strategy for [`by_sampled_betweenness`].
#[derive(Debug, Clone, Copy)]
pub struct BetweennessOrder {
    /// Number of seeded BFS/SSSP sources to sample.
    pub samples: usize,
    /// RNG seed for source selection.
    pub seed: u64,
}

impl VertexOrder for BetweennessOrder {
    fn name(&self) -> &'static str {
        "betweenness"
    }

    fn compute(&self, g: &Graph) -> Result<Vec<NodeId>, OrderError> {
        by_sampled_betweenness(g, self.samples, self.seed)
    }
}

/// [`VertexOrder`] strategy for [`by_closeness`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosenessOrder;

impl VertexOrder for ClosenessOrder {
    fn name(&self) -> &'static str {
        "closeness"
    }

    fn compute(&self, g: &Graph) -> Result<Vec<NodeId>, OrderError> {
        by_closeness(g)
    }
}

/// [`VertexOrder`] strategy for [`by_bfs_level`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsLevelOrder;

impl VertexOrder for BfsLevelOrder {
    fn name(&self) -> &'static str {
        "bfs-level"
    }

    fn compute(&self, g: &Graph) -> Result<Vec<NodeId>, OrderError> {
        Ok(by_bfs_level(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::generators;

    #[test]
    fn all_orders_are_permutations() {
        let g = generators::connected_gnm(40, 20, 5);
        for order in [
            identity(&g),
            by_degree(&g),
            random(&g, 7),
            by_sampled_betweenness(&g, 8, 7).unwrap(),
            by_closeness(&g).unwrap(),
            by_bfs_level(&g),
        ] {
            assert!(is_permutation(&order, 40));
        }
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let g = generators::star(10);
        assert_eq!(by_degree(&g)[0], 0);
    }

    #[test]
    fn closeness_order_on_path_starts_central() {
        let g = generators::path(9);
        let order = by_closeness(&g).unwrap();
        assert_eq!(order[0], 4, "middle of the path minimizes total distance");
    }

    #[test]
    fn betweenness_order_on_star_puts_center_first() {
        let g = generators::star(12);
        let order = by_sampled_betweenness(&g, 6, 1).unwrap();
        assert_eq!(order[0], 0);
    }

    #[test]
    fn betweenness_rejects_zero_samples() {
        let g = generators::path(5);
        assert_eq!(
            by_sampled_betweenness(&g, 0, 1),
            Err(OrderError::ZeroSamples)
        );
    }

    #[test]
    fn betweenness_and_closeness_reject_disconnected() {
        let g = hl_graph::builder::graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(
            by_sampled_betweenness(&g, 4, 1),
            Err(OrderError::Disconnected { components: 3 })
        );
        assert_eq!(
            by_closeness(&g),
            Err(OrderError::Disconnected { components: 3 })
        );
        let msg = by_closeness(&g).unwrap_err().to_string();
        assert!(msg.contains("3 components"), "{msg}");
    }

    #[test]
    fn bfs_level_order_on_star_puts_center_first() {
        let g = generators::star(12);
        let order = by_bfs_level(&g);
        assert_eq!(order[0], 0);
        // Leaves follow in id order (all level 1, degree 1).
        assert_eq!(&order[1..4], &[1, 2, 3]);
    }

    #[test]
    fn bfs_level_order_handles_disconnected_graphs() {
        let g = hl_graph::builder::graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let order = by_bfs_level(&g);
        assert!(is_permutation(&order, 6));
        // Component roots (the highest-degree vertex of each component)
        // sit at level 0, so they precede every leaf.
        assert_eq!(order[0], 1, "degree-2 center of the path component");
    }

    #[test]
    fn random_order_is_seeded() {
        let g = generators::path(20);
        assert_eq!(random(&g, 3), random(&g, 3));
        assert_ne!(random(&g, 3), random(&g, 4));
    }

    #[test]
    fn strategy_objects_match_free_functions() {
        let g = generators::connected_gnm(30, 15, 2);
        let pairs: Vec<(Box<dyn VertexOrder>, Vec<NodeId>)> = vec![
            (Box::new(DegreeOrder), by_degree(&g)),
            (Box::new(IdentityOrder), identity(&g)),
            (Box::new(RandomOrder { seed: 4 }), random(&g, 4)),
            (
                Box::new(BetweennessOrder {
                    samples: 6,
                    seed: 9,
                }),
                by_sampled_betweenness(&g, 6, 9).unwrap(),
            ),
            (Box::new(ClosenessOrder), by_closeness(&g).unwrap()),
            (Box::new(BfsLevelOrder), by_bfs_level(&g)),
        ];
        for (strategy, expected) in pairs {
            assert_eq!(
                strategy.compute(&g).unwrap(),
                expected,
                "{}",
                strategy.name()
            );
            assert!(!strategy.name().is_empty());
        }
    }

    #[test]
    fn is_permutation_rejects_bad_inputs() {
        assert!(!is_permutation(&[0, 0], 2));
        assert!(!is_permutation(&[0, 5], 2));
        assert!(!is_permutation(&[0], 2));
        assert!(is_permutation(&[1, 0], 2));
    }
}
