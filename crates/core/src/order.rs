//! Vertex orderings for ordering-sensitive constructions (PLL, greedy).
//!
//! PLL label sizes depend heavily on processing important vertices first;
//! these orders are the standard heuristics.

use hl_graph::dijkstra::shortest_path_distances;
use hl_graph::rng::Xorshift64;
use hl_graph::sptree::ShortestPathTree;
use hl_graph::{Graph, NodeId, INFINITY};

/// Identity order `0, 1, …, n-1`.
pub fn identity(g: &Graph) -> Vec<NodeId> {
    (0..g.num_nodes() as NodeId).collect()
}

/// Vertices by decreasing degree (ties by id) — the classic PLL heuristic.
pub fn by_degree(g: &Graph) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    order
}

/// Seeded uniformly random order.
pub fn random(g: &Graph, seed: u64) -> Vec<NodeId> {
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut order: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    rng.shuffle(&mut order);
    order
}

/// Approximate-betweenness order: counts, over `samples` seeded random
/// sources, how often each vertex appears on a canonical shortest-path
/// tree path, and sorts by decreasing count.
///
/// This favors vertices through which many shortest paths route — the
/// "highway" vertices that make good early hubs.
pub fn by_sampled_betweenness(g: &Graph, samples: usize, seed: u64) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut rng = Xorshift64::seed_from_u64(seed);
    let mut score = vec![0u64; n];
    let mut sources: Vec<NodeId> = (0..n as NodeId).collect();
    rng.shuffle(&mut sources);
    for &s in sources.iter().take(samples.min(n)) {
        let t = ShortestPathTree::build(g, s);
        // Accumulate subtree sizes: each vertex's count of descendants is
        // the number of shortest paths from s (in the canonical tree)
        // passing through it.
        let mut order: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| t.distance(v) != INFINITY)
            .collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(t.distance(v)));
        let mut subtree = vec![1u64; n];
        for &v in &order {
            if v != s {
                if let Some(p) = t.parent(v) {
                    subtree[p as usize] += subtree[v as usize];
                }
            }
            score[v as usize] += subtree[v as usize];
        }
    }
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(score[v as usize]), v));
    order
}

/// Order by decreasing eccentricity-centrality (closeness-like): vertices
/// with small total distance to everything come first. Quadratic; for small
/// graphs and experiments only.
pub fn by_closeness(g: &Graph) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut total = vec![0u128; n];
    for v in 0..n as NodeId {
        let d = shortest_path_distances(g, v);
        total[v as usize] = d
            .iter()
            .map(|&x| if x == INFINITY { 0u128 } else { x as u128 })
            .sum();
    }
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| (total[v as usize], v));
    order
}

/// Validates that `order` is a permutation of `0..n`.
pub fn is_permutation(order: &[NodeId], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in order {
        if (v as usize) >= n || seen[v as usize] {
            return false;
        }
        seen[v as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::generators;

    #[test]
    fn all_orders_are_permutations() {
        let g = generators::connected_gnm(40, 20, 5);
        for order in [
            identity(&g),
            by_degree(&g),
            random(&g, 7),
            by_sampled_betweenness(&g, 8, 7),
            by_closeness(&g),
        ] {
            assert!(is_permutation(&order, 40));
        }
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let g = generators::star(10);
        assert_eq!(by_degree(&g)[0], 0);
    }

    #[test]
    fn closeness_order_on_path_starts_central() {
        let g = generators::path(9);
        let order = by_closeness(&g);
        assert_eq!(order[0], 4, "middle of the path minimizes total distance");
    }

    #[test]
    fn betweenness_order_on_star_puts_center_first() {
        let g = generators::star(12);
        let order = by_sampled_betweenness(&g, 6, 1);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn random_order_is_seeded() {
        let g = generators::path(20);
        assert_eq!(random(&g, 3), random(&g, 3));
        assert_ne!(random(&g, 3), random(&g, 4));
    }

    #[test]
    fn is_permutation_rejects_bad_inputs() {
        assert!(!is_permutation(&[0, 0], 2));
        assert!(!is_permutation(&[0, 5], 2));
        assert!(!is_permutation(&[0], 2));
        assert!(is_permutation(&[1, 0], 2));
    }
}
