//! Monotone hubsets and the `S*` ancestor-closure accounting of
//! Theorem 2.1.
//!
//! The paper's lower-bound proof fixes a canonical shortest-path tree `T_v`
//! per vertex and replaces each hubset `S_v` with `S*_v`: the vertex set of
//! the minimal subtree of `T_v` (rooted at `v`) containing `S_v`. Then
//! `|S*_v| <= diam(G) * |S_v|` (Eq. 1), and `S*` is *monotone*: if `x` is a
//! hub then so is every vertex on the canonical `v-x` path. For a pair
//! `u, v` joined by a unique shortest path, every vertex `y` on that path
//! satisfies `y ∈ S*_u or y ∈ S*_v` — the counting step of the proof.

use hl_graph::sptree::ShortestPathTree;
use hl_graph::{Graph, NodeId};

use crate::label::HubLabeling;

/// The monotone closure of a hub labeling: for every vertex `v`, the set
/// `S*_v` (as a sorted vertex list) with respect to the canonical
/// shortest-path tree rooted at `v`.
///
/// # Example
///
/// ```
/// use hl_graph::generators;
/// use hl_core::pll::PrunedLandmarkLabeling;
/// use hl_core::monotone::MonotoneClosure;
///
/// let g = generators::grid(3, 3);
/// let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
/// let closure = MonotoneClosure::compute(&g, &labeling);
/// assert!(closure.total_size() >= labeling.total_hubs());
/// ```
#[derive(Debug, Clone)]
pub struct MonotoneClosure {
    sets: Vec<Vec<NodeId>>,
}

impl MonotoneClosure {
    /// Computes `S*_v` for every vertex. Runs one SSSP per vertex —
    /// quadratic, intended for instances small enough to verify.
    pub fn compute(g: &Graph, labeling: &HubLabeling) -> Self {
        let n = g.num_nodes();
        let mut sets = Vec::with_capacity(n);
        for v in 0..n as NodeId {
            let tree = ShortestPathTree::build(g, v);
            let hubs = labeling.label(v).hubs();
            sets.push(tree.ancestor_closure(hubs));
        }
        MonotoneClosure { sets }
    }

    /// The closed set `S*_v` (sorted).
    pub fn set(&self, v: NodeId) -> &[NodeId] {
        &self.sets[v as usize]
    }

    /// `true` when `x ∈ S*_v`.
    pub fn contains(&self, v: NodeId, x: NodeId) -> bool {
        self.sets[v as usize].binary_search(&x).is_ok()
    }

    /// `Σ_v |S*_v|`.
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Average `|S*_v|`.
    pub fn average_size(&self) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        self.total_size() as f64 / self.sets.len() as f64
    }

    /// Largest `|S*_v|`.
    pub fn max_size(&self) -> usize {
        self.sets.iter().map(|s| s.len()).max().unwrap_or(0)
    }
}

/// Checks Eq. (1) of the paper: `|S*_v| <= (hop-diameter + 1) * |S_v|` for
/// every vertex (the `+1` accounts for `v` itself, present in every
/// closure; the paper's form absorbs it into the diameter factor).
///
/// Returns the first violating vertex if any.
pub fn check_closure_size_relation(
    g: &Graph,
    labeling: &HubLabeling,
    closure: &MonotoneClosure,
    hop_diameter: u64,
) -> Option<NodeId> {
    for v in 0..g.num_nodes() as NodeId {
        let s = labeling.label(v).len();
        let star = closure.set(v).len();
        if star as u64 > (hop_diameter + 1) * (s.max(1) as u64) {
            return Some(v);
        }
    }
    None
}

/// Checks the *monotone cover* property exploited by the counting argument:
/// for each provided triple `(u, mid, v)` where `mid` lies on the unique
/// shortest `u-v` path, verifies `mid ∈ S*_u or mid ∈ S*_v`.
///
/// Returns the number of satisfied triples; equality with `triples.len()`
/// is what Theorem 2.1's proof requires — but note it requires it only for
/// *valid covers* combined with *unique* shortest paths, so feeding
/// arbitrary triples can legitimately return fewer.
pub fn count_midpoint_charges(
    closure: &MonotoneClosure,
    triples: &[(NodeId, NodeId, NodeId)],
) -> usize {
    triples
        .iter()
        .filter(|&&(u, mid, v)| closure.contains(u, mid) || closure.contains(v, mid))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::dijkstra::dijkstra_count_paths;
    use hl_graph::properties::hop_diameter_exact;
    use hl_graph::{generators, INFINITY};

    #[test]
    fn closure_contains_hubs_and_self() {
        let g = generators::grid(4, 4);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let mc = MonotoneClosure::compute(&g, &hl);
        for v in 0..16u32 {
            assert!(mc.contains(v, v), "closure always contains the root");
            for &h in hl.label(v).hubs() {
                assert!(mc.contains(v, h), "closure contains every hub");
            }
        }
        assert!(mc.total_size() >= hl.total_hubs());
    }

    #[test]
    fn closure_is_path_closed() {
        let g = generators::connected_gnm(30, 12, 5);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let mc = MonotoneClosure::compute(&g, &hl);
        for v in 0..30u32 {
            let tree = ShortestPathTree::build(&g, v);
            for &x in mc.set(v) {
                if let Some(p) = tree.parent(x) {
                    assert!(
                        mc.contains(v, p),
                        "parent of closure member must be in closure"
                    );
                }
            }
        }
    }

    #[test]
    fn size_relation_eq1_holds() {
        let g = generators::connected_gnm(40, 20, 6);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let mc = MonotoneClosure::compute(&g, &hl);
        let diam = hop_diameter_exact(&g);
        assert_eq!(check_closure_size_relation(&g, &hl, &mc, diam), None);
    }

    #[test]
    fn midpoint_charging_on_unique_paths() {
        // On a tree every shortest path is unique, so every on-path vertex
        // must be charged to one endpoint of every pair.
        let g = generators::balanced_binary_tree(4);
        let n = g.num_nodes() as NodeId;
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let mc = MonotoneClosure::compute(&g, &hl);
        let mut triples = Vec::new();
        for u in 0..n {
            let (dist, count) = dijkstra_count_paths(&g, u);
            let tree = ShortestPathTree::build(&g, u);
            for v in 0..n {
                if u == v || dist[v as usize] == INFINITY {
                    continue;
                }
                assert_eq!(count[v as usize], 1);
                for &mid in tree.path_to(v).unwrap().iter() {
                    triples.push((u, mid, v));
                }
            }
        }
        assert_eq!(count_midpoint_charges(&mc, &triples), triples.len());
    }

    #[test]
    fn stats_accessors() {
        let g = generators::path(6);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let mc = MonotoneClosure::compute(&g, &hl);
        assert!(mc.average_size() >= 1.0);
        assert!(mc.max_size() >= 1);
        assert_eq!(mc.set(0).first(), Some(&0));
    }
}
