//! Separator-based hub labeling (Gavoille–Peleg–Pérennes–Raz style).
//!
//! Recursively split the graph along balanced separators; every vertex
//! stores, as hubs, all separator vertices of every recursion level it
//! belongs to, with *true graph* distances. For a pair `u, v`, consider
//! the first recursion step that puts them in different parts (or removes
//! one of them): every `u–v` path crosses that separator, so some
//! separator vertex lies on a shortest path and is a hub of both.
//!
//! Correctness holds for **any** graph; sizes are `O(√n·log n)` hubs on
//! planar/grid-like inputs where the BFS-level heuristic finds `O(√n)`
//! separators — the scheme the paper quotes for planar graphs (§1.1).
//!
//! Note hubs store distances in the *full* graph (not the part), which can
//! only help: the labeling stays admissible and the cover argument still
//! holds because the crossing separator vertex realizes a full-graph
//! shortest path.

use hl_graph::dijkstra::shortest_path_distances;
use hl_graph::separator::bfs_level_separator;
use hl_graph::{Graph, NodeId, INFINITY};

use crate::label::{HubLabel, HubLabeling};

/// Builds the separator-based labeling.
///
/// Runs one SSSP per separator vertex over the full graph, so the cost is
/// `O(#hubs · (m + n log n))`.
pub fn separator_labeling(g: &Graph) -> HubLabeling {
    let n = g.num_nodes();
    let mut pairs: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); n];
    // Work list of parts to split.
    let mut stack: Vec<Vec<NodeId>> = vec![(0..n as NodeId).collect()];
    while let Some(part) = stack.pop() {
        if part.is_empty() {
            continue;
        }
        if part.len() == 1 {
            // Singleton: it is its own hub (distance 0).
            pairs[part[0] as usize].push((part[0], 0));
            continue;
        }
        let sep = bfs_level_separator(g, &part);
        // Every separator vertex becomes a hub of every vertex in the part
        // (including the separator itself), at full-graph distance.
        for &s in &sep.vertices {
            let dist = shortest_path_distances(g, s);
            for &v in &part {
                if dist[v as usize] != INFINITY {
                    pairs[v as usize].push((s, dist[v as usize]));
                }
            }
        }
        for piece in sep.parts {
            stack.push(piece);
        }
    }
    HubLabeling::from_labels(pairs.into_iter().map(HubLabel::from_pairs).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact;
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    #[test]
    fn exact_on_grid() {
        let g = generators::grid(8, 8);
        let hl = separator_labeling(&g);
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_path_cycle_tree() {
        for g in [
            generators::path(40),
            generators::cycle(33),
            generators::random_tree(50, 4),
        ] {
            let hl = separator_labeling(&g);
            assert!(verify_exact(&g, &hl).unwrap().is_exact());
        }
    }

    #[test]
    fn exact_on_weighted_grid() {
        let g = generators::weighted_grid(6, 6, 11);
        let hl = separator_labeling(&g);
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_sparse_random_and_expander() {
        for g in [
            generators::connected_gnm(60, 30, 7),
            generators::union_of_matchings(40, 3, 8),
        ] {
            let hl = separator_labeling(&g);
            assert!(verify_exact(&g, &hl).unwrap().is_exact());
        }
    }

    #[test]
    fn exact_on_disconnected() {
        let g = hl_graph::builder::graph_from_edges(7, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let hl = separator_labeling(&g);
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn sqrt_scaling_on_grids() {
        // Label sizes on k x k grids should grow ~ k (the separator size),
        // i.e. ~ sqrt(n): going 8x8 -> 16x16 should ~double the average,
        // not ~quadruple it.
        let small = separator_labeling(&generators::grid(8, 8));
        let large = separator_labeling(&generators::grid(16, 16));
        let ratio = large.average_hubs() / small.average_hubs();
        assert!(
            ratio < 3.2,
            "expected ~2x growth for 4x vertices, got {ratio:.2} ({} -> {})",
            small.average_hubs(),
            large.average_hubs()
        );
    }

    #[test]
    fn competitive_with_pll_on_grids() {
        let g = generators::grid(12, 12);
        let sep = separator_labeling(&g);
        let pll = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        // Both should be well below the trivial n hubs per vertex.
        assert!(sep.average_hubs() < 72.0);
        assert!(sep.max_hubs() < 144);
        // And within a moderate factor of each other.
        assert!(sep.average_hubs() < 6.0 * pll.average_hubs());
    }

    #[test]
    fn logarithmic_on_paths() {
        // On a path every BFS-level separator is a single vertex, so the
        // recursion gives ~log n hubs per vertex.
        let g = generators::path(256);
        let hl = separator_labeling(&g);
        assert!(
            hl.max_hubs() <= 12,
            "path separators are single vertices: max = {}",
            hl.max_hubs()
        );
    }

    #[test]
    fn bounded_on_bushy_trees() {
        // BFS levels of a balanced binary tree are large (2^k vertices), so
        // the heuristic pays more than a centroid would — but sizes must
        // stay well below n. (Use `tree::centroid_labeling` for the optimal
        // tree scheme.)
        let g = generators::balanced_binary_tree(7); // 255 vertices
        let hl = separator_labeling(&g);
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
        assert!(hl.max_hubs() <= 80, "max = {}", hl.max_hubs());
    }
}
