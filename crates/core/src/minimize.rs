//! Greedy redundancy removal: shrink a hub labeling while preserving
//! exactness.
//!
//! Any construction can leave hubs no pair actually needs. This pass
//! removes hub `h` from `S_v` whenever every query `(v, ·)` still decodes
//! exactly without it — a cheap post-processing ablation that quantifies
//! how far each construction sits from (local) minimality.

use hl_graph::apsp::DistanceMatrix;
use hl_graph::{Graph, GraphError, NodeId};

use crate::label::{HubLabel, HubLabeling};

/// Result of a minimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimizeReport {
    /// Total hubs before.
    pub before: usize,
    /// Total hubs after.
    pub after: usize,
    /// Hubs removed.
    pub removed: usize,
}

/// Removes redundant hubs (greedy, per vertex, most recently added hub ids
/// first). The result is exact and *locally* minimal: no single hub can be
/// removed without breaking some query.
///
/// Quadratic memory (APSP); intended for experiment-scale instances.
///
/// # Errors
///
/// Propagates [`GraphError`] from the APSP computation.
pub fn minimize_labeling(
    g: &Graph,
    labeling: &HubLabeling,
) -> Result<(HubLabeling, MinimizeReport), GraphError> {
    let n = g.num_nodes();
    let truth = DistanceMatrix::compute(g)?;
    let before = labeling.total_hubs();
    let mut labels: Vec<HubLabel> = (0..n as NodeId)
        .map(|v| labeling.label(v).clone())
        .collect();
    // For pair (v, u) exactness after removing h from S_v, only queries
    // involving v change; recheck the row.
    for v in 0..n as NodeId {
        let mut hubs: Vec<(NodeId, u64)> = labels[v as usize].iter().collect();
        // Try dropping hubs from the largest id down (snapshot the ids —
        // `hubs` shrinks as removals succeed).
        let mut candidate_ids: Vec<NodeId> = hubs.iter().map(|&(h, _)| h).collect();
        candidate_ids.sort_unstable_by_key(|&h| std::cmp::Reverse(h));
        for h in candidate_ids {
            let mut trial: Vec<(NodeId, u64)> = hubs.clone();
            trial.retain(|&(x, _)| x != h);
            let trial_label = HubLabel::from_pairs(trial);
            let ok = (0..n as NodeId).all(|u| {
                let answer = if u == v {
                    trial_label.join(&trial_label)
                } else {
                    trial_label.join(&labels[u as usize])
                };
                answer == truth.distance(v, u)
            });
            if ok {
                hubs.retain(|&(x, _)| x != h);
            }
        }
        labels[v as usize] = HubLabel::from_pairs(hubs);
    }
    let minimized = HubLabeling::from_labels(labels);
    let after = minimized.total_hubs();
    Ok((
        minimized,
        MinimizeReport {
            before,
            after,
            removed: before - after,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact;
    use crate::pll::PrunedLandmarkLabeling;
    use crate::random_threshold::{random_threshold_labeling, RandomThresholdParams};
    use hl_graph::generators;

    #[test]
    fn minimized_labeling_stays_exact() {
        let g = generators::connected_gnm(40, 20, 4);
        let hl = PrunedLandmarkLabeling::by_random_order(&g, 3).into_labeling();
        let (min, report) = minimize_labeling(&g, &hl).unwrap();
        assert!(verify_exact(&g, &min).unwrap().is_exact());
        assert_eq!(report.before - report.removed, report.after);
        assert!(report.after <= report.before);
    }

    #[test]
    fn shrinks_wasteful_labelings_substantially() {
        // The random-threshold construction stores whole balls; most of it
        // is redundant on a small graph.
        let g = generators::grid(5, 5);
        let (hl, _) = random_threshold_labeling(
            &g,
            RandomThresholdParams {
                threshold: 4,
                seed: 1,
            },
        )
        .unwrap();
        let (min, report) = minimize_labeling(&g, &hl).unwrap();
        assert!(verify_exact(&g, &min).unwrap().is_exact());
        assert!(
            (report.after as f64) < 0.8 * report.before as f64,
            "expected >20% shrink, got {} -> {}",
            report.before,
            report.after
        );
    }

    #[test]
    fn result_is_locally_minimal() {
        let g = generators::cycle(9);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let (min, _) = minimize_labeling(&g, &hl).unwrap();
        // Dropping any single remaining hub must break exactness.
        let truth = DistanceMatrix::compute(&g).unwrap();
        for v in 0..9u32 {
            for (h, _) in min.label(v).iter() {
                let mut crippled: Vec<(NodeId, u64)> = min.label(v).iter().collect();
                crippled.retain(|&(x, _)| x != h);
                let crippled = HubLabel::from_pairs(crippled);
                let broken = (0..9u32).any(|u| {
                    let answer = if u == v {
                        crippled.join(&crippled)
                    } else {
                        crippled.join(min.label(u))
                    };
                    answer != truth.distance(v, u)
                });
                assert!(broken, "hub ({v},{h}) was still removable");
            }
        }
    }

    #[test]
    fn already_minimal_labeling_unchanged() {
        // A path labeled by centroid decomposition is already very tight.
        let g = generators::path(9);
        let hl = crate::tree::centroid_labeling(&g).unwrap();
        let (min, report) = minimize_labeling(&g, &hl).unwrap();
        assert!(verify_exact(&g, &min).unwrap().is_exact());
        assert!(report.removed <= report.before / 4);
    }
}
