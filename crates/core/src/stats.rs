//! Aggregate statistics of hub labelings, shared by every experiment table.

use crate::label::LabelingView;

/// Size statistics of a labeling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelingStats {
    /// Number of vertices.
    pub num_nodes: usize,
    /// `Σ_v |S_v|`.
    pub total_hubs: usize,
    /// `Σ_v |S_v| / n`.
    pub average_hubs: f64,
    /// `max_v |S_v|`.
    pub max_hubs: usize,
    /// Estimated in-memory bytes (hub ids as `u32` + distances as `u64`).
    pub memory_bytes: usize,
}

impl LabelingStats {
    /// Computes the statistics of `labeling` — either representation
    /// (nested [`crate::HubLabeling`] or flat [`crate::FlatLabeling`]).
    pub fn of<L: LabelingView>(labeling: &L) -> Self {
        let total = labeling.total_hubs();
        LabelingStats {
            num_nodes: labeling.num_nodes(),
            total_hubs: total,
            average_hubs: labeling.average_hubs(),
            max_hubs: labeling.max_hubs(),
            memory_bytes: total * (std::mem::size_of::<u32>() + std::mem::size_of::<u64>()),
        }
    }
}

impl std::fmt::Display for LabelingStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} total={} avg={:.2} max={} mem={}B",
            self.num_nodes, self.total_hubs, self.average_hubs, self.max_hubs, self.memory_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{HubLabel, HubLabeling};

    #[test]
    fn stats_of_simple_labeling() {
        let mut hl = HubLabeling::empty(2);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (1, 1)]);
        *hl.label_mut(1) = HubLabel::from_pairs(vec![(1, 0)]);
        let s = LabelingStats::of(&hl);
        assert_eq!(s.num_nodes, 2);
        assert_eq!(s.total_hubs, 3);
        assert_eq!(s.max_hubs, 2);
        assert!((s.average_hubs - 1.5).abs() < 1e-9);
        assert_eq!(s.memory_bytes, 36);
        let text = s.to_string();
        assert!(text.contains("avg=1.50"));
    }

    #[test]
    fn stats_of_empty() {
        let s = LabelingStats::of(&HubLabeling::empty(0));
        assert_eq!(s.total_hubs, 0);
        assert_eq!(s.average_hubs, 0.0);
    }

    #[test]
    fn stats_agree_across_representations() {
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (2, 5)]);
        *hl.label_mut(2) = HubLabel::from_pairs(vec![(2, 0)]);
        let flat = crate::flat::FlatLabeling::from_labeling(&hl);
        assert_eq!(LabelingStats::of(&hl), LabelingStats::of(&flat));
    }
}
