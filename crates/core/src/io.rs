//! Plain-text serialization of hub labelings.
//!
//! Format: header `hl <num_nodes> <total_hubs>`, then one line per vertex:
//! `l <v> <k> <h1> <d1> … <hk> <dk>`. Comment lines start with `c`.
//! Companion to [`hl_graph::io`] so labelings can be built once and
//! queried by other tooling.

use std::io::{BufRead, Write};

use hl_graph::GraphError;

use crate::label::{HubLabel, HubLabeling};

/// Writes `labeling` in text form.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_labeling<W: Write>(labeling: &HubLabeling, mut out: W) -> std::io::Result<()> {
    writeln!(out, "hl {} {}", labeling.num_nodes(), labeling.total_hubs())?;
    for v in 0..labeling.num_nodes() as u32 {
        let label = labeling.label(v);
        write!(out, "l {v} {}", label.len())?;
        for (h, d) in label.iter() {
            write!(out, " {h} {d}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Reads a labeling written by [`write_labeling`].
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] on malformed input.
pub fn read_labeling<R: BufRead>(input: R) -> Result<HubLabeling, GraphError> {
    let bad = |msg: &str, line_no: usize| GraphError::InvalidParameters {
        reason: format!("{msg} (line {line_no})"),
    };
    let mut labels: Option<Vec<HubLabel>> = None;
    let mut declared_hubs = 0usize;
    let mut seen_hubs = 0usize;
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(|e| GraphError::InvalidParameters {
            reason: format!("read failure: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("hl") => {
                if labels.is_some() {
                    return Err(bad("duplicate header", i + 1));
                }
                let n: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("header needs a node count", i + 1))?;
                declared_hubs = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("header needs a hub count", i + 1))?;
                labels = Some(vec![HubLabel::new(); n]);
            }
            Some("l") => {
                let labels = labels
                    .as_mut()
                    .ok_or_else(|| bad("label before header", i + 1))?;
                let v: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("label needs a vertex id", i + 1))?;
                if v >= labels.len() {
                    return Err(bad("vertex id out of range", i + 1));
                }
                let k: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("label needs a hub count", i + 1))?;
                let mut pairs = Vec::with_capacity(k);
                for _ in 0..k {
                    let h: u32 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("truncated hub list", i + 1))?;
                    let d: u64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("truncated hub list", i + 1))?;
                    pairs.push((h, d));
                }
                if parts.next().is_some() {
                    return Err(bad("trailing tokens on label line", i + 1));
                }
                seen_hubs += pairs.len();
                labels[v] = HubLabel::from_pairs(pairs);
            }
            Some(tok) => return Err(bad(&format!("unknown record '{tok}'"), i + 1)),
            None => unreachable!("empty lines are skipped"),
        }
    }
    let labels = labels.ok_or_else(|| GraphError::InvalidParameters {
        reason: "missing header line".into(),
    })?;
    if seen_hubs != declared_hubs {
        return Err(GraphError::InvalidParameters {
            reason: format!("header declared {declared_hubs} hubs, found {seen_hubs}"),
        });
    }
    Ok(HubLabeling::from_labels(labels))
}

/// Serializes to a string (convenience).
pub fn to_string(labeling: &HubLabeling) -> String {
    let mut buf = Vec::new();
    write_labeling(labeling, &mut buf).expect("io::Write for Vec<u8> is infallible"); // lint:allow(no-panic): the io::Write impl for Vec<u8> never errors
    String::from_utf8_lossy(&buf).into_owned()
}

/// Parses from a string (convenience).
///
/// # Errors
///
/// Same as [`read_labeling`].
pub fn from_str(s: &str) -> Result<HubLabeling, GraphError> {
    read_labeling(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    #[test]
    fn roundtrip_pll_labeling() {
        let g = generators::connected_gnm(40, 20, 3);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let text = to_string(&hl);
        assert_eq!(from_str(&text).unwrap(), hl);
    }

    #[test]
    fn roundtrip_with_empty_labels() {
        let hl = HubLabeling::empty(3);
        assert_eq!(from_str(&to_string(&hl)).unwrap(), hl);
    }

    #[test]
    fn comments_ignored() {
        let text = "c a labeling\nhl 2 2\nl 0 1 0 0\nc mid\nl 1 1 1 0\n";
        let hl = from_str(text).unwrap();
        assert_eq!(hl.num_nodes(), 2);
        assert_eq!(hl.label(1).distance_to_hub(1), Some(0));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_str("").is_err());
        assert!(from_str("l 0 0\n").is_err(), "label before header");
        assert!(from_str("hl 1 0\nhl 1 0\n").is_err(), "duplicate header");
        assert!(from_str("hl 1 1\nl 0 0\n").is_err(), "hub count mismatch");
        assert!(
            from_str("hl 1 1\nl 5 1 0 0\n").is_err(),
            "vertex out of range"
        );
        assert!(from_str("hl 1 1\nl 0 1 0\n").is_err(), "truncated pair");
        assert!(
            from_str("hl 1 1\nl 0 1 0 0 9\n").is_err(),
            "trailing tokens"
        );
        assert!(from_str("hl 1 1\nz\n").is_err(), "unknown record");
    }
}
