//! `FlatLabeling` — the CSR label arena, the canonical query-time
//! representation of a hub labeling.
//!
//! The nested [`HubLabeling`] pays two heap pointers per vertex; on the
//! query path that means a pointer chase (and usually a cold cache line)
//! per endpoint before the merge-join even starts. The flat form stores
//! every label back to back in three arrays, exactly like the graph
//! crate's CSR adjacency:
//!
//! ```text
//! offsets: [0, |S_0|, |S_0|+|S_1|, ...]          (n + 1 entries, u64)
//! hubs:    [S_0 sorted | S_1 sorted | ... ]      (Σ|S_v| NodeIds)
//! dists:   [d(0,·)     | d(1,·)     | ... ]      (Σ|S_v| Distances)
//! ```
//!
//! Vertex `v`'s label is the slice `offsets[v]..offsets[v+1]` of `hubs`
//! and `dists` — contiguous, allocation-free to access, and friendly to
//! whatever comes next (SIMD merges, mmap-backed stores, sharding).
//!
//! Conversions to and from [`HubLabeling`] are lossless; construction
//! code keeps the mutable per-vertex API and converts once at the end.
//!
//! # Example
//!
//! ```
//! use hl_graph::generators;
//! use hl_core::pll::PrunedLandmarkLabeling;
//! use hl_core::FlatLabeling;
//!
//! let g = generators::grid(4, 4);
//! let nested = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
//! let flat = FlatLabeling::from_labeling(&nested);
//! assert_eq!(flat.query(0, 15), nested.query(0, 15));
//! assert_eq!(flat.to_labeling(), nested);
//! ```

use hl_graph::{Distance, NodeId};

use crate::label::{merge_join, merge_join_with_witness, HubLabel, HubLabeling, LabelingView};

/// Why a triple of raw arrays was rejected by
/// [`FlatLabeling::from_raw_parts`].
///
/// Every variant names the structural invariant that failed, so callers
/// deserializing untrusted bytes (the HLBS v2 store reader) can surface a
/// precise corruption message instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatLayoutError {
    /// `offsets` was empty; even a zero-vertex arena stores `[0]`.
    EmptyOffsets,
    /// `offsets[0]` was not zero.
    FirstOffsetNonZero(u64),
    /// `offsets` decreased between two consecutive vertices.
    NonMonotoneOffsets {
        /// The vertex whose span start exceeds its span end.
        vertex: usize,
    },
    /// The final offset disagrees with the entry-array length.
    FinalOffsetMismatch {
        /// `offsets[n]`.
        final_offset: u64,
        /// `hubs.len()` (== `dists.len()`).
        entries: usize,
    },
    /// `hubs` and `dists` differ in length.
    UnparallelArrays {
        /// `hubs.len()`.
        hubs: usize,
        /// `dists.len()`.
        dists: usize,
    },
    /// A vertex's hub run was not strictly increasing.
    UnsortedHubs {
        /// The offending vertex.
        vertex: usize,
    },
    /// A hub id was `>= num_nodes`.
    HubOutOfRange {
        /// The vertex whose label holds the hub.
        vertex: usize,
        /// The out-of-range hub id.
        hub: NodeId,
    },
}

impl std::fmt::Display for FlatLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlatLayoutError::EmptyOffsets => write!(f, "offset array is empty"),
            FlatLayoutError::FirstOffsetNonZero(o) => {
                write!(f, "first offset is {o}, expected 0")
            }
            FlatLayoutError::NonMonotoneOffsets { vertex } => {
                write!(f, "offsets decrease at vertex {vertex}")
            }
            FlatLayoutError::FinalOffsetMismatch {
                final_offset,
                entries,
            } => write!(
                f,
                "final offset {final_offset} disagrees with {entries} entries"
            ),
            FlatLayoutError::UnparallelArrays { hubs, dists } => {
                write!(f, "{hubs} hubs but {dists} distances")
            }
            FlatLayoutError::UnsortedHubs { vertex } => {
                write!(f, "hubs of vertex {vertex} are not strictly increasing")
            }
            FlatLayoutError::HubOutOfRange { vertex, hub } => {
                write!(f, "vertex {vertex} lists out-of-range hub {hub}")
            }
        }
    }
}

impl std::error::Error for FlatLayoutError {}

/// A complete hub labeling in a single CSR arena: three flat arrays
/// instead of two heap vectors per vertex. Immutable once built — grow it
/// with [`FlatLabeling::push_label`] (vertices append in id order), or
/// convert from a finished [`HubLabeling`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatLabeling {
    /// `num_nodes + 1` entry offsets; vertex `v` owns `offsets[v]..offsets[v+1]`.
    offsets: Vec<u64>,
    /// All hub ids, per-vertex runs sorted by hub id.
    hubs: Vec<NodeId>,
    /// All distances, aligned with `hubs`.
    dists: Vec<Distance>,
}

impl Default for FlatLabeling {
    fn default() -> Self {
        FlatLabeling::new()
    }
}

impl FlatLabeling {
    /// An empty arena with zero vertices; grow it with
    /// [`FlatLabeling::push_label`].
    pub fn new() -> Self {
        FlatLabeling {
            offsets: vec![0],
            hubs: Vec::new(),
            dists: Vec::new(),
        }
    }

    /// An empty arena with room for `nodes` vertices and `entries` total
    /// hubs, so a decode loop never reallocates.
    pub fn with_capacity(nodes: usize, entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0);
        FlatLabeling {
            offsets,
            hubs: Vec::with_capacity(entries),
            dists: Vec::with_capacity(entries),
        }
    }

    /// Appends the label of the next vertex (vertex ids are assigned in
    /// call order). `hubs` must be strictly increasing (checked in debug
    /// builds) and the slices equally long.
    ///
    /// # Panics
    ///
    /// Panics if `hubs` and `dists` differ in length.
    pub fn push_label(&mut self, hubs: &[NodeId], dists: &[Distance]) {
        assert_eq!(
            hubs.len(),
            dists.len(),
            "hub and distance slices must be parallel"
        );
        debug_assert!(hubs.windows(2).all(|w| w[0] < w[1]));
        self.hubs.extend_from_slice(hubs);
        self.dists.extend_from_slice(dists);
        self.offsets.push(self.hubs.len() as u64);
    }

    /// Assembles an arena directly from its three raw arrays, validating
    /// every structural invariant the accessors and the merge-join rely
    /// on: `offsets` starts at 0, never decreases, and ends at the entry
    /// count; `hubs` and `dists` are parallel; each vertex's hub run is
    /// strictly increasing with every hub id `< num_nodes`.
    ///
    /// This is the trust boundary for deserializers (the HLBS v2 store
    /// body *is* these three arrays): a malformed triple comes back as a
    /// typed [`FlatLayoutError`], never a panic in a later accessor.
    pub fn from_raw_parts(
        offsets: Vec<u64>,
        hubs: Vec<NodeId>,
        dists: Vec<Distance>,
    ) -> Result<Self, FlatLayoutError> {
        if offsets.is_empty() {
            return Err(FlatLayoutError::EmptyOffsets);
        }
        if offsets[0] != 0 {
            return Err(FlatLayoutError::FirstOffsetNonZero(offsets[0]));
        }
        if hubs.len() != dists.len() {
            return Err(FlatLayoutError::UnparallelArrays {
                hubs: hubs.len(),
                dists: dists.len(),
            });
        }
        let num_nodes = offsets.len() - 1;
        if offsets[num_nodes] != hubs.len() as u64 {
            return Err(FlatLayoutError::FinalOffsetMismatch {
                final_offset: offsets[num_nodes],
                entries: hubs.len(),
            });
        }
        // Full monotonicity pass *before* any slicing: only the complete
        // chain (together with offsets[0] == 0 and the final-offset check)
        // bounds every intermediate offset by the entry count — a single
        // huge offsets[v] would otherwise slice out of range below.
        for v in 0..num_nodes {
            if offsets[v] > offsets[v + 1] {
                return Err(FlatLayoutError::NonMonotoneOffsets { vertex: v });
            }
        }
        for v in 0..num_nodes {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            let run = &hubs[lo as usize..hi as usize];
            // Branch-free accumulation instead of an early-exit scan:
            // `fold` with `&` lets the comparison loop vectorize, and on
            // a hundred-million-entry arena (every v2 store load takes
            // this path) that is the difference between a memory-speed
            // pass and a per-element branch chain. Errors stay per-run
            // precise because the fold is per vertex.
            let sorted = run
                .iter()
                .zip(run.iter().skip(1))
                .fold(true, |ok, (a, b)| ok & (a < b));
            if !sorted {
                return Err(FlatLayoutError::UnsortedHubs { vertex: v });
            }
            if let Some(&last) = run.last() {
                // Runs are strictly increasing, so checking the largest
                // hub covers the whole run.
                if last as usize >= num_nodes {
                    return Err(FlatLayoutError::HubOutOfRange {
                        vertex: v,
                        hub: last,
                    });
                }
            }
        }
        Ok(FlatLabeling {
            offsets,
            hubs,
            dists,
        })
    }

    /// The raw offset array: `num_nodes + 1` entries, vertex `v` owns
    /// `offsets[v]..offsets[v+1]` of [`FlatLabeling::raw_hubs`].
    pub fn raw_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw hub-id array, all per-vertex runs back to back.
    pub fn raw_hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// The raw distance array, aligned with [`FlatLabeling::raw_hubs`].
    pub fn raw_dists(&self) -> &[Distance] {
        &self.dists
    }

    /// Flattens a nested labeling into one arena (lossless).
    pub fn from_labeling(labeling: &HubLabeling) -> Self {
        let mut flat = FlatLabeling::with_capacity(labeling.num_nodes(), labeling.total_hubs());
        for label in labeling.iter() {
            flat.push_label(label.hubs(), label.distances());
        }
        flat
    }

    /// Expands the arena back into per-vertex labels (lossless; exact
    /// inverse of [`FlatLabeling::from_labeling`]).
    pub fn to_labeling(&self) -> HubLabeling {
        (0..self.num_nodes() as NodeId)
            .map(|v| {
                self.hubs_of(v)
                    .iter()
                    .copied()
                    .zip(self.dists_of(v).iter().copied())
                    .collect::<HubLabel>()
            })
            .collect()
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of `(hub, distance)` entries in the arena, `Σ_v |S_v|`.
    pub fn num_entries(&self) -> usize {
        self.hubs.len()
    }

    fn span(&self, v: NodeId) -> std::ops::Range<usize> {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        lo..hi
    }

    /// The sorted hub ids of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn hubs_of(&self, v: NodeId) -> &[NodeId] {
        &self.hubs[self.span(v)]
    }

    /// The distances of vertex `v`, aligned with [`FlatLabeling::hubs_of`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn dists_of(&self, v: NodeId) -> &[Distance] {
        &self.dists[self.span(v)]
    }

    /// Iterates over vertex `v`'s `(hub, distance)` pairs in increasing
    /// hub order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn pairs_of(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Distance)> + '_ {
        let span = self.span(v);
        self.hubs[span.clone()]
            .iter()
            .copied()
            .zip(self.dists[span].iter().copied())
    }

    /// Answers the distance query `u, v` via the merge-join of the two
    /// label slices. Returns [`hl_graph::INFINITY`] when the labels share
    /// no hub.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn query(&self, u: NodeId, v: NodeId) -> Distance {
        merge_join(
            self.hubs_of(u),
            self.dists_of(u),
            self.hubs_of(v),
            self.dists_of(v),
        )
    }

    /// Like [`FlatLabeling::query`] but also reports the hub realizing
    /// the minimum.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn query_with_witness(&self, u: NodeId, v: NodeId) -> Option<(Distance, NodeId)> {
        merge_join_with_witness(
            self.hubs_of(u),
            self.dists_of(u),
            self.hubs_of(v),
            self.dists_of(v),
        )
    }

    /// Total number of hubs over all vertices (same as
    /// [`FlatLabeling::num_entries`]; named for parity with
    /// [`HubLabeling::total_hubs`]).
    pub fn total_hubs(&self) -> usize {
        self.num_entries()
    }

    /// Average hubs per vertex, `Σ_v |S_v| / n`.
    pub fn average_hubs(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.num_entries() as f64 / self.num_nodes() as f64
    }

    /// Largest label size.
    pub fn max_hubs(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.span(v as NodeId).len())
            .max()
            .unwrap_or(0)
    }

    /// Heap footprint of the three arena arrays, in bytes — the same
    /// accounting as [`hl_graph::Graph::memory_bytes`] for the adjacency
    /// CSR, so store-size claims are comparable across both structures.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.hubs.len() * std::mem::size_of::<NodeId>()
            + self.dists.len() * std::mem::size_of::<Distance>()
    }
}

impl LabelingView for FlatLabeling {
    fn num_nodes(&self) -> usize {
        FlatLabeling::num_nodes(self)
    }

    fn hubs_of(&self, v: NodeId) -> &[NodeId] {
        FlatLabeling::hubs_of(self, v)
    }

    fn dists_of(&self, v: NodeId) -> &[Distance] {
        FlatLabeling::dists_of(self, v)
    }
}

impl From<&HubLabeling> for FlatLabeling {
    fn from(labeling: &HubLabeling) -> Self {
        FlatLabeling::from_labeling(labeling)
    }
}

impl From<HubLabeling> for FlatLabeling {
    fn from(labeling: HubLabeling) -> Self {
        FlatLabeling::from_labeling(&labeling)
    }
}

impl From<&FlatLabeling> for HubLabeling {
    fn from(flat: &FlatLabeling) -> Self {
        flat.to_labeling()
    }
}

impl From<FlatLabeling> for HubLabeling {
    fn from(flat: FlatLabeling) -> Self {
        flat.to_labeling()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::INFINITY;

    fn sample_nested() -> HubLabeling {
        let mut hl = HubLabeling::empty(4);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (2, 3)]);
        *hl.label_mut(1) = HubLabel::from_pairs(vec![(1, 0)]);
        // vertex 2 keeps an empty label on purpose
        *hl.label_mut(3) = HubLabel::from_pairs(vec![(2, 1), (3, 0)]);
        hl
    }

    #[test]
    fn roundtrip_is_lossless() {
        let nested = sample_nested();
        let flat = FlatLabeling::from_labeling(&nested);
        assert_eq!(flat.to_labeling(), nested);
        assert_eq!(HubLabeling::from(&flat), nested);
        assert_eq!(FlatLabeling::from(nested.clone()), flat);
    }

    #[test]
    fn queries_match_nested() {
        let nested = sample_nested();
        let flat = FlatLabeling::from_labeling(&nested);
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(flat.query(u, v), nested.query(u, v), "d({u},{v})");
                assert_eq!(
                    flat.query_with_witness(u, v),
                    nested.query_with_witness(u, v)
                );
            }
        }
        assert_eq!(flat.query(0, 3), 4); // via shared hub 2
        assert_eq!(flat.query(1, 3), INFINITY);
    }

    #[test]
    fn accessors_and_stats() {
        let nested = sample_nested();
        let flat = FlatLabeling::from_labeling(&nested);
        assert_eq!(flat.num_nodes(), 4);
        assert_eq!(flat.num_entries(), 5);
        assert_eq!(flat.total_hubs(), nested.total_hubs());
        assert_eq!(flat.max_hubs(), nested.max_hubs());
        assert!((flat.average_hubs() - nested.average_hubs()).abs() < 1e-12);
        assert_eq!(flat.hubs_of(0), &[0, 2]);
        assert_eq!(flat.dists_of(0), &[0, 3]);
        assert!(flat.hubs_of(2).is_empty());
        assert_eq!(flat.pairs_of(3).collect::<Vec<_>>(), vec![(2, 1), (3, 0)]);
    }

    #[test]
    fn push_label_builds_incrementally() {
        let mut flat = FlatLabeling::with_capacity(3, 4);
        flat.push_label(&[0, 1], &[0, 2]);
        flat.push_label(&[], &[]);
        flat.push_label(&[1], &[0]);
        assert_eq!(flat.num_nodes(), 3);
        assert_eq!(flat.num_entries(), 3);
        assert_eq!(flat.query(0, 2), 2);
        assert_eq!(flat, FlatLabeling::from_labeling(&flat.to_labeling()));
    }

    #[test]
    #[should_panic]
    fn push_label_rejects_mismatched_slices() {
        let mut flat = FlatLabeling::new();
        flat.push_label(&[0, 1], &[0]);
    }

    #[test]
    fn heap_bytes_beats_nested_per_vertex_overhead() {
        let nested = sample_nested();
        let flat = FlatLabeling::from_labeling(&nested);
        let payload =
            flat.num_entries() * (std::mem::size_of::<NodeId>() + std::mem::size_of::<Distance>());
        let offsets = (flat.num_nodes() + 1) * std::mem::size_of::<u64>();
        assert_eq!(flat.heap_bytes(), payload + offsets);
        // The arena trades 2 Vec headers (48 B) per vertex for one u64
        // offset; it must never be larger than the nested form.
        assert!(flat.heap_bytes() <= nested.heap_bytes());
    }

    #[test]
    fn empty_and_default() {
        let flat = FlatLabeling::default();
        assert_eq!(flat.num_nodes(), 0);
        assert_eq!(flat.num_entries(), 0);
        assert_eq!(flat.heap_bytes(), std::mem::size_of::<u64>());
        assert_eq!(flat.to_labeling().num_nodes(), 0);
        assert_eq!(flat.max_hubs(), 0);
        assert_eq!(flat.average_hubs(), 0.0);
    }

    #[test]
    fn from_raw_parts_accepts_valid_arena() {
        let nested = sample_nested();
        let flat = FlatLabeling::from_labeling(&nested);
        let rebuilt = FlatLabeling::from_raw_parts(
            flat.raw_offsets().to_vec(),
            flat.raw_hubs().to_vec(),
            flat.raw_dists().to_vec(),
        )
        .expect("valid arena");
        assert_eq!(rebuilt, flat);
        // The zero-vertex arena is valid too.
        let empty = FlatLabeling::from_raw_parts(vec![0], vec![], vec![]).expect("empty arena");
        assert_eq!(empty.num_nodes(), 0);
    }

    #[test]
    fn from_raw_parts_rejects_malformed_arenas() {
        use FlatLayoutError as E;
        let err = |o: Vec<u64>, h: Vec<NodeId>, d: Vec<Distance>| {
            FlatLabeling::from_raw_parts(o, h, d).expect_err("must reject")
        };
        assert_eq!(err(vec![], vec![], vec![]), E::EmptyOffsets);
        assert_eq!(err(vec![1, 1], vec![0], vec![0]), E::FirstOffsetNonZero(1));
        assert_eq!(
            err(vec![0, 1], vec![0, 1], vec![0]),
            E::UnparallelArrays { hubs: 2, dists: 1 }
        );
        assert_eq!(
            err(vec![0, 2], vec![0], vec![0]),
            E::FinalOffsetMismatch {
                final_offset: 2,
                entries: 1
            }
        );
        assert_eq!(
            err(vec![0, 2, 1, 3], vec![0, 1, 2], vec![0, 0, 0]),
            E::NonMonotoneOffsets { vertex: 1 }
        );
        assert_eq!(
            err(vec![0, 2], vec![1, 1], vec![0, 0]),
            E::UnsortedHubs { vertex: 0 }
        );
        assert_eq!(
            err(vec![0, 1, 2], vec![0, 7], vec![0, 0]),
            E::HubOutOfRange { vertex: 1, hub: 7 }
        );
        // Errors render without panicking.
        assert!(!format!("{}", E::EmptyOffsets).is_empty());
    }

    #[test]
    fn view_trait_dispatch() {
        let nested = sample_nested();
        let flat = FlatLabeling::from_labeling(&nested);
        fn total<L: LabelingView>(l: &L) -> usize {
            l.total_hubs()
        }
        assert_eq!(total(&flat), total(&nested));
    }
}
