//! The random-threshold hub labeling for sparse graphs, in the style of
//! Alstrup–Dahlgaard–Knudsen–Porat (ESA 2016) as summarized in Section 1.1
//! of the paper:
//!
//! * pick a distance threshold `D`;
//! * choose a random global hubset `S` of size `≈ (n/D)·ln D`, shared by
//!   every vertex — it covers (with high probability) all pairs at distance
//!   `≥ D`;
//! * store all vertices at distance `< D` explicitly as near-hubs;
//! * patch the few far pairs the random set missed with direct fallback
//!   hubs (keeping the construction unconditionally exact).
//!
//! With `D = Θ(log n)` this yields the `O(n/log n · log log n)` average hub
//! size the paper quotes as the state-of-the-art upper bound for sparse
//! graphs before Theorem 1.4.

use hl_graph::apsp::DistanceMatrix;
use hl_graph::{Distance, Graph, GraphError, NodeId, INFINITY};

use crate::label::{HubLabel, HubLabeling};

/// Parameters of the random-threshold construction.
#[derive(Debug, Clone, Copy)]
pub struct RandomThresholdParams {
    /// The near/far threshold `D` (must be `>= 1`).
    pub threshold: Distance,
    /// RNG seed for the global hubset.
    pub seed: u64,
}

impl RandomThresholdParams {
    /// The paper's default choice `D = max(2, ln n)` for an `n`-vertex graph.
    pub fn for_size(n: usize, seed: u64) -> Self {
        let d = ((n.max(2) as f64).ln().ceil() as u64).max(2);
        RandomThresholdParams { threshold: d, seed }
    }
}

/// Size breakdown of a [`random_threshold_labeling`] run, for the
/// experiment tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomThresholdBreakdown {
    /// Size of the shared far-hub set `S`.
    pub global_hubs: usize,
    /// `Σ_v` explicit near hubs (distance `< D`).
    pub near_hubs: usize,
    /// Number of far pairs the random set missed (patched directly).
    pub fallback_pairs: usize,
}

/// Builds the labeling; returns it with the size breakdown.
///
/// # Errors
///
/// Propagates [`GraphError`] from the APSP computation, or reports invalid
/// parameters when `threshold == 0`.
pub fn random_threshold_labeling(
    g: &Graph,
    params: RandomThresholdParams,
) -> Result<(HubLabeling, RandomThresholdBreakdown), GraphError> {
    if params.threshold == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "threshold D must be >= 1".into(),
        });
    }
    let n = g.num_nodes();
    let d_thr = params.threshold;
    let m = DistanceMatrix::compute(g)?;

    // Global random hubset S of size ceil((n / D) * ln D), at least 1.
    let mut rng = hl_graph::rng::Xorshift64::seed_from_u64(params.seed);
    let target = ((n as f64 / d_thr as f64) * (d_thr as f64).ln()).ceil() as usize;
    let target = target.clamp(1, n);
    let mut all: Vec<NodeId> = (0..n as NodeId).collect();
    rng.shuffle(&mut all);
    let mut global: Vec<NodeId> = all.into_iter().take(target).collect();
    global.sort_unstable();

    let mut breakdown = RandomThresholdBreakdown {
        global_hubs: global.len(),
        ..RandomThresholdBreakdown::default()
    };

    let mut pairs: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
    for u in 0..n as NodeId {
        // Shared far hubs.
        for &h in &global {
            let d = m.distance(u, h);
            if d != INFINITY {
                pairs[u as usize].push((h, d));
            }
        }
        // Explicit near ball, including the vertex itself.
        for v in 0..n as NodeId {
            let d = m.distance(u, v);
            if d != INFINITY && d < d_thr {
                pairs[u as usize].push((v, d));
                breakdown.near_hubs += 1;
            }
        }
    }

    // Patch far pairs not covered by S: for d(u, v) >= D, check whether some
    // h in S lies on a shortest path; otherwise store v directly in S_u
    // (v's self-hub completes the pair).
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            let duv = m.distance(u, v);
            if duv == INFINITY || duv < d_thr {
                continue;
            }
            let covered = global.iter().any(|&h| {
                let a = m.distance(u, h);
                let b = m.distance(h, v);
                a != INFINITY && b != INFINITY && a + b == duv
            });
            if !covered {
                pairs[u as usize].push((v, duv));
                breakdown.fallback_pairs += 1;
            }
        }
    }

    let labeling = HubLabeling::from_labels(pairs.into_iter().map(HubLabel::from_pairs).collect());
    Ok((labeling, breakdown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact;
    use hl_graph::generators;

    #[test]
    fn exact_on_sparse_random_graph() {
        let g = generators::connected_gnm(80, 40, 3);
        let params = RandomThresholdParams::for_size(80, 1);
        let (hl, _) = random_threshold_labeling(&g, params).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_long_path() {
        // Far pairs dominate on a path; fallback patching must keep it exact.
        let g = generators::path(100);
        let (hl, bd) = random_threshold_labeling(
            &g,
            RandomThresholdParams {
                threshold: 5,
                seed: 2,
            },
        )
        .unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
        assert!(bd.global_hubs >= 1);
    }

    #[test]
    fn exact_on_tree_and_cycle() {
        for g in [generators::random_tree(70, 9), generators::cycle(60)] {
            let params = RandomThresholdParams::for_size(g.num_nodes(), 7);
            let (hl, _) = random_threshold_labeling(&g, params).unwrap();
            assert!(verify_exact(&g, &hl).unwrap().is_exact());
        }
    }

    #[test]
    fn threshold_one_is_all_far() {
        // D = 1: near hubs are only the vertices themselves (d < 1).
        let g = generators::path(20);
        let (hl, bd) = random_threshold_labeling(
            &g,
            RandomThresholdParams {
                threshold: 1,
                seed: 5,
            },
        )
        .unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
        assert_eq!(bd.near_hubs, 20, "only self-hubs are near at D = 1");
    }

    #[test]
    fn rejects_zero_threshold() {
        let g = generators::path(3);
        assert!(random_threshold_labeling(
            &g,
            RandomThresholdParams {
                threshold: 0,
                seed: 0
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_by_seed() {
        let g = generators::connected_gnm(40, 20, 11);
        let p = RandomThresholdParams {
            threshold: 4,
            seed: 42,
        };
        let (a, _) = random_threshold_labeling(&g, p).unwrap();
        let (b, _) = random_threshold_labeling(&g, p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn larger_threshold_fewer_global_hubs() {
        let g = generators::connected_gnm(100, 50, 13);
        let (_, bd_small) = random_threshold_labeling(
            &g,
            RandomThresholdParams {
                threshold: 2,
                seed: 1,
            },
        )
        .unwrap();
        let (_, bd_large) = random_threshold_labeling(
            &g,
            RandomThresholdParams {
                threshold: 16,
                seed: 1,
            },
        )
        .unwrap();
        assert!(bd_large.global_hubs < bd_small.global_hubs);
    }

    #[test]
    fn default_params_scale() {
        let p = RandomThresholdParams::for_size(1000, 0);
        assert!(p.threshold >= 6 && p.threshold <= 8, "ln(1000) ≈ 6.9");
    }
}
