//! The hub-labeling construction of **Theorem 4.1** (Kosowski–Uznański–
//! Viennot, PODC 2019), which bounds average hubset size on bounded-degree
//! graphs by `O(n / RS(n)^{1/c})` through the structure of induced
//! matchings, and its extension to constant *average* degree
//! (**Theorem 1.4**) via the degree-reduction transform.
//!
//! The algorithm, faithfully following the proof:
//!
//! 1. For every pair `u, v` let `H_uv = { x : d(u,x) + d(x,v) = d(u,v) }`
//!    be its *valid hubs*.
//! 2. Pick a random set `S` of size `(n/D)·ln D`; with probability
//!    `≥ 1 − 1/D` it hits `H_uv` for each pair with `|H_uv| ≥ D`. Pairs it
//!    misses go to fallback sets `Q_u` (storing the partner directly).
//! 3. Color vertices uniformly with `D³` colors. Pairs with `|H_uv| ≤ D`
//!    whose hub set suffered a color collision go to fallback sets `R_u`.
//! 4. For every `(a, b)` with `1 ≤ a+b ≤ D` and every vertex `h`, form the
//!    bipartite graph `E^h_{a,b}` of properly-colored pairs `(u, v)` with
//!    `h ∈ H_uv`, `d(u,h) = a`, `d(h,v) = b`; take a maximal matching and
//!    use its endpoints as a vertex cover; covered endpoints add `h` to
//!    their set `F`. (The proof shows the union of the matchings per color
//!    class is an *induced matching* partition of a Ruzsa–Szemerédi graph,
//!    which is what bounds `Σ|F_v|` by `O(D⁵ n²/RS(n))`.)
//! 5. Final hubsets: `H_v = {v} ∪ S ∪ Q_v ∪ R_v ∪ N(F_v)` where `N` is the
//!    closed neighborhood.
//!
//! Exactness is unconditional: randomness only affects *sizes* (through the
//! fallback sets), never correctness. The module reports the full size
//! breakdown so experiments can chart each term of the bound
//! `n|S| + n²/D + n²/D + D⁵·n²/RS(n)`.

use std::collections::HashMap;

use hl_graph::apsp::DistanceMatrix;
use hl_graph::{Distance, Graph, GraphError, NodeId, INFINITY};

use crate::label::{HubLabel, HubLabeling};

/// Parameters for the Theorem 4.1 construction.
#[derive(Debug, Clone, Copy)]
pub struct RsParams {
    /// The hub-multiplicity threshold `D` (the proof sets
    /// `D = RS(n)^{1/6}`; in practice small constants 2–6 work well at
    /// feasible sizes).
    pub threshold: u64,
    /// RNG seed (drives both the random set `S` and the coloring).
    pub seed: u64,
}

impl RsParams {
    /// Default parameters: `D = max(2, ⌈n^{1/6}⌉)`, mirroring the proof's
    /// `D = RS(n)^{1/6}` with the Behrend-side reading `RS(n) ≈ n^{o(1)}`
    /// replaced by a concrete mild growth.
    pub fn for_size(n: usize, seed: u64) -> Self {
        let d = ((n.max(2) as f64).powf(1.0 / 6.0).ceil() as u64).max(2);
        RsParams { threshold: d, seed }
    }
}

/// Size breakdown of the construction, matching the proof's accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct RsBreakdown {
    /// `|S|` — the shared random hub set.
    pub global_hubs: usize,
    /// `Σ_v |Q_v|` — far pairs the random set missed.
    pub fallback_q: usize,
    /// `Σ_v |R_v|` — pairs whose hub set had a color collision.
    pub fallback_r: usize,
    /// `Σ_v |F_v|` — matching-cover hubs before taking neighborhoods.
    pub cover_f: usize,
    /// Number of `(a, b, h)` buckets that were non-empty.
    pub buckets: usize,
    /// Number of pairs handled by the matching machinery (case 3).
    pub matched_pairs: usize,
}

/// Runs the Theorem 4.1 construction on `g`.
///
/// Intended for unweighted graphs and graphs with `{0, 1}` weights (the
/// degree-reduced form); the proof's case analysis relies on
/// `d(u, v) > D ⇒ |H_uv| > D`, which holds in both.
///
/// # Example
///
/// ```
/// use hl_graph::generators;
/// use hl_core::rs_based::{rs_labeling, RsParams};
/// use hl_core::cover::verify_exact;
///
/// # fn main() -> Result<(), hl_graph::GraphError> {
/// let g = generators::union_of_matchings(40, 3, 1);
/// let (labeling, breakdown) = rs_labeling(&g, RsParams { threshold: 3, seed: 7 })?;
/// assert!(verify_exact(&g, &labeling)?.is_exact());
/// assert!(breakdown.global_hubs > 0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates [`GraphError`] from APSP, or reports invalid parameters when
/// `threshold == 0` or the graph has an edge weight `> 1` (use
/// [`hl_graph::transform::subdivide_weights`] first).
pub fn rs_labeling(g: &Graph, params: RsParams) -> Result<(HubLabeling, RsBreakdown), GraphError> {
    if params.threshold == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "threshold D must be >= 1".into(),
        });
    }
    if g.edges().any(|(_, _, w)| w > 1) {
        return Err(GraphError::InvalidParameters {
            reason: "rs_labeling requires {0,1} edge weights; subdivide first".into(),
        });
    }
    let n = g.num_nodes();
    let d_thr = params.threshold;
    let m = DistanceMatrix::compute(g)?;
    let mut rng = hl_graph::rng::Xorshift64::seed_from_u64(params.seed);

    // Step 2: random global set S.
    let target = ((n as f64 / d_thr as f64) * (d_thr as f64).ln().max(1.0)).ceil() as usize;
    let target = target.clamp(1, n);
    let mut all: Vec<NodeId> = (0..n as NodeId).collect();
    rng.shuffle(&mut all);
    let mut global: Vec<NodeId> = all.into_iter().take(target).collect();
    global.sort_unstable();

    // Step 3: coloring with D^3 colors.
    let num_colors = d_thr.saturating_mul(d_thr).saturating_mul(d_thr).max(1);
    let colors: Vec<u64> = (0..n).map(|_| rng.gen_u64_below(num_colors)).collect();

    let mut breakdown = RsBreakdown {
        global_hubs: global.len(),
        ..RsBreakdown::default()
    };
    let mut extra: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
    let mut f_sets: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    // Buckets (a, b, h) -> pair list for the matching stage.
    let mut buckets: HashMap<(u32, u32, NodeId), Vec<(NodeId, NodeId)>> = HashMap::new();

    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            let duv = m.distance(u, v);
            if duv == INFINITY {
                continue;
            }
            if duv > d_thr {
                // |H_uv| >= d + 1 > D: case 1 (S or fallback Q).
                if !hit_by_global(&m, &global, u, v, duv) {
                    extra[u as usize].push((v, duv));
                    breakdown.fallback_q += 1;
                }
                continue;
            }
            // Near pair: compute H_uv explicitly.
            let hubs = hl_graph::apsp::valid_hubs(&m, u, v);
            if hubs.len() as u64 >= d_thr {
                // Case 1 again, via S.
                if !hit_by_global(&m, &global, u, v, duv) {
                    extra[u as usize].push((v, duv));
                    breakdown.fallback_q += 1;
                }
                continue;
            }
            // Case 2: color collision inside H_uv -> fallback R.
            if has_color_collision(&hubs, &colors) {
                extra[u as usize].push((v, duv));
                breakdown.fallback_r += 1;
                continue;
            }
            // Distance-0 pairs of *distinct* vertices (possible with
            // weight-0 edges after degree reduction) fall outside the
            // bucket machinery (a + b >= 1); store the partner directly.
            if duv == 0 {
                extra[u as usize].push((v, 0));
                breakdown.fallback_q += 1;
                continue;
            }
            // Case 3: route each valid hub through its (a, b, h) bucket.
            breakdown.matched_pairs += 1;
            for &h in &hubs {
                let a = m.distance(u, h);
                let b = m.distance(h, v);
                debug_assert!(a + b == duv && a + b >= 1 && a + b <= d_thr);
                buckets
                    .entry((a as u32, b as u32, h))
                    .or_default()
                    .push((u, v));
            }
        }
    }

    // Step 4: per-bucket maximal matching; matched endpoints take h into F.
    breakdown.buckets = buckets.len();
    let mut bucket_keys: Vec<_> = buckets.keys().copied().collect();
    bucket_keys.sort_unstable(); // determinism independent of hash order
    let mut used_left = vec![false; n];
    let mut used_right = vec![false; n];
    for key in bucket_keys {
        let pairs = &buckets[&key];
        let h = key.2;
        let mut touched: Vec<NodeId> = Vec::new();
        for &(u, v) in pairs {
            if !used_left[u as usize] && !used_right[v as usize] {
                used_left[u as usize] = true;
                used_right[v as usize] = true;
                touched.push(u);
                touched.push(v);
                f_sets[u as usize].push(h);
                f_sets[v as usize].push(h);
            }
        }
        for t in touched {
            used_left[t as usize] = false;
            used_right[t as usize] = false;
        }
    }

    // Step 5: assemble H_v = {v} ∪ S ∪ Q_v ∪ R_v ∪ N(F_v).
    let mut labels: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
    for v in 0..n as NodeId {
        let lv = &mut labels[v as usize];
        lv.push((v, 0));
        for &h in &global {
            let d = m.distance(v, h);
            if d != INFINITY {
                lv.push((h, d));
            }
        }
        for &(h, d) in &extra[v as usize] {
            lv.push((h, d));
        }
        // v itself always participates in F_v (the proof's "w.l.o.g.
        // u ∈ F_u") so the induction along the shortest path can start.
        f_sets[v as usize].push(v);
        breakdown.cover_f += f_sets[v as usize].len();
        for &h in &f_sets[v as usize] {
            // Closed neighborhood N(h).
            let dh = m.distance(v, h);
            if dh != INFINITY {
                lv.push((h, dh));
            }
            for (y, _) in g.neighbors(h) {
                let dy = m.distance(v, y);
                if dy != INFINITY {
                    lv.push((y, dy));
                }
            }
        }
    }
    // Fallback hubs (v stored in S_u) rely on the partner's self-hub, which
    // is present for every vertex.
    let labeling = HubLabeling::from_labels(labels.into_iter().map(HubLabel::from_pairs).collect());
    Ok((labeling, breakdown))
}

fn hit_by_global(
    m: &DistanceMatrix,
    global: &[NodeId],
    u: NodeId,
    v: NodeId,
    duv: Distance,
) -> bool {
    global.iter().any(|&h| {
        let a = m.distance(u, h);
        let b = m.distance(h, v);
        a != INFINITY && b != INFINITY && a + b == duv
    })
}

fn has_color_collision(hubs: &[NodeId], colors: &[u64]) -> bool {
    // |hubs| <= D is small; quadratic check is cheapest.
    for (i, &x) in hubs.iter().enumerate() {
        for &y in &hubs[i + 1..] {
            if colors[x as usize] == colors[y as usize] {
                return true;
            }
        }
    }
    false
}

/// Projects a labeling of a transformed graph back to the original vertex
/// set: the hubset of `v` becomes `{ origin(h) : h ∈ S'_{rep(v)} }` with
/// unchanged distances, completing the Theorem 1.4 pipeline
/// (degree-reduce → label → project).
///
/// `representative[v]` maps original → transformed,
/// `origin[x]` maps transformed → original. Distances are preserved by the
/// weight-0 chains, and a hub on a shortest path projects to a vertex on
/// the corresponding original path, so the projection remains an exact
/// cover.
pub fn project_labeling(
    labeling: &HubLabeling,
    representative: &[NodeId],
    origin: &[NodeId],
) -> HubLabeling {
    let labels = representative
        .iter()
        .map(|&rep| {
            HubLabel::from_pairs(
                labeling
                    .label(rep)
                    .iter()
                    .map(|(h, d)| (origin[h as usize], d))
                    .collect(),
            )
        })
        .collect();
    HubLabeling::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact;
    use hl_graph::generators;
    use hl_graph::transform::reduce_degree;

    #[test]
    fn exact_on_grid() {
        let g = generators::grid(6, 6);
        let (hl, bd) = rs_labeling(
            &g,
            RsParams {
                threshold: 3,
                seed: 1,
            },
        )
        .unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
        assert!(bd.global_hubs > 0);
    }

    #[test]
    fn exact_on_bounded_degree_random_graph() {
        let g = generators::union_of_matchings(60, 3, 4);
        let (hl, _) = rs_labeling(
            &g,
            RsParams {
                threshold: 3,
                seed: 2,
            },
        )
        .unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_tree_and_cycle_various_thresholds() {
        for d in [1u64, 2, 4, 8] {
            let g = generators::random_tree(50, 6);
            let (hl, _) = rs_labeling(
                &g,
                RsParams {
                    threshold: d,
                    seed: d,
                },
            )
            .unwrap();
            assert!(verify_exact(&g, &hl).unwrap().is_exact(), "tree, D={d}");
            let c = generators::cycle(41);
            let (hl, _) = rs_labeling(
                &c,
                RsParams {
                    threshold: d,
                    seed: d,
                },
            )
            .unwrap();
            assert!(verify_exact(&c, &hl).unwrap().is_exact(), "cycle, D={d}");
        }
    }

    #[test]
    fn exact_on_disconnected() {
        let g = hl_graph::builder::graph_from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        let (hl, _) = rs_labeling(
            &g,
            RsParams {
                threshold: 2,
                seed: 3,
            },
        )
        .unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn rejects_weighted_graphs() {
        let g = generators::weighted_grid(3, 3, 1);
        assert!(rs_labeling(
            &g,
            RsParams {
                threshold: 2,
                seed: 0
            }
        )
        .is_err());
    }

    #[test]
    fn rejects_zero_threshold() {
        let g = generators::path(4);
        assert!(rs_labeling(
            &g,
            RsParams {
                threshold: 0,
                seed: 0
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_by_seed() {
        let g = generators::connected_gnm(40, 20, 9);
        let p = RsParams {
            threshold: 3,
            seed: 5,
        };
        assert_eq!(rs_labeling(&g, p).unwrap().0, rs_labeling(&g, p).unwrap().0);
    }

    #[test]
    fn breakdown_terms_reported() {
        let g = generators::connected_gnm(60, 30, 12);
        let (_, bd) = rs_labeling(
            &g,
            RsParams {
                threshold: 3,
                seed: 7,
            },
        )
        .unwrap();
        assert!(bd.buckets > 0);
        assert!(bd.matched_pairs > 0);
        assert!(bd.cover_f >= 60, "every vertex contributes itself to F");
    }

    #[test]
    fn theorem_1_4_pipeline_skewed_degrees() {
        // Constant average degree but a huge hub: reduce, label, project.
        let g = generators::skewed_sparse(70, 40, 8);
        let red = reduce_degree(&g, 3).unwrap();
        let (hl_red, _) = rs_labeling(
            &red.graph,
            RsParams {
                threshold: 3,
                seed: 4,
            },
        )
        .unwrap();
        assert!(verify_exact(&red.graph, &hl_red).unwrap().is_exact());
        let hl = project_labeling(&hl_red, &red.representative, &red.origin);
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn default_params_reasonable() {
        let p = RsParams::for_size(64, 0);
        assert!(p.threshold >= 2);
    }
}
