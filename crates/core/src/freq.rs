//! Hub-frequency label reordering — a build/convert-time layout pass.
//!
//! In any hub labeling a handful of high-order hubs appear in almost
//! every label (in PLL the first vertices of the order are hubs of nearly
//! all of `V`), yet their ids are whatever the input graph assigned, so
//! the entries that every merge-join touches are scattered across each
//! sorted run. This pass renumbers hubs by **global frequency**: the hub
//! appearing in the most labels becomes id 0, the next id 1, and so on.
//! Because per-vertex runs are stored sorted by hub id, the hot hubs move
//! to the *front* of every label after the remap — the merge-join walks
//! them first, they pack into the same few cache lines across all labels,
//! and the delta gaps of [`crate::compact::CompactLabeling`] shrink.
//!
//! The remap is a bijection on vertex ids applied to the *hub* side of
//! every `(hub, distance)` pair; both endpoints of every query remap
//! consistently, so **all distance answers are preserved exactly**. What
//! changes is the meaning of witness ids ([`crate::label::merge_join_with_witness`]
//! reports remapped ids); callers that need original ids invert through
//! the returned permutation.
//!
//! # Example
//!
//! ```
//! use hl_graph::generators;
//! use hl_core::pll::PrunedLandmarkLabeling;
//! use hl_core::{freq, FlatLabeling};
//!
//! let g = generators::grid(4, 4);
//! let flat = FlatLabeling::from(PrunedLandmarkLabeling::by_degree(&g).into_labeling());
//! let (hot, rank) = freq::reorder_by_hub_frequency(&flat);
//! assert_eq!(hot.num_entries(), flat.num_entries());
//! for u in 0..16 {
//!     for v in 0..16 {
//!         assert_eq!(hot.query(u, v), flat.query(u, v));
//!     }
//! }
//! // The hottest hub now has id 0.
//! assert_eq!(freq::hub_frequencies(&hot)[0], *freq::hub_frequencies(&flat).iter().max().unwrap());
//! # let _ = rank;
//! ```

use hl_graph::NodeId;

use crate::flat::FlatLabeling;

/// How often each vertex id occurs as a hub across all labels:
/// `freqs[h]` = number of labels containing `h`.
pub fn hub_frequencies(flat: &FlatLabeling) -> Vec<u64> {
    let mut freqs = vec![0u64; flat.num_nodes()];
    for &h in flat.raw_hubs() {
        freqs[h as usize] += 1;
    }
    freqs
}

/// The frequency rank permutation: `rank[old_id] = new_id`, where the
/// most frequent hub gets new id 0. Ties break by old id, so the rank is
/// a bijection and deterministic.
pub fn frequency_rank(freqs: &[u64]) -> Vec<NodeId> {
    let mut by_freq: Vec<NodeId> = (0..freqs.len() as NodeId).collect();
    by_freq.sort_by_key(|&v| (std::cmp::Reverse(freqs[v as usize]), v));
    let mut rank = vec![0 as NodeId; freqs.len()];
    for (new_id, &old_id) in by_freq.iter().enumerate() {
        rank[old_id as usize] = new_id as NodeId;
    }
    rank
}

/// Applies a hub-id permutation (`rank[old_id] = new_id`) to every label
/// and re-sorts each run by the new ids, yielding an arena whose
/// per-vertex runs are sorted in the *new* id space — ready for the
/// merge-join, which only needs both runs sorted by the same key.
///
/// Distances are untouched; since every label remaps through the same
/// bijection, common hubs stay common and every query answer is
/// preserved.
///
/// # Panics
///
/// Panics if `rank.len() != flat.num_nodes()` or `rank` maps a hub out of
/// range; [`frequency_rank`] output is always valid.
pub fn remap_hub_ids(flat: &FlatLabeling, rank: &[NodeId]) -> FlatLabeling {
    assert_eq!(
        rank.len(),
        flat.num_nodes(),
        "rank permutation must cover every vertex id"
    );
    let mut out = FlatLabeling::with_capacity(flat.num_nodes(), flat.num_entries());
    let mut run: Vec<(NodeId, u64)> = Vec::new();
    let mut hubs: Vec<NodeId> = Vec::new();
    let mut dists: Vec<u64> = Vec::new();
    for v in 0..flat.num_nodes() as NodeId {
        run.clear();
        run.extend(flat.pairs_of(v).map(|(h, d)| (rank[h as usize], d)));
        run.sort_unstable_by_key(|&(h, _)| h);
        hubs.clear();
        dists.clear();
        hubs.extend(run.iter().map(|&(h, _)| h));
        dists.extend(run.iter().map(|&(_, d)| d));
        out.push_label(&hubs, &dists);
    }
    out
}

/// The full pass: count frequencies, rank, remap. Returns the reordered
/// arena and the permutation (`rank[old_id] = new_id`) so callers can
/// translate witness ids back.
pub fn reorder_by_hub_frequency(flat: &FlatLabeling) -> (FlatLabeling, Vec<NodeId>) {
    let rank = frequency_rank(&hub_frequencies(flat));
    (remap_hub_ids(flat, &rank), rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    fn sample_flat() -> FlatLabeling {
        let g = generators::connected_gnm(60, 90, 0xFEED);
        FlatLabeling::from(PrunedLandmarkLabeling::by_degree(&g).into_labeling())
    }

    #[test]
    fn rank_is_a_bijection_sorted_by_frequency() {
        let flat = sample_flat();
        let freqs = hub_frequencies(&flat);
        let rank = frequency_rank(&freqs);
        let mut seen = vec![false; rank.len()];
        for &r in &rank {
            assert!(!seen[r as usize], "rank repeats {r}");
            seen[r as usize] = true;
        }
        // New id order is non-increasing in frequency.
        let mut by_new = vec![0u64; rank.len()];
        for (old, &new) in rank.iter().enumerate() {
            by_new[new as usize] = freqs[old];
        }
        assert!(by_new.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn remap_preserves_every_query() {
        let flat = sample_flat();
        let (hot, rank) = reorder_by_hub_frequency(&flat);
        assert_eq!(hot.num_nodes(), flat.num_nodes());
        assert_eq!(hot.num_entries(), flat.num_entries());
        let n = flat.num_nodes() as NodeId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(hot.query(u, v), flat.query(u, v), "d({u},{v})");
                // Witness ids live in the new space; translate and compare
                // the distance component, which must agree exactly.
                let a = flat.query_with_witness(u, v);
                let b = hot.query_with_witness(u, v);
                assert_eq!(a.map(|(d, _)| d), b.map(|(d, _)| d));
                if let (Some((_, wa)), Some((_, wb))) = (a, b) {
                    // The remapped witness must be a hub both runs share.
                    assert!(hot.hubs_of(u).contains(&wb));
                    assert!(hot.hubs_of(v).contains(&wb));
                    let _ = wa;
                }
            }
        }
        let _ = rank;
    }

    #[test]
    fn hot_hubs_move_to_front() {
        let flat = sample_flat();
        let (hot, _) = reorder_by_hub_frequency(&flat);
        let freqs = hub_frequencies(&hot);
        // After the remap, frequency is non-increasing in hub id...
        assert!(freqs.windows(2).all(|w| w[0] >= w[1]));
        // ...so the first entry of every non-empty run is at least as hot
        // as the run's average hub.
        for v in 0..hot.num_nodes() as NodeId {
            let hubs = hot.hubs_of(v);
            if let Some(&first) = hubs.first() {
                for &h in hubs {
                    assert!(freqs[first as usize] >= freqs[h as usize]);
                }
            }
        }
    }

    #[test]
    fn remap_tightens_compact_deltas() {
        use crate::compact::CompactLabeling;
        let flat = sample_flat();
        let (hot, _) = reorder_by_hub_frequency(&flat);
        let plain = CompactLabeling::from_flat(&flat).expect("compactable");
        let tuned = CompactLabeling::from_flat(&hot).expect("compactable");
        // Same entry count, and the reorder never widens the lanes.
        assert_eq!(tuned.num_entries(), plain.num_entries());
        assert!(tuned.heap_bytes() <= plain.heap_bytes());
    }

    #[test]
    #[should_panic]
    fn remap_rejects_short_permutation() {
        let flat = sample_flat();
        remap_hub_ids(&flat, &[0]);
    }
}
