//! `CompactLabeling` — the byte-tuned CSR label arena.
//!
//! The paper's lower bounds are statements about the *total size* of hub
//! label structures, which makes bytes-per-label-entry the fundamental
//! serving cost: at 100M+ entries the merge-join is memory-bound, and
//! halving the bytes it streams is worth more than any instruction trick.
//! [`crate::flat::FlatLabeling`] spends 12 bytes per entry (u32 hub +
//! u64 distance); this arena narrows both lanes:
//!
//! * **distances** are stored as `u16` when every distance in the arena
//!   fits, with a checked fallback to `u32` otherwise (a distance beyond
//!   `u32::MAX` — including the [`INFINITY`] sentinel, which valid labels
//!   never store — is a typed [`CompactError`], never silent truncation);
//! * **hub ids** are delta-coded within each per-vertex sorted run (the
//!   first entry is the absolute id, every later entry the gap to its
//!   predecessor) and decoded on the fly inside the merge-join; deltas are
//!   `u16` when every gap in the arena fits, `u32` otherwise.
//!
//! Width selection is arena-wide, so the query loop monomorphizes into
//! four branch-free variants and per-vertex runs stay directly sliceable.
//! Best case (`u16`+`u16`) is 4 bytes per entry — a 67% cut; worst case
//! (`u32`+`u32`) is 8 bytes — still 33%. Conversion to and from the flat
//! arena is lossless: same hubs, same distances, same query answers.
//!
//! Delta-coding rewards the frequency-aware id remapping of
//! [`crate::freq`]: once hot hubs get small ids they cluster at the front
//! of every run, gaps shrink, and the `u16` hub lane applies more often.
//!
//! # Example
//!
//! ```
//! use hl_graph::generators;
//! use hl_core::pll::PrunedLandmarkLabeling;
//! use hl_core::{CompactLabeling, FlatLabeling};
//!
//! let g = generators::grid(4, 4);
//! let flat = FlatLabeling::from(PrunedLandmarkLabeling::by_degree(&g).into_labeling());
//! let compact = CompactLabeling::from_flat(&flat).unwrap();
//! assert_eq!(compact.query(0, 15), flat.query(0, 15));
//! assert_eq!(compact.to_flat(), flat);
//! assert!(compact.heap_bytes() < flat.heap_bytes());
//! ```

use hl_graph::{Distance, NodeId, INFINITY};

use crate::flat::{FlatLabeling, FlatLayoutError};

/// Why a labeling could not be compacted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactError {
    /// A label distance exceeds `u32::MAX`, the widest lane the compact
    /// encoding carries. (The [`INFINITY`] sentinel trips this too — a
    /// valid labeling never stores it, so seeing it here means the input
    /// was malformed, not that the encoding is lossy.)
    DistanceTooWide {
        /// The vertex whose label holds the distance.
        vertex: usize,
        /// The offending distance.
        distance: Distance,
    },
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactError::DistanceTooWide { vertex, distance } => write!(
                f,
                "distance {distance} of vertex {vertex} exceeds the u32 compact lane"
            ),
        }
    }
}

impl std::error::Error for CompactError {}

/// The delta-coded hub lane: one arena-wide width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HubDeltas {
    /// Every delta (including each run's absolute first id) fits 16 bits.
    U16(Vec<u16>),
    /// The general case: 32-bit deltas.
    U32(Vec<u32>),
}

impl HubDeltas {
    /// Number of entries in the lane.
    pub fn len(&self) -> usize {
        match self {
            HubDeltas::U16(v) => v.len(),
            HubDeltas::U32(v) => v.len(),
        }
    }

    /// `true` when the lane holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes per entry: 2 or 4.
    pub fn entry_bytes(&self) -> usize {
        match self {
            HubDeltas::U16(_) => 2,
            HubDeltas::U32(_) => 4,
        }
    }

    fn get(&self, i: usize) -> u64 {
        match self {
            HubDeltas::U16(v) => v[i] as u64,
            HubDeltas::U32(v) => v[i] as u64,
        }
    }
}

/// The distance lane: one arena-wide width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactDists {
    /// Every distance in the arena fits 16 bits.
    U16(Vec<u16>),
    /// Fallback: 32-bit distances.
    U32(Vec<u32>),
}

impl CompactDists {
    /// Number of entries in the lane.
    pub fn len(&self) -> usize {
        match self {
            CompactDists::U16(v) => v.len(),
            CompactDists::U32(v) => v.len(),
        }
    }

    /// `true` when the lane holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes per entry: 2 or 4.
    pub fn entry_bytes(&self) -> usize {
        match self {
            CompactDists::U16(_) => 2,
            CompactDists::U32(_) => 4,
        }
    }

    fn get(&self, i: usize) -> Distance {
        match self {
            CompactDists::U16(v) => v[i] as Distance,
            CompactDists::U32(v) => v[i] as Distance,
        }
    }
}

/// A complete hub labeling in the compact CSR arena: `u64` offsets plus
/// the two narrow lanes. Immutable once built; convert from a
/// [`FlatLabeling`] (width selection happens there) or assemble from raw
/// lanes with full validation via [`CompactLabeling::from_raw_parts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactLabeling {
    /// `num_nodes + 1` entry offsets; vertex `v` owns `offsets[v]..offsets[v+1]`.
    offsets: Vec<u64>,
    /// Delta-coded hub ids, per-vertex runs.
    hubs: HubDeltas,
    /// Distances, aligned with `hubs`.
    dists: CompactDists,
}

impl CompactLabeling {
    /// Compacts a flat arena, choosing the narrowest widths that hold
    /// every value. Lossless: [`CompactLabeling::to_flat`] reproduces the
    /// input exactly.
    pub fn from_flat(flat: &FlatLabeling) -> Result<Self, CompactError> {
        let offsets = flat.raw_offsets().to_vec();
        let hubs = flat.raw_hubs();
        let dists = flat.raw_dists();
        let n = flat.num_nodes();

        let mut max_delta: NodeId = 0;
        let mut max_dist: Distance = 0;
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            let mut prev: NodeId = 0;
            for k in lo..hi {
                // First entry of a run is its absolute id (delta from 0).
                let delta = hubs[k] - prev;
                prev = hubs[k];
                max_delta = max_delta.max(delta);
                if dists[k] > max_dist {
                    max_dist = dists[k];
                    if max_dist > u32::MAX as Distance {
                        return Err(CompactError::DistanceTooWide {
                            vertex: v,
                            distance: max_dist,
                        });
                    }
                }
            }
        }

        let enc_hubs = |wide: bool| {
            let mut out16 = Vec::new();
            let mut out32 = Vec::new();
            if wide {
                out32.reserve_exact(hubs.len());
            } else {
                out16.reserve_exact(hubs.len());
            }
            for v in 0..n {
                let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
                let mut prev: NodeId = 0;
                for &h in &hubs[lo..hi] {
                    let delta = h - prev;
                    prev = h;
                    if wide {
                        out32.push(delta);
                    } else {
                        out16.push(delta as u16);
                    }
                }
            }
            if wide {
                HubDeltas::U32(out32)
            } else {
                HubDeltas::U16(out16)
            }
        };
        let hub_lane = enc_hubs(max_delta > u16::MAX as NodeId);
        let dist_lane = if max_dist > u16::MAX as Distance {
            CompactDists::U32(dists.iter().map(|&d| d as u32).collect())
        } else {
            CompactDists::U16(dists.iter().map(|&d| d as u16).collect())
        };
        Ok(CompactLabeling {
            offsets,
            hubs: hub_lane,
            dists: dist_lane,
        })
    }

    /// Assembles an arena from raw lanes, validating every invariant the
    /// query loop relies on — the trust boundary for deserializers (the
    /// HLBS v2 compact flavor's body *is* these three lanes): offsets
    /// start at 0, never decrease, and end at the entry count; lanes are
    /// parallel; each run's decoded hub ids are strictly increasing
    /// (every delta after a run's first entry is nonzero) and in range.
    /// Accumulation happens in `u64`, so a crafted delta stream cannot
    /// wrap the id space undetected.
    pub fn from_raw_parts(
        offsets: Vec<u64>,
        hubs: HubDeltas,
        dists: CompactDists,
    ) -> Result<Self, FlatLayoutError> {
        if offsets.is_empty() {
            return Err(FlatLayoutError::EmptyOffsets);
        }
        if offsets[0] != 0 {
            return Err(FlatLayoutError::FirstOffsetNonZero(offsets[0]));
        }
        if hubs.len() != dists.len() {
            return Err(FlatLayoutError::UnparallelArrays {
                hubs: hubs.len(),
                dists: dists.len(),
            });
        }
        let num_nodes = offsets.len() - 1;
        if offsets[num_nodes] != hubs.len() as u64 {
            return Err(FlatLayoutError::FinalOffsetMismatch {
                final_offset: offsets[num_nodes],
                entries: hubs.len(),
            });
        }
        for v in 0..num_nodes {
            if offsets[v] > offsets[v + 1] {
                return Err(FlatLayoutError::NonMonotoneOffsets { vertex: v });
            }
        }
        for v in 0..num_nodes {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            let mut acc: u64 = 0;
            for k in lo..hi {
                let delta = hubs.get(k);
                if k > lo && delta == 0 {
                    // A zero gap decodes to a duplicate hub id.
                    return Err(FlatLayoutError::UnsortedHubs { vertex: v });
                }
                acc += delta;
                if acc >= num_nodes as u64 {
                    return Err(FlatLayoutError::HubOutOfRange {
                        vertex: v,
                        hub: acc.min(NodeId::MAX as u64) as NodeId,
                    });
                }
            }
        }
        Ok(CompactLabeling {
            offsets,
            hubs,
            dists,
        })
    }

    /// Expands back into the flat arena (exact inverse of
    /// [`CompactLabeling::from_flat`]).
    pub fn to_flat(&self) -> FlatLabeling {
        let mut flat = FlatLabeling::with_capacity(self.num_nodes(), self.num_entries());
        let mut hubs = Vec::new();
        let mut dists = Vec::new();
        for v in 0..self.num_nodes() as NodeId {
            hubs.clear();
            dists.clear();
            self.decode_label_into(v, &mut hubs, &mut dists);
            flat.push_label(&hubs, &dists);
        }
        flat
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total `(hub, distance)` entries in the arena, `Σ_v |S_v|`.
    pub fn num_entries(&self) -> usize {
        self.hubs.len()
    }

    /// The raw offset array.
    pub fn raw_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The delta-coded hub lane.
    pub fn raw_hubs(&self) -> &HubDeltas {
        &self.hubs
    }

    /// The distance lane.
    pub fn raw_dists(&self) -> &CompactDists {
        &self.dists
    }

    /// Bytes per hub entry in this arena (2 or 4).
    pub fn hub_entry_bytes(&self) -> usize {
        self.hubs.entry_bytes()
    }

    /// Bytes per distance entry in this arena (2 or 4).
    pub fn dist_entry_bytes(&self) -> usize {
        self.dists.entry_bytes()
    }

    /// Heap footprint of the three lanes, in bytes — *exact*, by length:
    /// there are no side tables in this encoding, so the accounting is
    /// `offsets + entries × (hub width + dist width)` and nothing else.
    /// Comparable with [`FlatLabeling::heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.hubs.len() * self.hubs.entry_bytes()
            + self.dists.len() * self.dists.entry_bytes()
    }

    /// Average hubs per vertex, `Σ_v |S_v| / n`.
    pub fn average_hubs(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.num_entries() as f64 / self.num_nodes() as f64
    }

    /// Largest label size.
    pub fn max_hubs(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Average bytes per `(hub, distance)` entry, offsets included — the
    /// serving-cost figure the flat-vs-compact head-to-heads report.
    pub fn bytes_per_entry(&self) -> f64 {
        if self.num_entries() == 0 {
            return 0.0;
        }
        self.heap_bytes() as f64 / self.num_entries() as f64
    }

    fn span(&self, v: NodeId) -> std::ops::Range<usize> {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        lo..hi
    }

    /// Decodes vertex `v`'s label into caller-owned buffers (appended).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn decode_label_into(&self, v: NodeId, hubs: &mut Vec<NodeId>, dists: &mut Vec<Distance>) {
        let span = self.span(v);
        let mut acc: NodeId = 0;
        for k in span {
            acc += self.hubs.get(k) as NodeId;
            hubs.push(acc);
            dists.push(self.dists.get(k));
        }
    }

    /// The label of vertex `v` as owned parallel arrays, decoded.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_of(&self, v: NodeId) -> (Vec<NodeId>, Vec<Distance>) {
        let mut hubs = Vec::with_capacity(self.span(v).len());
        let mut dists = Vec::with_capacity(self.span(v).len());
        self.decode_label_into(v, &mut hubs, &mut dists);
        (hubs, dists)
    }

    /// Answers the distance query `u, v` by merge-joining the two runs,
    /// decoding hub deltas on the fly. Returns [`INFINITY`] when the
    /// labels share no hub — or when every common-hub sum saturates,
    /// matching [`crate::label::merge_join`]'s sentinel discipline.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn query(&self, u: NodeId, v: NodeId) -> Distance {
        let (ra, rb) = (self.span(u), self.span(v));
        match (&self.hubs, &self.dists) {
            (HubDeltas::U16(h), CompactDists::U16(d)) => {
                join_delta_runs(&h[ra.clone()], &d[ra], &h[rb.clone()], &d[rb])
            }
            (HubDeltas::U16(h), CompactDists::U32(d)) => {
                join_delta_runs(&h[ra.clone()], &d[ra], &h[rb.clone()], &d[rb])
            }
            (HubDeltas::U32(h), CompactDists::U16(d)) => {
                join_delta_runs(&h[ra.clone()], &d[ra], &h[rb.clone()], &d[rb])
            }
            (HubDeltas::U32(h), CompactDists::U32(d)) => {
                join_delta_runs(&h[ra.clone()], &d[ra], &h[rb.clone()], &d[rb])
            }
        }
    }

    /// Like [`CompactLabeling::query`] but also reports the (decoded,
    /// absolute) hub realizing the minimum; `None` when the labels share
    /// no hub or every common-hub sum saturated.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn query_with_witness(&self, u: NodeId, v: NodeId) -> Option<(Distance, NodeId)> {
        let (ra, rb) = (self.span(u), self.span(v));
        match (&self.hubs, &self.dists) {
            (HubDeltas::U16(h), CompactDists::U16(d)) => {
                join_delta_runs_witness(&h[ra.clone()], &d[ra], &h[rb.clone()], &d[rb])
            }
            (HubDeltas::U16(h), CompactDists::U32(d)) => {
                join_delta_runs_witness(&h[ra.clone()], &d[ra], &h[rb.clone()], &d[rb])
            }
            (HubDeltas::U32(h), CompactDists::U16(d)) => {
                join_delta_runs_witness(&h[ra.clone()], &d[ra], &h[rb.clone()], &d[rb])
            }
            (HubDeltas::U32(h), CompactDists::U32(d)) => {
                join_delta_runs_witness(&h[ra.clone()], &d[ra], &h[rb.clone()], &d[rb])
            }
        }
    }
}

impl TryFrom<&FlatLabeling> for CompactLabeling {
    type Error = CompactError;

    fn try_from(flat: &FlatLabeling) -> Result<Self, CompactError> {
        CompactLabeling::from_flat(flat)
    }
}

impl From<&CompactLabeling> for FlatLabeling {
    fn from(compact: &CompactLabeling) -> Self {
        compact.to_flat()
    }
}

/// Touches one element per cache line of both hub-delta lanes before the
/// decode starts, mirroring `label::warm_hub_lanes`: the touches are
/// independent loads the memory system overlaps, while the delta-decode
/// chain below is serial and would otherwise pay one DRAM round-trip per
/// line. `black_box` keeps the reads alive.
#[inline]
fn warm_delta_lanes<H: Copy>(a_hubs: &[H], b_hubs: &[H]) {
    let stride = (64 / std::mem::size_of::<H>()).max(1);
    let mut p = 0usize;
    while p < a_hubs.len() {
        std::hint::black_box(a_hubs[p]);
        p += stride;
    }
    let mut q = 0usize;
    while q < b_hubs.len() {
        std::hint::black_box(b_hubs[q]);
        q += stride;
    }
}

/// The delta-decoding merge-join kernel, monomorphized per lane width.
/// Cursor movement mirrors the branchless [`crate::label::merge_join`];
/// the accumulator updates are guarded because advancing past the end of
/// a run must not read (or add) a delta that belongs to the next vertex.
#[inline]
fn join_delta_runs<H, D>(a_hubs: &[H], a_dists: &[D], b_hubs: &[H], b_dists: &[D]) -> Distance
where
    H: Copy,
    NodeId: From<H>,
    D: Copy,
    Distance: From<D>,
{
    // Truncating each side to its common length lets the loop condition
    // prove every index in bounds for both lanes — no per-iteration
    // bounds checks (same trick as `crate::label::merge_join`).
    let n = a_hubs.len().min(a_dists.len());
    let m = b_hubs.len().min(b_dists.len());
    if n == 0 || m == 0 {
        return INFINITY;
    }
    let (a_hubs, a_dists) = (&a_hubs[..n], &a_dists[..n]);
    let (b_hubs, b_dists) = (&b_hubs[..m], &b_dists[..m]);
    warm_delta_lanes(a_hubs, b_hubs);
    let (mut i, mut j) = (0usize, 0usize);
    let mut ha = NodeId::from(a_hubs[0]);
    let mut hb = NodeId::from(b_hubs[0]);
    let mut best = INFINITY;
    loop {
        let d = Distance::from(a_dists[i]).saturating_add(Distance::from(b_dists[j]));
        let candidate = if ha == hb { d } else { INFINITY };
        best = best.min(candidate);
        let adv_a = ha <= hb;
        let adv_b = hb <= ha;
        i += adv_a as usize;
        j += adv_b as usize;
        if i >= n || j >= m {
            break;
        }
        if adv_a {
            ha += NodeId::from(a_hubs[i]);
        }
        if adv_b {
            hb += NodeId::from(b_hubs[j]);
        }
    }
    best
}

/// Witness-reporting variant of [`join_delta_runs`], with the same
/// saturation discipline as [`crate::label::merge_join_with_witness`].
#[inline]
fn join_delta_runs_witness<H, D>(
    a_hubs: &[H],
    a_dists: &[D],
    b_hubs: &[H],
    b_dists: &[D],
) -> Option<(Distance, NodeId)>
where
    H: Copy,
    NodeId: From<H>,
    D: Copy,
    Distance: From<D>,
{
    // Same slice truncation as `join_delta_runs`.
    let n = a_hubs.len().min(a_dists.len());
    let m = b_hubs.len().min(b_dists.len());
    if n == 0 || m == 0 {
        return None;
    }
    let (a_hubs, a_dists) = (&a_hubs[..n], &a_dists[..n]);
    let (b_hubs, b_dists) = (&b_hubs[..m], &b_dists[..m]);
    warm_delta_lanes(a_hubs, b_hubs);
    let (mut i, mut j) = (0usize, 0usize);
    let mut ha = NodeId::from(a_hubs[0]);
    let mut hb = NodeId::from(b_hubs[0]);
    let mut best = INFINITY;
    let mut witness: NodeId = 0;
    loop {
        let d = Distance::from(a_dists[i]).saturating_add(Distance::from(b_dists[j]));
        let take = ha == hb && d < best;
        best = if take { d } else { best };
        witness = if take { ha } else { witness };
        let adv_a = ha <= hb;
        let adv_b = hb <= ha;
        i += adv_a as usize;
        j += adv_b as usize;
        if i >= n || j >= m {
            break;
        }
        if adv_a {
            ha += NodeId::from(a_hubs[i]);
        }
        if adv_b {
            hb += NodeId::from(b_hubs[j]);
        }
    }
    (best != INFINITY).then_some((best, witness))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{HubLabel, HubLabeling};
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    fn sample_flat() -> FlatLabeling {
        let g = generators::grid(5, 5);
        FlatLabeling::from(PrunedLandmarkLabeling::by_degree(&g).into_labeling())
    }

    #[test]
    fn roundtrip_is_lossless_and_narrow() {
        let flat = sample_flat();
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        assert_eq!(compact.to_flat(), flat);
        assert_eq!(compact.num_nodes(), flat.num_nodes());
        assert_eq!(compact.num_entries(), flat.num_entries());
        // A 25-vertex grid has tiny ids and tiny distances: both lanes u16.
        assert_eq!(compact.hub_entry_bytes(), 2);
        assert_eq!(compact.dist_entry_bytes(), 2);
        assert!(compact.heap_bytes() < flat.heap_bytes());
    }

    #[test]
    fn queries_match_flat_exactly() {
        let flat = sample_flat();
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        let n = flat.num_nodes() as NodeId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(compact.query(u, v), flat.query(u, v), "d({u},{v})");
                assert_eq!(
                    compact.query_with_witness(u, v),
                    flat.query_with_witness(u, v),
                    "witness({u},{v})"
                );
            }
        }
    }

    #[test]
    fn wide_values_select_wide_lanes() {
        // Distances above u16::MAX force the u32 distance lane; a hub gap
        // above u16::MAX forces the u32 hub lane.
        let mut hl = HubLabeling::empty(200_000);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (70_000, 1 << 20)]);
        *hl.label_mut(70_000) = HubLabel::from_pairs(vec![(70_000, 0)]);
        let flat = FlatLabeling::from(hl);
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        assert_eq!(compact.hub_entry_bytes(), 4);
        assert_eq!(compact.dist_entry_bytes(), 4);
        assert_eq!(compact.query(0, 70_000), 1 << 20);
        assert_eq!(compact.to_flat(), flat);
    }

    #[test]
    fn distance_beyond_u32_is_a_typed_error() {
        let mut hl = HubLabeling::empty(2);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (1, (u32::MAX as u64) + 1)]);
        *hl.label_mut(1) = HubLabel::from_pairs(vec![(1, 0)]);
        let flat = FlatLabeling::from(hl);
        assert_eq!(
            CompactLabeling::from_flat(&flat),
            Err(CompactError::DistanceTooWide {
                vertex: 0,
                distance: (u32::MAX as u64) + 1
            })
        );
        assert!(!format!(
            "{}",
            CompactError::DistanceTooWide {
                vertex: 0,
                distance: 5
            }
        )
        .is_empty());
    }

    #[test]
    fn saturation_matches_flat_sentinel_discipline() {
        // u32-lane distances that sum past u32::MAX must still be finite
        // (the join runs in u64)...
        let mut hl = HubLabeling::empty(2);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(1, u32::MAX as u64)]);
        *hl.label_mut(1) = HubLabel::from_pairs(vec![(1, u32::MAX as u64)]);
        let flat = FlatLabeling::from(hl);
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        assert_eq!(compact.query(0, 1), 2 * (u32::MAX as u64));
        assert_eq!(
            compact.query_with_witness(0, 1),
            Some((2 * (u32::MAX as u64), 1))
        );
        // ...and disjoint hub sets read as unreachable with no witness.
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0)]);
        *hl.label_mut(2) = HubLabel::from_pairs(vec![(2, 0)]);
        let flat = FlatLabeling::from(hl);
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        assert_eq!(compact.query(0, 2), INFINITY);
        assert_eq!(compact.query_with_witness(0, 2), None);
        assert_eq!(compact.query_with_witness(0, 1), None); // empty label
    }

    #[test]
    fn from_raw_parts_accepts_own_lanes() {
        let flat = sample_flat();
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        let rebuilt = CompactLabeling::from_raw_parts(
            compact.raw_offsets().to_vec(),
            compact.raw_hubs().clone(),
            compact.raw_dists().clone(),
        )
        .expect("own lanes must validate");
        assert_eq!(rebuilt, compact);
        let empty = CompactLabeling::from_raw_parts(
            vec![0],
            HubDeltas::U16(vec![]),
            CompactDists::U16(vec![]),
        )
        .expect("empty arena");
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.heap_bytes(), 8);
    }

    #[test]
    fn from_raw_parts_rejects_malformed_lanes() {
        use FlatLayoutError as E;
        let err = |o: Vec<u64>, h: HubDeltas, d: CompactDists| {
            CompactLabeling::from_raw_parts(o, h, d).expect_err("must reject")
        };
        assert_eq!(
            err(vec![], HubDeltas::U16(vec![]), CompactDists::U16(vec![])),
            E::EmptyOffsets
        );
        assert_eq!(
            err(
                vec![1, 1],
                HubDeltas::U16(vec![0]),
                CompactDists::U16(vec![0])
            ),
            E::FirstOffsetNonZero(1)
        );
        assert_eq!(
            err(
                vec![0, 2],
                HubDeltas::U16(vec![0, 1]),
                CompactDists::U16(vec![0])
            ),
            E::UnparallelArrays { hubs: 2, dists: 1 }
        );
        assert_eq!(
            err(
                vec![0, 2],
                HubDeltas::U16(vec![0]),
                CompactDists::U16(vec![0])
            ),
            E::FinalOffsetMismatch {
                final_offset: 2,
                entries: 1
            }
        );
        assert_eq!(
            err(
                vec![0, 2, 1, 3],
                HubDeltas::U16(vec![0, 1, 1]),
                CompactDists::U16(vec![0, 0, 0])
            ),
            E::NonMonotoneOffsets { vertex: 1 }
        );
        // Zero delta after a run's first entry = duplicate hub.
        assert_eq!(
            err(
                vec![0, 2, 2],
                HubDeltas::U16(vec![1, 0]),
                CompactDists::U16(vec![0, 0])
            ),
            E::UnsortedHubs { vertex: 0 }
        );
        // Accumulated id walks out of the vertex range.
        assert_eq!(
            err(
                vec![0, 2],
                HubDeltas::U16(vec![0, 9]),
                CompactDists::U16(vec![0, 0])
            ),
            E::HubOutOfRange { vertex: 0, hub: 9 }
        );
    }

    #[test]
    fn heap_bytes_is_exact_by_lane_width() {
        let flat = sample_flat();
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        let e = compact.num_entries();
        let expect = (compact.num_nodes() + 1) * 8
            + e * compact.hub_entry_bytes()
            + e * compact.dist_entry_bytes();
        assert_eq!(compact.heap_bytes(), expect);
        assert!((compact.bytes_per_entry() - expect as f64 / e as f64).abs() < 1e-12);
    }

    #[test]
    fn label_of_decodes_absolute_ids() {
        let flat = sample_flat();
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        for v in 0..flat.num_nodes() as NodeId {
            let (hubs, dists) = compact.label_of(v);
            assert_eq!(hubs.as_slice(), flat.hubs_of(v), "hubs of {v}");
            assert_eq!(dists.as_slice(), flat.dists_of(v), "dists of {v}");
        }
    }
}
