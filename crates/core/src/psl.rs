//! PSL-style parallel label construction (after Li–Qiao–Chang–Zhang–Qin,
//! SIGMOD 2019): instead of PLL's sequential pruned BFS per root, labels
//! grow in synchronous *distance rounds* — round `d` inserts all hub
//! entries at distance exactly `d`, computed independently per vertex from
//! the neighbors' round-`d−1` entries, which parallelizes over vertices.
//!
//! The pruning test queries the labels as of round `d−1`, so the output
//! can contain a few entries PLL's fully-sequential pruning would have
//! avoided (same-round redundancy); it is always an **exact** cover and,
//! empirically, within a few percent of PLL's size. Unweighted graphs only
//! (rounds are BFS levels).

use hl_graph::sync::{into_inner_unpoisoned, lock_unpoisoned};
use hl_graph::{Distance, Graph, GraphError, NodeId};

use crate::label::{HubLabel, HubLabeling};
use crate::order;

/// Builds an exact hub labeling with round-synchronous parallel insertion.
///
/// `order` is the importance order (earlier = more important); hubs of `v`
/// are always at least as important as `v` itself (plus the self-hub),
/// matching the hierarchical structure of PLL output.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for weighted graphs.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertex set.
pub fn psl_labeling(
    g: &Graph,
    order_vec: Vec<NodeId>,
    threads: usize,
) -> Result<HubLabeling, GraphError> {
    if !g.is_unit_weighted() {
        return Err(GraphError::InvalidParameters {
            reason: "psl_labeling requires a unit-weight graph".into(),
        });
    }
    assert!(
        order::is_permutation(&order_vec, g.num_nodes()),
        "PSL order must be a permutation of the vertex set"
    );
    let n = g.num_nodes();
    let threads = threads.max(1);
    let mut rank = vec![0u32; n];
    for (pos, &v) in order_vec.iter().enumerate() {
        rank[v as usize] = pos as u32;
    }
    // labels[v]: (hub, dist), kept sorted by hub id for merge queries.
    let mut labels: Vec<Vec<(NodeId, Distance)>> = (0..n as NodeId).map(|v| vec![(v, 0)]).collect();
    // Hubs added in the previous round, per vertex.
    let mut prev: Vec<Vec<NodeId>> = (0..n as NodeId).map(|v| vec![v]).collect();
    let mut d: Distance = 1;
    loop {
        // Compute this round's additions in parallel from immutable state.
        let additions: Vec<Vec<NodeId>> = {
            let labels = &labels;
            let prev = &prev;
            let rank = &rank;
            let next = std::sync::atomic::AtomicUsize::new(0);
            let results: Vec<std::sync::Mutex<Vec<NodeId>>> =
                (0..n).map(|_| std::sync::Mutex::new(Vec::new())).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let v = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if v >= n {
                            break;
                        }
                        let mut cands: Vec<NodeId> = Vec::new();
                        for &u in g.neighbor_ids(v as NodeId) {
                            for &r in &prev[u as usize] {
                                if rank[r as usize] < rank[v] {
                                    cands.push(r);
                                }
                            }
                        }
                        cands.sort_unstable_by_key(|&r| rank[r as usize]);
                        cands.dedup();
                        let mut added: Vec<NodeId> = Vec::new();
                        for r in cands {
                            if query_upto(&labels[v], &labels[r as usize]) > d {
                                added.push(r);
                            }
                        }
                        if !added.is_empty() {
                            *lock_unpoisoned(&results[v]) = added;
                        }
                    });
                }
            });
            results.into_iter().map(into_inner_unpoisoned).collect()
        };
        let mut any = false;
        for (v, added) in additions.iter().enumerate() {
            if !added.is_empty() {
                any = true;
                for &r in added {
                    labels[v].push((r, d));
                }
                labels[v].sort_unstable_by_key(|&(h, _)| h);
            }
        }
        if !any {
            break;
        }
        prev = additions;
        d += 1;
    }
    Ok(HubLabeling::from_labels(
        labels.into_iter().map(HubLabel::from_pairs).collect(),
    ))
}

/// Merge-join over raw sorted pair slices.
fn query_upto(a: &[(NodeId, Distance)], b: &[(NodeId, Distance)]) -> Distance {
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = u64::MAX;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                best = best.min(a[i].1.saturating_add(b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact;
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    #[test]
    fn exact_on_families() {
        for g in [
            generators::path(30),
            generators::cycle(21),
            generators::grid(6, 7),
            generators::random_tree(60, 3),
            generators::connected_gnm(70, 35, 9),
            generators::union_of_matchings(40, 3, 2),
        ] {
            let hl = psl_labeling(&g, order::by_degree(&g), 4).unwrap();
            assert!(verify_exact(&g, &hl).unwrap().is_exact());
        }
    }

    #[test]
    fn exact_on_disconnected() {
        let g = hl_graph::builder::graph_from_edges(6, &[(0, 1), (2, 3)]).unwrap();
        let hl = psl_labeling(&g, order::by_degree(&g), 2).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn rejects_weighted_graphs() {
        let g = generators::weighted_grid(3, 3, 1);
        assert!(psl_labeling(&g, order::by_degree(&g), 2).is_err());
    }

    #[test]
    fn size_close_to_pll() {
        let g = generators::grid(9, 9);
        let ord = order::by_sampled_betweenness(&g, 16, 1).unwrap();
        let psl = psl_labeling(&g, ord.clone(), 4).unwrap();
        let pll = PrunedLandmarkLabeling::with_order(&g, ord).into_labeling();
        assert!(
            psl.total_hubs() >= pll.total_hubs(),
            "PSL never prunes harder than PLL"
        );
        assert!(
            (psl.total_hubs() as f64) < 1.25 * pll.total_hubs() as f64,
            "PSL {} vs PLL {}: same-round redundancy should be small",
            psl.total_hubs(),
            pll.total_hubs()
        );
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let g = generators::connected_gnm(50, 25, 11);
        let ord = order::by_degree(&g);
        let one = psl_labeling(&g, ord.clone(), 1).unwrap();
        let many = psl_labeling(&g, ord, 8).unwrap();
        assert_eq!(
            one, many,
            "round structure makes the output thread-count invariant"
        );
    }

    #[test]
    fn hubs_respect_rank_hierarchy() {
        let g = generators::grid(5, 5);
        let ord = order::by_degree(&g);
        let mut rank = [0u32; 25];
        for (pos, &v) in ord.iter().enumerate() {
            rank[v as usize] = pos as u32;
        }
        let hl = psl_labeling(&g, ord, 2).unwrap();
        for v in 0..25u32 {
            for (h, _) in hl.label(v).iter() {
                assert!(
                    h == v || rank[h as usize] < rank[v as usize],
                    "hub {h} of {v} must be more important"
                );
            }
        }
    }
}
