//! Hub label data structures and the merge-join distance query.
//!
//! Two owned representations share one query algorithm:
//!
//! * [`HubLabeling`] — one [`HubLabel`] (two heap `Vec`s) per vertex; the
//!   *construction-time* form, cheap to grow and mutate per vertex;
//! * [`crate::flat::FlatLabeling`] — a single CSR arena; the blessed
//!   *query-time* form, one allocation for the whole labeling.
//!
//! The [`LabelingView`] trait is the borrowed read-only view both forms
//! implement, so verification, statistics, and oracles work on either.

use hl_graph::{Distance, NodeId, INFINITY};

/// Gallop stride of the merge-join kernels: how far (in entries) each
/// cursor tests ahead on the hub lane per iteration. One 64-byte cache
/// line of u32 hub ids — big enough that length-skewed joins skip whole
/// lines per step, and the stride-ahead read doubles as a prefetch that
/// hides an LLC/DRAM round-trip behind the serial advance chain.
const LOOKAHEAD: usize = 16;

/// Touches one hub id per cache line of both lanes before the merge
/// starts. The touches are independent loads, so the memory system
/// overlaps all the line fetches; the serial (data-dependent) advance
/// chain of the branchless merge then runs against warm cache instead of
/// paying one DRAM round-trip per line. The OR-fold into [`black_box`]
/// keeps the reads alive without `unsafe` prefetch intrinsics.
///
/// [`black_box`]: std::hint::black_box
#[inline]
fn warm_hub_lanes(a_hubs: &[NodeId], b_hubs: &[NodeId]) {
    let mut warm = 0u32;
    let mut p = 0usize;
    while p < a_hubs.len() {
        warm |= a_hubs[p];
        p += LOOKAHEAD;
    }
    let mut q = 0usize;
    while q < b_hubs.len() {
        warm |= b_hubs[q];
        q += LOOKAHEAD;
    }
    std::hint::black_box(warm);
}

/// The sorted-merge join over two labels given as parallel slices:
/// `min over common hubs h of d(u, h) + d(h, v)`, or [`INFINITY`] when the
/// hub sets are disjoint. Both hub slices must be sorted by hub id, with
/// `a_dists[i]` the distance to `a_hubs[i]` (and likewise for `b`).
///
/// This is *the* hot-path kernel: every representation's `query` bottoms
/// out here, so layout experiments (SIMD, prefetch) have one place to go.
///
/// The cursor advance is branchless: on a hub mismatch both cursors move
/// by the boolean comparison results (fine step) and gallop a whole
/// cache line when even the stride-ahead hub is still behind the other
/// side (coarse step) — conditional moves throughout, so the effectively
/// random interleaving of two sorted hub runs never feeds the branch
/// predictor. A branchless advance is a serial data-dependency chain the
/// core cannot speculate past, so the kernel first warms both hub lanes
/// by issuing every cache-line fetch as independent overlapping loads. Only the hub
/// *equality* test remains a real branch — labels share a hot prefix of
/// top-ranked hubs, making it highly predictable. Sums that saturate at
/// [`INFINITY`] never beat `best` (it starts there), so a pair of huge
/// finite label distances reads as unreachable, exactly like a disjoint
/// hub set.
pub fn merge_join(
    a_hubs: &[NodeId],
    a_dists: &[Distance],
    b_hubs: &[NodeId],
    b_dists: &[Distance],
) -> Distance {
    // Truncate each pair to its common length: the loop condition then
    // proves every index in bounds for *both* slices of a side, so the
    // four per-iteration bounds checks vanish from the hot loop.
    let n = a_hubs.len().min(a_dists.len());
    let m = b_hubs.len().min(b_dists.len());
    let (a_hubs, a_dists) = (&a_hubs[..n], &a_dists[..n]);
    let (b_hubs, b_dists) = (&b_hubs[..m], &b_dists[..m]);
    warm_hub_lanes(a_hubs, b_hubs);
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        let (ha, hb) = (a_hubs[i], b_hubs[j]);
        let ia = (i + LOOKAHEAD).min(n - 1);
        let jb = (j + LOOKAHEAD).min(m - 1);
        if ha == hb {
            // The equality test stays a real branch: hub labels built by
            // vertex order share a hot prefix of top-ranked hubs, so this
            // branch is highly predictable and letting the core speculate
            // through it overlaps the next iterations' loads.
            best = best.min(a_dists[i].saturating_add(b_dists[j]));
            i += 1;
            j += 1;
        } else {
            // Branchless advance, fine and coarse. The fine step moves
            // each cursor by the boolean comparison result — the ordering
            // of two mismatched sorted runs is effectively random, so
            // there is nothing for the predictor to miss on. The coarse
            // step gallops: hubs are sorted, so if even the hub a whole
            // stride ahead is still below the other cursor's current hub,
            // every skipped entry is provably matchless and the cursor
            // jumps the stride (real hub labels are length-skewed — long
            // single-side runs are the common case, and the stride-ahead
            // loads double as prefetch for the serial advance chain).
            let fi = i + (ha < hb) as usize;
            let fj = j + (hb < ha) as usize;
            i = if a_hubs[ia] < hb { ia + 1 } else { fi };
            j = if b_hubs[jb] < ha { jb + 1 } else { fj };
        }
    }
    best
}

/// Like [`merge_join`] but also reports the hub realizing the minimum;
/// `None` when the hub sets are disjoint **or** every common-hub sum
/// saturated at [`INFINITY`] — a saturated sum means "farther than the
/// distance type can say", and returning it with a witness would claim a
/// finite meeting point that does not exist.
pub fn merge_join_with_witness(
    a_hubs: &[NodeId],
    a_dists: &[Distance],
    b_hubs: &[NodeId],
    b_dists: &[Distance],
) -> Option<(Distance, NodeId)> {
    // Same slice truncation as `merge_join`: bounds checks leave the loop.
    let n = a_hubs.len().min(a_dists.len());
    let m = b_hubs.len().min(b_dists.len());
    let (a_hubs, a_dists) = (&a_hubs[..n], &a_dists[..n]);
    let (b_hubs, b_dists) = (&b_hubs[..m], &b_dists[..m]);
    warm_hub_lanes(a_hubs, b_hubs);
    let mut best = INFINITY;
    let mut witness: NodeId = 0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        let (ha, hb) = (a_hubs[i], b_hubs[j]);
        let ia = (i + LOOKAHEAD).min(n - 1);
        let jb = (j + LOOKAHEAD).min(m - 1);
        if ha == hb {
            let d = a_dists[i].saturating_add(b_dists[j]);
            // Strict `<` keeps the first hub realizing the minimum, as a
            // conditional move — `d` can never displace a tie, and `best`
            // starts at INFINITY so a saturated sum never takes.
            let take = d < best;
            best = if take { d } else { best };
            witness = if take { ha } else { witness };
            i += 1;
            j += 1;
        } else {
            // Fine + galloping coarse advance, exactly as in
            // [`merge_join`]; skipped entries are provably matchless, so
            // the witness bookkeeping above never sees them.
            let fi = i + (ha < hb) as usize;
            let fj = j + (hb < ha) as usize;
            i = if a_hubs[ia] < hb { ia + 1 } else { fi };
            j = if b_hubs[jb] < ha { jb + 1 } else { fj };
        }
    }
    (best != INFINITY).then_some((best, witness))
}

/// The pre-branchless three-way-`match` formulation of [`merge_join`],
/// kept as the differential-testing and benchmarking baseline: the
/// head-to-head in `bench_query` pins "branchless is no slower", and the
/// property tests assert both formulations agree on every input.
pub fn merge_join_branchy(
    a_hubs: &[NodeId],
    a_dists: &[Distance],
    b_hubs: &[NodeId],
    b_dists: &[Distance],
) -> Distance {
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_hubs.len() && j < b_hubs.len() {
        match a_hubs[i].cmp(&b_hubs[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a_dists[i].saturating_add(b_dists[j]);
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// A borrowed, read-only view of a complete hub labeling: per-vertex
/// sorted hub/distance slices plus the merge-join query over them.
///
/// Implemented by both the nested [`HubLabeling`] (construction-time form)
/// and the arena [`crate::flat::FlatLabeling`] (query-time form), so code
/// that only *reads* a labeling — verification, statistics, oracles —
/// accepts either without conversion.
pub trait LabelingView {
    /// Number of vertices.
    fn num_nodes(&self) -> usize;

    /// The sorted hub ids of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn hubs_of(&self, v: NodeId) -> &[NodeId];

    /// The distances of vertex `v`, aligned with [`LabelingView::hubs_of`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn dists_of(&self, v: NodeId) -> &[Distance];

    /// Answers the distance query `u, v` via the merge-join; [`INFINITY`]
    /// when the labels share no hub.
    fn query(&self, u: NodeId, v: NodeId) -> Distance {
        merge_join(
            self.hubs_of(u),
            self.dists_of(u),
            self.hubs_of(v),
            self.dists_of(v),
        )
    }

    /// Like [`LabelingView::query`] but also reports the witnessing hub.
    fn query_with_witness(&self, u: NodeId, v: NodeId) -> Option<(Distance, NodeId)> {
        merge_join_with_witness(
            self.hubs_of(u),
            self.dists_of(u),
            self.hubs_of(v),
            self.dists_of(v),
        )
    }

    /// Total number of hubs over all vertices, `Σ_v |S_v|`.
    fn total_hubs(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.hubs_of(v).len())
            .sum()
    }

    /// Average hubs per vertex, `Σ_v |S_v| / n`.
    fn average_hubs(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.total_hubs() as f64 / self.num_nodes() as f64
    }

    /// Largest label size.
    fn max_hubs(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.hubs_of(v).len())
            .max()
            .unwrap_or(0)
    }
}

/// The label of a single vertex: its hubs and exact distances to them,
/// sorted by hub id.
///
/// # Example
///
/// ```
/// use hl_core::HubLabel;
///
/// let label = HubLabel::from_pairs(vec![(3, 2), (1, 5), (7, 0)]);
/// assert_eq!(label.len(), 3);
/// assert_eq!(label.distance_to_hub(1), Some(5));
/// assert_eq!(label.distance_to_hub(2), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HubLabel {
    hubs: Vec<NodeId>,
    dists: Vec<Distance>,
}

impl HubLabel {
    /// Creates an empty label.
    pub fn new() -> Self {
        HubLabel::default()
    }

    /// Builds a label from `(hub, distance)` pairs in any order.
    /// Duplicate hubs keep their minimum distance.
    pub fn from_pairs(mut pairs: Vec<(NodeId, Distance)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup_by(|next, kept| next.0 == kept.0);
        let (hubs, dists) = pairs.into_iter().unzip();
        HubLabel { hubs, dists }
    }

    /// Number of hubs.
    pub fn len(&self) -> usize {
        self.hubs.len()
    }

    /// `true` when the label has no hubs.
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// The sorted hub ids.
    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// The distances, aligned with [`HubLabel::hubs`].
    pub fn distances(&self) -> &[Distance] {
        &self.dists
    }

    /// Iterates over `(hub, distance)` pairs in increasing hub order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Distance)> + '_ {
        self.hubs.iter().copied().zip(self.dists.iter().copied())
    }

    /// Distance to hub `h` if `h` is in the label.
    pub fn distance_to_hub(&self, h: NodeId) -> Option<Distance> {
        self.hubs.binary_search(&h).ok().map(|i| self.dists[i])
    }

    /// `true` when `h` is a hub of this label.
    pub fn contains(&self, h: NodeId) -> bool {
        self.hubs.binary_search(&h).is_ok()
    }

    /// Appends a hub; the caller must maintain increasing hub order
    /// (checked in debug builds).
    pub fn push(&mut self, hub: NodeId, dist: Distance) {
        debug_assert!(self.hubs.last().is_none_or(|&last| last < hub));
        self.hubs.push(hub);
        self.dists.push(dist);
    }

    /// The two-label merge-join at the heart of hub labeling: returns
    /// `min over common hubs h of d(u, h) + d(h, v)`, or [`INFINITY`]
    /// when the labels share no hub.
    pub fn join(&self, other: &HubLabel) -> Distance {
        merge_join(&self.hubs, &self.dists, &other.hubs, &other.dists)
    }

    /// Like [`HubLabel::join`] but also reports the witnessing hub.
    pub fn join_with_witness(&self, other: &HubLabel) -> Option<(Distance, NodeId)> {
        merge_join_with_witness(&self.hubs, &self.dists, &other.hubs, &other.dists)
    }

    /// Heap footprint of this label's two vectors, in bytes (by length,
    /// not capacity — the steady-state size once construction is done).
    pub fn heap_bytes(&self) -> usize {
        self.hubs.len() * std::mem::size_of::<NodeId>()
            + self.dists.len() * std::mem::size_of::<Distance>()
    }
}

impl FromIterator<(NodeId, Distance)> for HubLabel {
    fn from_iter<T: IntoIterator<Item = (NodeId, Distance)>>(iter: T) -> Self {
        HubLabel::from_pairs(iter.into_iter().collect())
    }
}

/// A complete hub labeling: one [`HubLabel`] per vertex.
///
/// # Example
///
/// ```
/// use hl_graph::generators;
/// use hl_core::pll::PrunedLandmarkLabeling;
///
/// let g = generators::path(5);
/// let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
/// assert_eq!(labeling.query(0, 4), 4);
/// assert_eq!(labeling.num_nodes(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubLabeling {
    labels: Vec<HubLabel>,
}

impl HubLabeling {
    /// Creates a labeling of `n` empty labels.
    pub fn empty(n: usize) -> Self {
        HubLabeling {
            labels: vec![HubLabel::new(); n],
        }
    }

    /// Wraps per-vertex labels into a labeling.
    pub fn from_labels(labels: Vec<HubLabel>) -> Self {
        HubLabeling { labels }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// The label of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> &HubLabel {
        &self.labels[v as usize]
    }

    /// Mutable access to the label of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_mut(&mut self, v: NodeId) -> &mut HubLabel {
        &mut self.labels[v as usize]
    }

    /// Iterates over all labels in vertex order.
    pub fn iter(&self) -> impl Iterator<Item = &HubLabel> {
        self.labels.iter()
    }

    /// Answers the distance query `u, v` via the merge-join of the two
    /// labels. Returns [`INFINITY`] when the labels share no hub — on a
    /// valid labeling of a connected graph this only happens for
    /// genuinely unreachable pairs.
    pub fn query(&self, u: NodeId, v: NodeId) -> Distance {
        self.labels[u as usize].join(&self.labels[v as usize])
    }

    /// Like [`HubLabeling::query`] but also reports the hub realizing the
    /// minimum.
    pub fn query_with_witness(&self, u: NodeId, v: NodeId) -> Option<(Distance, NodeId)> {
        self.labels[u as usize].join_with_witness(&self.labels[v as usize])
    }

    /// Total number of hubs over all vertices, `Σ_v |S_v|`.
    pub fn total_hubs(&self) -> usize {
        self.labels.iter().map(|l| l.len()).sum()
    }

    /// Average hubs per vertex, `Σ_v |S_v| / n`.
    pub fn average_hubs(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.total_hubs() as f64 / self.labels.len() as f64
    }

    /// Largest label size.
    pub fn max_hubs(&self) -> usize {
        self.labels.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Heap footprint of the nested representation, in bytes: every
    /// per-vertex `HubLabel` header plus its two vectors' contents.
    /// Comparable with [`crate::flat::FlatLabeling::heap_bytes`] — the
    /// difference is exactly what the arena layout saves.
    pub fn heap_bytes(&self) -> usize {
        self.labels.len() * std::mem::size_of::<HubLabel>()
            + self.labels.iter().map(HubLabel::heap_bytes).sum::<usize>()
    }

    /// Ensures every vertex contains itself as a hub at distance 0
    /// (required by several constructions, harmless otherwise).
    pub fn add_self_hubs(&mut self) {
        for (v, label) in self.labels.iter_mut().enumerate() {
            if !label.contains(v as NodeId) {
                let mut pairs: Vec<_> = label.iter().collect();
                pairs.push((v as NodeId, 0));
                *label = HubLabel::from_pairs(pairs);
            }
        }
    }
}

impl FromIterator<HubLabel> for HubLabeling {
    fn from_iter<T: IntoIterator<Item = HubLabel>>(iter: T) -> Self {
        HubLabeling {
            labels: iter.into_iter().collect(),
        }
    }
}

impl LabelingView for HubLabeling {
    fn num_nodes(&self) -> usize {
        HubLabeling::num_nodes(self)
    }

    fn hubs_of(&self, v: NodeId) -> &[NodeId] {
        self.labels[v as usize].hubs()
    }

    fn dists_of(&self, v: NodeId) -> &[Distance] {
        self.labels[v as usize].distances()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let l = HubLabel::from_pairs(vec![(5, 1), (2, 9), (5, 3), (2, 4)]);
        assert_eq!(l.hubs(), &[2, 5]);
        assert_eq!(l.distances(), &[4, 1]);
    }

    #[test]
    fn join_on_shared_hub() {
        let a = HubLabel::from_pairs(vec![(1, 3), (4, 2)]);
        let b = HubLabel::from_pairs(vec![(2, 1), (4, 5)]);
        assert_eq!(a.join(&b), 7);
        assert_eq!(a.join_with_witness(&b), Some((7, 4)));
    }

    #[test]
    fn join_picks_minimum() {
        let a = HubLabel::from_pairs(vec![(1, 10), (2, 1)]);
        let b = HubLabel::from_pairs(vec![(1, 1), (2, 3)]);
        assert_eq!(a.join(&b), 4);
        assert_eq!(a.join_with_witness(&b).unwrap().1, 2);
    }

    #[test]
    fn join_disjoint_is_infinity() {
        let a = HubLabel::from_pairs(vec![(1, 1)]);
        let b = HubLabel::from_pairs(vec![(2, 1)]);
        assert_eq!(a.join(&b), INFINITY);
        assert_eq!(a.join_with_witness(&b), None);
    }

    #[test]
    fn join_empty_labels() {
        let a = HubLabel::new();
        assert!(a.is_empty());
        assert_eq!(a.join(&a), INFINITY);
    }

    #[test]
    fn join_saturates_on_overflow() {
        let a = HubLabel::from_pairs(vec![(0, u64::MAX - 1)]);
        let b = HubLabel::from_pairs(vec![(0, 5)]);
        assert_eq!(a.join(&b), INFINITY);
    }

    #[test]
    fn saturated_sum_is_unreachable_not_witnessed() {
        // Regression (the PR-10 headline bug): two large *finite* label
        // distances saturate to the INFINITY sentinel. The witness path
        // used to hand that sentinel back as a witnessed "finite" minimum;
        // a saturated sum must read exactly like a disjoint hub set.
        let a = HubLabel::from_pairs(vec![(3, u64::MAX - 1)]);
        let b = HubLabel::from_pairs(vec![(3, 5)]);
        assert_eq!(a.join(&b), INFINITY);
        assert_eq!(a.join_with_witness(&b), None);
        // Exactly at the boundary: the sum lands on u64::MAX itself.
        let a = HubLabel::from_pairs(vec![(3, u64::MAX - 5)]);
        assert_eq!(a.join_with_witness(&b), None);
        // One below the sentinel is still a real, witnessed distance.
        let a = HubLabel::from_pairs(vec![(3, u64::MAX - 6)]);
        assert_eq!(a.join_with_witness(&b), Some((u64::MAX - 1, 3)));
        // A saturating pair must not shadow a finite sum on another hub.
        let a = HubLabel::from_pairs(vec![(3, u64::MAX - 1), (7, 10)]);
        let b = HubLabel::from_pairs(vec![(3, 5), (7, 2)]);
        assert_eq!(a.join(&b), 12);
        assert_eq!(a.join_with_witness(&b), Some((12, 7)));
    }

    #[test]
    fn branchless_matches_branchy_reference() {
        // Differential check on adversarial shapes: overlapping, disjoint,
        // nested ranges, duplicates of length 0/1, saturating distances.
        type Pairs = Vec<(NodeId, Distance)>;
        let cases: &[(Pairs, Pairs)] = &[
            (vec![], vec![]),
            (vec![(1, 1)], vec![]),
            (vec![(1, 2), (5, 0)], vec![(1, 9), (5, 1)]),
            (vec![(0, 3), (2, 1), (9, 4)], vec![(1, 1), (2, 3), (8, 0)]),
            (vec![(4, u64::MAX - 1)], vec![(4, 7)]),
            (
                vec![(0, 1), (1, 1), (2, 1), (3, 1)],
                vec![(3, 1), (4, 1), (5, 1)],
            ),
        ];
        for (pa, pb) in cases {
            let a = HubLabel::from_pairs(pa.clone());
            let b = HubLabel::from_pairs(pb.clone());
            assert_eq!(
                merge_join(a.hubs(), a.distances(), b.hubs(), b.distances()),
                merge_join_branchy(a.hubs(), a.distances(), b.hubs(), b.distances()),
                "{pa:?} vs {pb:?}"
            );
        }
    }

    #[test]
    fn gallop_agrees_with_branchy_on_long_skewed_labels() {
        // The coarse stride-skip advance only fires on labels longer than
        // the gallop stride; the fixed cases above never reach it. Seeded
        // random labels far above the stride, balanced and heavily skewed
        // in both directions, pin the galloping kernels against the
        // branchy reference and a naive binary-search witness oracle.
        let mut rng = hl_graph::rng::Xorshift64::seed_from_u64(0xC0FFEE);
        for case in 0..200usize {
            let (la, lb) = match case % 3 {
                0 => (1 + rng.gen_index(600), 1 + rng.gen_index(600)),
                1 => (1 + rng.gen_index(600), 1 + rng.gen_index(20)),
                _ => (1 + rng.gen_index(20), 1 + rng.gen_index(600)),
            };
            let mut make_label = |len: usize| {
                let mut hubs: Vec<NodeId> = Vec::with_capacity(len);
                let mut dists: Vec<Distance> = Vec::with_capacity(len);
                let mut h: u64 = 0;
                for _ in 0..len {
                    h += 1 + rng.gen_index(6) as u64;
                    hubs.push(h as NodeId);
                    dists.push(rng.gen_index(1_000) as Distance);
                }
                (hubs, dists)
            };
            let (ah, ad) = make_label(la);
            let (bh, bd) = make_label(lb);
            assert_eq!(
                merge_join(&ah, &ad, &bh, &bd),
                merge_join_branchy(&ah, &ad, &bh, &bd),
                "case {case}"
            );
            let mut naive: Option<(Distance, NodeId)> = None;
            for (i, &h) in ah.iter().enumerate() {
                if let Ok(j) = bh.binary_search(&h) {
                    let d = ad[i].saturating_add(bd[j]);
                    if d < naive.map_or(INFINITY, |(b, _)| b) {
                        naive = Some((d, h));
                    }
                }
            }
            assert_eq!(
                merge_join_with_witness(&ah, &ad, &bh, &bd),
                naive,
                "witness, case {case}"
            );
        }
    }

    #[test]
    fn push_maintains_order() {
        let mut l = HubLabel::new();
        l.push(1, 5);
        l.push(9, 2);
        assert_eq!(l.len(), 2);
        assert_eq!(l.distance_to_hub(9), Some(2));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn push_rejects_out_of_order() {
        let mut l = HubLabel::new();
        l.push(5, 1);
        l.push(3, 1);
    }

    #[test]
    fn labeling_query_symmetric() {
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (1, 4)]);
        *hl.label_mut(2) = HubLabel::from_pairs(vec![(1, 2), (2, 0)]);
        assert_eq!(hl.query(0, 2), 6);
        assert_eq!(hl.query(2, 0), 6);
    }

    #[test]
    fn stats_accessors() {
        let mut hl = HubLabeling::empty(4);
        *hl.label_mut(1) = HubLabel::from_pairs(vec![(0, 1), (1, 0)]);
        *hl.label_mut(3) = HubLabel::from_pairs(vec![(3, 0)]);
        assert_eq!(hl.total_hubs(), 3);
        assert_eq!(hl.max_hubs(), 2);
        assert!((hl.average_hubs() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn add_self_hubs_idempotent() {
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0)]);
        hl.add_self_hubs();
        hl.add_self_hubs();
        for v in 0..3u32 {
            assert_eq!(hl.label(v).distance_to_hub(v), Some(0));
        }
        assert_eq!(hl.total_hubs(), 3);
        assert_eq!(hl.query(1, 1), 0);
    }

    #[test]
    fn from_iterator_impls() {
        let l: HubLabel = vec![(2u32, 7u64), (0, 1)].into_iter().collect();
        assert_eq!(l.hubs(), &[0, 2]);
        let hl: HubLabeling = vec![l.clone(), l].into_iter().collect();
        assert_eq!(hl.num_nodes(), 2);
    }

    #[test]
    fn view_trait_agrees_with_inherent_api() {
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (1, 4)]);
        *hl.label_mut(2) = HubLabel::from_pairs(vec![(1, 2), (2, 0)]);
        fn via_view<L: LabelingView>(l: &L) -> (Distance, usize, usize, f64) {
            (
                l.query(0, 2),
                l.total_hubs(),
                l.max_hubs(),
                l.average_hubs(),
            )
        }
        let (d, total, max, avg) = via_view(&hl);
        assert_eq!(d, hl.query(0, 2));
        assert_eq!(total, hl.total_hubs());
        assert_eq!(max, hl.max_hubs());
        assert!((avg - hl.average_hubs()).abs() < 1e-12);
        assert_eq!(hl.hubs_of(2), &[1, 2]);
        assert_eq!(hl.dists_of(2), &[2, 0]);
    }

    #[test]
    fn merge_join_slices_match_label_join() {
        let a = HubLabel::from_pairs(vec![(1, 10), (2, 1), (9, 3)]);
        let b = HubLabel::from_pairs(vec![(1, 1), (2, 3), (8, 0)]);
        assert_eq!(
            merge_join(a.hubs(), a.distances(), b.hubs(), b.distances()),
            a.join(&b)
        );
        assert_eq!(
            merge_join_with_witness(a.hubs(), a.distances(), b.hubs(), b.distances()),
            a.join_with_witness(&b)
        );
    }

    #[test]
    fn heap_bytes_counts_vectors_and_headers() {
        let mut hl = HubLabeling::empty(2);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (1, 1)]);
        *hl.label_mut(1) = HubLabel::from_pairs(vec![(1, 0)]);
        let entries = 3;
        let payload = entries * (std::mem::size_of::<NodeId>() + std::mem::size_of::<Distance>());
        assert_eq!(
            hl.heap_bytes(),
            payload + 2 * std::mem::size_of::<HubLabel>()
        );
    }
}
