//! Hub label data structures and the merge-join distance query.

use hl_graph::{Distance, NodeId, INFINITY};

/// The label of a single vertex: its hubs and exact distances to them,
/// sorted by hub id.
///
/// # Example
///
/// ```
/// use hl_core::HubLabel;
///
/// let label = HubLabel::from_pairs(vec![(3, 2), (1, 5), (7, 0)]);
/// assert_eq!(label.len(), 3);
/// assert_eq!(label.distance_to_hub(1), Some(5));
/// assert_eq!(label.distance_to_hub(2), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HubLabel {
    hubs: Vec<NodeId>,
    dists: Vec<Distance>,
}

impl HubLabel {
    /// Creates an empty label.
    pub fn new() -> Self {
        HubLabel::default()
    }

    /// Builds a label from `(hub, distance)` pairs in any order.
    /// Duplicate hubs keep their minimum distance.
    pub fn from_pairs(mut pairs: Vec<(NodeId, Distance)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup_by(|next, kept| next.0 == kept.0);
        let (hubs, dists) = pairs.into_iter().unzip();
        HubLabel { hubs, dists }
    }

    /// Number of hubs.
    pub fn len(&self) -> usize {
        self.hubs.len()
    }

    /// `true` when the label has no hubs.
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// The sorted hub ids.
    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// The distances, aligned with [`HubLabel::hubs`].
    pub fn distances(&self) -> &[Distance] {
        &self.dists
    }

    /// Iterates over `(hub, distance)` pairs in increasing hub order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Distance)> + '_ {
        self.hubs.iter().copied().zip(self.dists.iter().copied())
    }

    /// Distance to hub `h` if `h` is in the label.
    pub fn distance_to_hub(&self, h: NodeId) -> Option<Distance> {
        self.hubs.binary_search(&h).ok().map(|i| self.dists[i])
    }

    /// `true` when `h` is a hub of this label.
    pub fn contains(&self, h: NodeId) -> bool {
        self.hubs.binary_search(&h).is_ok()
    }

    /// Appends a hub; the caller must maintain increasing hub order
    /// (checked in debug builds).
    pub fn push(&mut self, hub: NodeId, dist: Distance) {
        debug_assert!(self.hubs.last().is_none_or(|&last| last < hub));
        self.hubs.push(hub);
        self.dists.push(dist);
    }

    /// The two-label merge-join at the heart of hub labeling: returns
    /// `min over common hubs h of d(u, h) + d(h, v)`, or [`INFINITY`]
    /// when the labels share no hub.
    pub fn join(&self, other: &HubLabel) -> Distance {
        let mut best = INFINITY;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.hubs.len() && j < other.hubs.len() {
            match self.hubs[i].cmp(&other.hubs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let d = self.dists[i].saturating_add(other.dists[j]);
                    if d < best {
                        best = d;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Like [`HubLabel::join`] but also reports the witnessing hub.
    pub fn join_with_witness(&self, other: &HubLabel) -> Option<(Distance, NodeId)> {
        let mut best: Option<(Distance, NodeId)> = None;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.hubs.len() && j < other.hubs.len() {
            match self.hubs[i].cmp(&other.hubs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let d = self.dists[i].saturating_add(other.dists[j]);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, self.hubs[i]));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }
}

impl FromIterator<(NodeId, Distance)> for HubLabel {
    fn from_iter<T: IntoIterator<Item = (NodeId, Distance)>>(iter: T) -> Self {
        HubLabel::from_pairs(iter.into_iter().collect())
    }
}

/// A complete hub labeling: one [`HubLabel`] per vertex.
///
/// # Example
///
/// ```
/// use hl_graph::generators;
/// use hl_core::pll::PrunedLandmarkLabeling;
///
/// let g = generators::path(5);
/// let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
/// assert_eq!(labeling.query(0, 4), 4);
/// assert_eq!(labeling.num_nodes(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubLabeling {
    labels: Vec<HubLabel>,
}

impl HubLabeling {
    /// Creates a labeling of `n` empty labels.
    pub fn empty(n: usize) -> Self {
        HubLabeling {
            labels: vec![HubLabel::new(); n],
        }
    }

    /// Wraps per-vertex labels into a labeling.
    pub fn from_labels(labels: Vec<HubLabel>) -> Self {
        HubLabeling { labels }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// The label of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> &HubLabel {
        &self.labels[v as usize]
    }

    /// Mutable access to the label of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_mut(&mut self, v: NodeId) -> &mut HubLabel {
        &mut self.labels[v as usize]
    }

    /// Iterates over all labels in vertex order.
    pub fn iter(&self) -> impl Iterator<Item = &HubLabel> {
        self.labels.iter()
    }

    /// Answers the distance query `u, v` via the merge-join of the two
    /// labels. Returns [`INFINITY`] when the labels share no hub — on a
    /// valid labeling of a connected graph this only happens for
    /// genuinely unreachable pairs.
    pub fn query(&self, u: NodeId, v: NodeId) -> Distance {
        self.labels[u as usize].join(&self.labels[v as usize])
    }

    /// Like [`HubLabeling::query`] but also reports the hub realizing the
    /// minimum.
    pub fn query_with_witness(&self, u: NodeId, v: NodeId) -> Option<(Distance, NodeId)> {
        self.labels[u as usize].join_with_witness(&self.labels[v as usize])
    }

    /// Total number of hubs over all vertices, `Σ_v |S_v|`.
    pub fn total_hubs(&self) -> usize {
        self.labels.iter().map(|l| l.len()).sum()
    }

    /// Average hubs per vertex, `Σ_v |S_v| / n`.
    pub fn average_hubs(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.total_hubs() as f64 / self.labels.len() as f64
    }

    /// Largest label size.
    pub fn max_hubs(&self) -> usize {
        self.labels.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Ensures every vertex contains itself as a hub at distance 0
    /// (required by several constructions, harmless otherwise).
    pub fn add_self_hubs(&mut self) {
        for (v, label) in self.labels.iter_mut().enumerate() {
            if !label.contains(v as NodeId) {
                let mut pairs: Vec<_> = label.iter().collect();
                pairs.push((v as NodeId, 0));
                *label = HubLabel::from_pairs(pairs);
            }
        }
    }
}

impl FromIterator<HubLabel> for HubLabeling {
    fn from_iter<T: IntoIterator<Item = HubLabel>>(iter: T) -> Self {
        HubLabeling {
            labels: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let l = HubLabel::from_pairs(vec![(5, 1), (2, 9), (5, 3), (2, 4)]);
        assert_eq!(l.hubs(), &[2, 5]);
        assert_eq!(l.distances(), &[4, 1]);
    }

    #[test]
    fn join_on_shared_hub() {
        let a = HubLabel::from_pairs(vec![(1, 3), (4, 2)]);
        let b = HubLabel::from_pairs(vec![(2, 1), (4, 5)]);
        assert_eq!(a.join(&b), 7);
        assert_eq!(a.join_with_witness(&b), Some((7, 4)));
    }

    #[test]
    fn join_picks_minimum() {
        let a = HubLabel::from_pairs(vec![(1, 10), (2, 1)]);
        let b = HubLabel::from_pairs(vec![(1, 1), (2, 3)]);
        assert_eq!(a.join(&b), 4);
        assert_eq!(a.join_with_witness(&b).unwrap().1, 2);
    }

    #[test]
    fn join_disjoint_is_infinity() {
        let a = HubLabel::from_pairs(vec![(1, 1)]);
        let b = HubLabel::from_pairs(vec![(2, 1)]);
        assert_eq!(a.join(&b), INFINITY);
        assert_eq!(a.join_with_witness(&b), None);
    }

    #[test]
    fn join_empty_labels() {
        let a = HubLabel::new();
        assert!(a.is_empty());
        assert_eq!(a.join(&a), INFINITY);
    }

    #[test]
    fn join_saturates_on_overflow() {
        let a = HubLabel::from_pairs(vec![(0, u64::MAX - 1)]);
        let b = HubLabel::from_pairs(vec![(0, 5)]);
        assert_eq!(a.join(&b), INFINITY);
    }

    #[test]
    fn push_maintains_order() {
        let mut l = HubLabel::new();
        l.push(1, 5);
        l.push(9, 2);
        assert_eq!(l.len(), 2);
        assert_eq!(l.distance_to_hub(9), Some(2));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn push_rejects_out_of_order() {
        let mut l = HubLabel::new();
        l.push(5, 1);
        l.push(3, 1);
    }

    #[test]
    fn labeling_query_symmetric() {
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (1, 4)]);
        *hl.label_mut(2) = HubLabel::from_pairs(vec![(1, 2), (2, 0)]);
        assert_eq!(hl.query(0, 2), 6);
        assert_eq!(hl.query(2, 0), 6);
    }

    #[test]
    fn stats_accessors() {
        let mut hl = HubLabeling::empty(4);
        *hl.label_mut(1) = HubLabel::from_pairs(vec![(0, 1), (1, 0)]);
        *hl.label_mut(3) = HubLabel::from_pairs(vec![(3, 0)]);
        assert_eq!(hl.total_hubs(), 3);
        assert_eq!(hl.max_hubs(), 2);
        assert!((hl.average_hubs() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn add_self_hubs_idempotent() {
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0)]);
        hl.add_self_hubs();
        hl.add_self_hubs();
        for v in 0..3u32 {
            assert_eq!(hl.label(v).distance_to_hub(v), Some(0));
        }
        assert_eq!(hl.total_hubs(), 3);
        assert_eq!(hl.query(1, 1), 0);
    }

    #[test]
    fn from_iterator_impls() {
        let l: HubLabel = vec![(2u32, 7u64), (0, 1)].into_iter().collect();
        assert_eq!(l.hubs(), &[0, 2]);
        let hl: HubLabeling = vec![l.clone(), l].into_iter().collect();
        assert_eq!(hl.num_nodes(), 2);
    }
}
