//! Hub label data structures and the merge-join distance query.
//!
//! Two owned representations share one query algorithm:
//!
//! * [`HubLabeling`] — one [`HubLabel`] (two heap `Vec`s) per vertex; the
//!   *construction-time* form, cheap to grow and mutate per vertex;
//! * [`crate::flat::FlatLabeling`] — a single CSR arena; the blessed
//!   *query-time* form, one allocation for the whole labeling.
//!
//! The [`LabelingView`] trait is the borrowed read-only view both forms
//! implement, so verification, statistics, and oracles work on either.

use hl_graph::{Distance, NodeId, INFINITY};

/// The sorted-merge join over two labels given as parallel slices:
/// `min over common hubs h of d(u, h) + d(h, v)`, or [`INFINITY`] when the
/// hub sets are disjoint. Both hub slices must be sorted by hub id, with
/// `a_dists[i]` the distance to `a_hubs[i]` (and likewise for `b`).
///
/// This is *the* hot-path kernel: every representation's `query` bottoms
/// out here, so layout experiments (SIMD, prefetch) have one place to go.
pub fn merge_join(
    a_hubs: &[NodeId],
    a_dists: &[Distance],
    b_hubs: &[NodeId],
    b_dists: &[Distance],
) -> Distance {
    let mut best = INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_hubs.len() && j < b_hubs.len() {
        match a_hubs[i].cmp(&b_hubs[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a_dists[i].saturating_add(b_dists[j]);
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// Like [`merge_join`] but also reports the hub realizing the minimum;
/// `None` when the hub sets are disjoint.
pub fn merge_join_with_witness(
    a_hubs: &[NodeId],
    a_dists: &[Distance],
    b_hubs: &[NodeId],
    b_dists: &[Distance],
) -> Option<(Distance, NodeId)> {
    let mut best: Option<(Distance, NodeId)> = None;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_hubs.len() && j < b_hubs.len() {
        match a_hubs[i].cmp(&b_hubs[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a_dists[i].saturating_add(b_dists[j]);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, a_hubs[i]));
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// A borrowed, read-only view of a complete hub labeling: per-vertex
/// sorted hub/distance slices plus the merge-join query over them.
///
/// Implemented by both the nested [`HubLabeling`] (construction-time form)
/// and the arena [`crate::flat::FlatLabeling`] (query-time form), so code
/// that only *reads* a labeling — verification, statistics, oracles —
/// accepts either without conversion.
pub trait LabelingView {
    /// Number of vertices.
    fn num_nodes(&self) -> usize;

    /// The sorted hub ids of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn hubs_of(&self, v: NodeId) -> &[NodeId];

    /// The distances of vertex `v`, aligned with [`LabelingView::hubs_of`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn dists_of(&self, v: NodeId) -> &[Distance];

    /// Answers the distance query `u, v` via the merge-join; [`INFINITY`]
    /// when the labels share no hub.
    fn query(&self, u: NodeId, v: NodeId) -> Distance {
        merge_join(
            self.hubs_of(u),
            self.dists_of(u),
            self.hubs_of(v),
            self.dists_of(v),
        )
    }

    /// Like [`LabelingView::query`] but also reports the witnessing hub.
    fn query_with_witness(&self, u: NodeId, v: NodeId) -> Option<(Distance, NodeId)> {
        merge_join_with_witness(
            self.hubs_of(u),
            self.dists_of(u),
            self.hubs_of(v),
            self.dists_of(v),
        )
    }

    /// Total number of hubs over all vertices, `Σ_v |S_v|`.
    fn total_hubs(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.hubs_of(v).len())
            .sum()
    }

    /// Average hubs per vertex, `Σ_v |S_v| / n`.
    fn average_hubs(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.total_hubs() as f64 / self.num_nodes() as f64
    }

    /// Largest label size.
    fn max_hubs(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.hubs_of(v).len())
            .max()
            .unwrap_or(0)
    }
}

/// The label of a single vertex: its hubs and exact distances to them,
/// sorted by hub id.
///
/// # Example
///
/// ```
/// use hl_core::HubLabel;
///
/// let label = HubLabel::from_pairs(vec![(3, 2), (1, 5), (7, 0)]);
/// assert_eq!(label.len(), 3);
/// assert_eq!(label.distance_to_hub(1), Some(5));
/// assert_eq!(label.distance_to_hub(2), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HubLabel {
    hubs: Vec<NodeId>,
    dists: Vec<Distance>,
}

impl HubLabel {
    /// Creates an empty label.
    pub fn new() -> Self {
        HubLabel::default()
    }

    /// Builds a label from `(hub, distance)` pairs in any order.
    /// Duplicate hubs keep their minimum distance.
    pub fn from_pairs(mut pairs: Vec<(NodeId, Distance)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup_by(|next, kept| next.0 == kept.0);
        let (hubs, dists) = pairs.into_iter().unzip();
        HubLabel { hubs, dists }
    }

    /// Number of hubs.
    pub fn len(&self) -> usize {
        self.hubs.len()
    }

    /// `true` when the label has no hubs.
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// The sorted hub ids.
    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// The distances, aligned with [`HubLabel::hubs`].
    pub fn distances(&self) -> &[Distance] {
        &self.dists
    }

    /// Iterates over `(hub, distance)` pairs in increasing hub order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Distance)> + '_ {
        self.hubs.iter().copied().zip(self.dists.iter().copied())
    }

    /// Distance to hub `h` if `h` is in the label.
    pub fn distance_to_hub(&self, h: NodeId) -> Option<Distance> {
        self.hubs.binary_search(&h).ok().map(|i| self.dists[i])
    }

    /// `true` when `h` is a hub of this label.
    pub fn contains(&self, h: NodeId) -> bool {
        self.hubs.binary_search(&h).is_ok()
    }

    /// Appends a hub; the caller must maintain increasing hub order
    /// (checked in debug builds).
    pub fn push(&mut self, hub: NodeId, dist: Distance) {
        debug_assert!(self.hubs.last().is_none_or(|&last| last < hub));
        self.hubs.push(hub);
        self.dists.push(dist);
    }

    /// The two-label merge-join at the heart of hub labeling: returns
    /// `min over common hubs h of d(u, h) + d(h, v)`, or [`INFINITY`]
    /// when the labels share no hub.
    pub fn join(&self, other: &HubLabel) -> Distance {
        merge_join(&self.hubs, &self.dists, &other.hubs, &other.dists)
    }

    /// Like [`HubLabel::join`] but also reports the witnessing hub.
    pub fn join_with_witness(&self, other: &HubLabel) -> Option<(Distance, NodeId)> {
        merge_join_with_witness(&self.hubs, &self.dists, &other.hubs, &other.dists)
    }

    /// Heap footprint of this label's two vectors, in bytes (by length,
    /// not capacity — the steady-state size once construction is done).
    pub fn heap_bytes(&self) -> usize {
        self.hubs.len() * std::mem::size_of::<NodeId>()
            + self.dists.len() * std::mem::size_of::<Distance>()
    }
}

impl FromIterator<(NodeId, Distance)> for HubLabel {
    fn from_iter<T: IntoIterator<Item = (NodeId, Distance)>>(iter: T) -> Self {
        HubLabel::from_pairs(iter.into_iter().collect())
    }
}

/// A complete hub labeling: one [`HubLabel`] per vertex.
///
/// # Example
///
/// ```
/// use hl_graph::generators;
/// use hl_core::pll::PrunedLandmarkLabeling;
///
/// let g = generators::path(5);
/// let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
/// assert_eq!(labeling.query(0, 4), 4);
/// assert_eq!(labeling.num_nodes(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubLabeling {
    labels: Vec<HubLabel>,
}

impl HubLabeling {
    /// Creates a labeling of `n` empty labels.
    pub fn empty(n: usize) -> Self {
        HubLabeling {
            labels: vec![HubLabel::new(); n],
        }
    }

    /// Wraps per-vertex labels into a labeling.
    pub fn from_labels(labels: Vec<HubLabel>) -> Self {
        HubLabeling { labels }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// The label of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> &HubLabel {
        &self.labels[v as usize]
    }

    /// Mutable access to the label of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label_mut(&mut self, v: NodeId) -> &mut HubLabel {
        &mut self.labels[v as usize]
    }

    /// Iterates over all labels in vertex order.
    pub fn iter(&self) -> impl Iterator<Item = &HubLabel> {
        self.labels.iter()
    }

    /// Answers the distance query `u, v` via the merge-join of the two
    /// labels. Returns [`INFINITY`] when the labels share no hub — on a
    /// valid labeling of a connected graph this only happens for
    /// genuinely unreachable pairs.
    pub fn query(&self, u: NodeId, v: NodeId) -> Distance {
        self.labels[u as usize].join(&self.labels[v as usize])
    }

    /// Like [`HubLabeling::query`] but also reports the hub realizing the
    /// minimum.
    pub fn query_with_witness(&self, u: NodeId, v: NodeId) -> Option<(Distance, NodeId)> {
        self.labels[u as usize].join_with_witness(&self.labels[v as usize])
    }

    /// Total number of hubs over all vertices, `Σ_v |S_v|`.
    pub fn total_hubs(&self) -> usize {
        self.labels.iter().map(|l| l.len()).sum()
    }

    /// Average hubs per vertex, `Σ_v |S_v| / n`.
    pub fn average_hubs(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.total_hubs() as f64 / self.labels.len() as f64
    }

    /// Largest label size.
    pub fn max_hubs(&self) -> usize {
        self.labels.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Heap footprint of the nested representation, in bytes: every
    /// per-vertex `HubLabel` header plus its two vectors' contents.
    /// Comparable with [`crate::flat::FlatLabeling::heap_bytes`] — the
    /// difference is exactly what the arena layout saves.
    pub fn heap_bytes(&self) -> usize {
        self.labels.len() * std::mem::size_of::<HubLabel>()
            + self.labels.iter().map(HubLabel::heap_bytes).sum::<usize>()
    }

    /// Ensures every vertex contains itself as a hub at distance 0
    /// (required by several constructions, harmless otherwise).
    pub fn add_self_hubs(&mut self) {
        for (v, label) in self.labels.iter_mut().enumerate() {
            if !label.contains(v as NodeId) {
                let mut pairs: Vec<_> = label.iter().collect();
                pairs.push((v as NodeId, 0));
                *label = HubLabel::from_pairs(pairs);
            }
        }
    }
}

impl FromIterator<HubLabel> for HubLabeling {
    fn from_iter<T: IntoIterator<Item = HubLabel>>(iter: T) -> Self {
        HubLabeling {
            labels: iter.into_iter().collect(),
        }
    }
}

impl LabelingView for HubLabeling {
    fn num_nodes(&self) -> usize {
        HubLabeling::num_nodes(self)
    }

    fn hubs_of(&self, v: NodeId) -> &[NodeId] {
        self.labels[v as usize].hubs()
    }

    fn dists_of(&self, v: NodeId) -> &[Distance] {
        self.labels[v as usize].distances()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let l = HubLabel::from_pairs(vec![(5, 1), (2, 9), (5, 3), (2, 4)]);
        assert_eq!(l.hubs(), &[2, 5]);
        assert_eq!(l.distances(), &[4, 1]);
    }

    #[test]
    fn join_on_shared_hub() {
        let a = HubLabel::from_pairs(vec![(1, 3), (4, 2)]);
        let b = HubLabel::from_pairs(vec![(2, 1), (4, 5)]);
        assert_eq!(a.join(&b), 7);
        assert_eq!(a.join_with_witness(&b), Some((7, 4)));
    }

    #[test]
    fn join_picks_minimum() {
        let a = HubLabel::from_pairs(vec![(1, 10), (2, 1)]);
        let b = HubLabel::from_pairs(vec![(1, 1), (2, 3)]);
        assert_eq!(a.join(&b), 4);
        assert_eq!(a.join_with_witness(&b).unwrap().1, 2);
    }

    #[test]
    fn join_disjoint_is_infinity() {
        let a = HubLabel::from_pairs(vec![(1, 1)]);
        let b = HubLabel::from_pairs(vec![(2, 1)]);
        assert_eq!(a.join(&b), INFINITY);
        assert_eq!(a.join_with_witness(&b), None);
    }

    #[test]
    fn join_empty_labels() {
        let a = HubLabel::new();
        assert!(a.is_empty());
        assert_eq!(a.join(&a), INFINITY);
    }

    #[test]
    fn join_saturates_on_overflow() {
        let a = HubLabel::from_pairs(vec![(0, u64::MAX - 1)]);
        let b = HubLabel::from_pairs(vec![(0, 5)]);
        assert_eq!(a.join(&b), INFINITY);
    }

    #[test]
    fn push_maintains_order() {
        let mut l = HubLabel::new();
        l.push(1, 5);
        l.push(9, 2);
        assert_eq!(l.len(), 2);
        assert_eq!(l.distance_to_hub(9), Some(2));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn push_rejects_out_of_order() {
        let mut l = HubLabel::new();
        l.push(5, 1);
        l.push(3, 1);
    }

    #[test]
    fn labeling_query_symmetric() {
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (1, 4)]);
        *hl.label_mut(2) = HubLabel::from_pairs(vec![(1, 2), (2, 0)]);
        assert_eq!(hl.query(0, 2), 6);
        assert_eq!(hl.query(2, 0), 6);
    }

    #[test]
    fn stats_accessors() {
        let mut hl = HubLabeling::empty(4);
        *hl.label_mut(1) = HubLabel::from_pairs(vec![(0, 1), (1, 0)]);
        *hl.label_mut(3) = HubLabel::from_pairs(vec![(3, 0)]);
        assert_eq!(hl.total_hubs(), 3);
        assert_eq!(hl.max_hubs(), 2);
        assert!((hl.average_hubs() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn add_self_hubs_idempotent() {
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0)]);
        hl.add_self_hubs();
        hl.add_self_hubs();
        for v in 0..3u32 {
            assert_eq!(hl.label(v).distance_to_hub(v), Some(0));
        }
        assert_eq!(hl.total_hubs(), 3);
        assert_eq!(hl.query(1, 1), 0);
    }

    #[test]
    fn from_iterator_impls() {
        let l: HubLabel = vec![(2u32, 7u64), (0, 1)].into_iter().collect();
        assert_eq!(l.hubs(), &[0, 2]);
        let hl: HubLabeling = vec![l.clone(), l].into_iter().collect();
        assert_eq!(hl.num_nodes(), 2);
    }

    #[test]
    fn view_trait_agrees_with_inherent_api() {
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (1, 4)]);
        *hl.label_mut(2) = HubLabel::from_pairs(vec![(1, 2), (2, 0)]);
        fn via_view<L: LabelingView>(l: &L) -> (Distance, usize, usize, f64) {
            (
                l.query(0, 2),
                l.total_hubs(),
                l.max_hubs(),
                l.average_hubs(),
            )
        }
        let (d, total, max, avg) = via_view(&hl);
        assert_eq!(d, hl.query(0, 2));
        assert_eq!(total, hl.total_hubs());
        assert_eq!(max, hl.max_hubs());
        assert!((avg - hl.average_hubs()).abs() < 1e-12);
        assert_eq!(hl.hubs_of(2), &[1, 2]);
        assert_eq!(hl.dists_of(2), &[2, 0]);
    }

    #[test]
    fn merge_join_slices_match_label_join() {
        let a = HubLabel::from_pairs(vec![(1, 10), (2, 1), (9, 3)]);
        let b = HubLabel::from_pairs(vec![(1, 1), (2, 3), (8, 0)]);
        assert_eq!(
            merge_join(a.hubs(), a.distances(), b.hubs(), b.distances()),
            a.join(&b)
        );
        assert_eq!(
            merge_join_with_witness(a.hubs(), a.distances(), b.hubs(), b.distances()),
            a.join_with_witness(&b)
        );
    }

    #[test]
    fn heap_bytes_counts_vectors_and_headers() {
        let mut hl = HubLabeling::empty(2);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(0, 0), (1, 1)]);
        *hl.label_mut(1) = HubLabel::from_pairs(vec![(1, 0)]);
        let entries = 3;
        let payload = entries * (std::mem::size_of::<NodeId>() + std::mem::size_of::<Distance>());
        assert_eq!(
            hl.heap_bytes(),
            payload + 2 * std::mem::size_of::<HubLabel>()
        );
    }
}
