//! Slack-pruned ("approximate") PLL.
//!
//! Section 1.1 of the paper describes how the best general-graph distance
//! labelings are built: an *approximate* hub labeling (small additive
//! error) plus explicit correction tables. This module provides the first
//! half: PLL whose pruning tolerates an additive `slack`, trading exactness
//! for smaller labels. Queries never underestimate; the overestimate is
//! bounded empirically (and is 0 for `slack = 0`, where this reduces to
//! ordinary PLL).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hl_graph::{Distance, Graph, NodeId, INFINITY};

use crate::label::{HubLabel, HubLabeling};
use crate::order;

/// Builds a slack-pruned PLL labeling: during the pruned search from each
/// root, vertex `u` is skipped when existing hubs already certify
/// `d(root, u) + slack`, i.e. `query(root, u) <= d(root, u) + slack`.
///
/// `slack = 0` gives exact PLL. Larger slack shrinks labels; the error of
/// the final labeling is *measured*, not guaranteed (repeated pruning can
/// compound), which is exactly what [`measure_additive_error`] and the
/// correction-table scheme in [`crate::corrected`] are for.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertex set.
pub fn approx_pll(g: &Graph, order_vec: Vec<NodeId>, slack: Distance) -> HubLabeling {
    assert!(
        order::is_permutation(&order_vec, g.num_nodes()),
        "PLL order must be a permutation of the vertex set"
    );
    let n = g.num_nodes();
    let mut labels: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n];
    let mut dist_from_root = vec![INFINITY; n];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut dist = vec![INFINITY; n];
    let mut visited: Vec<NodeId> = Vec::new();
    let unit = g.is_unit_weighted();
    for &root in &order_vec {
        for &(h, d) in &labels[root as usize] {
            dist_from_root[h as usize] = d;
            touched.push(h);
        }
        let prune = |labels_u: &[(NodeId, Distance)], du: Distance, table: &[Distance]| {
            let mut best = INFINITY;
            for &(h, d) in labels_u {
                let dr = table[h as usize];
                if dr != INFINITY {
                    best = best.min(dr.saturating_add(d));
                }
            }
            best <= du.saturating_add(slack)
        };
        if unit {
            let mut queue = VecDeque::new();
            dist[root as usize] = 0;
            visited.push(root);
            queue.push_back(root);
            while let Some(u) = queue.pop_front() {
                let du = dist[u as usize];
                if prune(&labels[u as usize], du, &dist_from_root) {
                    continue;
                }
                labels[u as usize].push((root, du));
                for &v in g.neighbor_ids(u) {
                    if dist[v as usize] == INFINITY {
                        dist[v as usize] = du + 1;
                        visited.push(v);
                        queue.push_back(v);
                    }
                }
            }
        } else {
            let mut heap = BinaryHeap::new();
            dist[root as usize] = 0;
            visited.push(root);
            heap.push(Reverse((0u64, root)));
            while let Some(Reverse((du, u))) = heap.pop() {
                if du > dist[u as usize] {
                    continue;
                }
                if prune(&labels[u as usize], du, &dist_from_root) {
                    continue;
                }
                labels[u as usize].push((root, du));
                for (v, w) in g.neighbors(u) {
                    let nd = du.saturating_add(w);
                    if nd < dist[v as usize] {
                        if dist[v as usize] == INFINITY {
                            visited.push(v);
                        }
                        dist[v as usize] = nd;
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
        }
        for &v in &visited {
            dist[v as usize] = INFINITY;
        }
        visited.clear();
        for &h in &touched {
            dist_from_root[h as usize] = INFINITY;
        }
        touched.clear();
    }
    HubLabeling::from_labels(labels.into_iter().map(HubLabel::from_pairs).collect())
}

/// Error profile of an approximate labeling against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorProfile {
    /// Pairs checked.
    pub pairs: usize,
    /// Pairs answered exactly.
    pub exact: usize,
    /// Largest additive overestimate observed.
    pub max_error: u64,
    /// Sum of additive errors (for the mean).
    pub total_error: u64,
}

impl ErrorProfile {
    /// Mean additive error across all checked pairs.
    pub fn mean_error(&self) -> f64 {
        if self.pairs == 0 {
            return 0.0;
        }
        self.total_error as f64 / self.pairs as f64
    }
}

/// Measures the additive error of `labeling` on all pairs (APSP-based).
///
/// # Errors
///
/// Propagates [`hl_graph::GraphError`] from the ground-truth APSP
/// computation (e.g. a distance overflowing its dense-matrix encoding).
///
/// # Panics
///
/// Panics if the labeling ever *under*estimates — stored distances are
/// required to be true distances, so that would indicate corruption.
pub fn measure_additive_error(
    g: &Graph,
    labeling: &HubLabeling,
) -> Result<ErrorProfile, hl_graph::GraphError> {
    let m = hl_graph::apsp::DistanceMatrix::compute(g)?;
    let n = g.num_nodes() as NodeId;
    let mut profile = ErrorProfile::default();
    for u in 0..n {
        for v in u..n {
            let truth = m.distance(u, v);
            let answer = labeling.query(u, v);
            profile.pairs += 1;
            if truth == INFINITY {
                assert_eq!(answer, INFINITY, "phantom path for unreachable pair");
                profile.exact += 1;
                continue;
            }
            assert!(answer >= truth, "labeling underestimated {u}-{v}");
            let err = if answer == INFINITY {
                u64::MAX
            } else {
                answer - truth
            };
            if err == 0 {
                profile.exact += 1;
            } else {
                profile.max_error = profile.max_error.max(err);
                profile.total_error = profile.total_error.saturating_add(err);
            }
        }
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    #[test]
    fn zero_slack_is_exact_pll() {
        let g = generators::connected_gnm(40, 20, 3);
        let ord = order::by_degree(&g);
        let approx = approx_pll(&g, ord.clone(), 0);
        let exact = PrunedLandmarkLabeling::with_order(&g, ord).into_labeling();
        assert_eq!(approx, exact);
    }

    #[test]
    fn slack_shrinks_labels() {
        let g = generators::grid(9, 9);
        let ord = order::by_degree(&g);
        let exact = approx_pll(&g, ord.clone(), 0);
        let loose = approx_pll(&g, ord, 2);
        assert!(
            loose.total_hubs() < exact.total_hubs(),
            "slack 2: {} vs exact {}",
            loose.total_hubs(),
            exact.total_hubs()
        );
    }

    #[test]
    fn error_measured_and_bounded_by_observation() {
        let g = generators::grid(8, 8);
        let labeling = approx_pll(&g, order::by_degree(&g), 2);
        let profile = measure_additive_error(&g, &labeling).unwrap();
        assert!(profile.exact <= profile.pairs);
        // Empirically small; assert a loose sanity bound rather than a
        // theorem (pruning can compound).
        assert!(profile.max_error <= 8, "max error {}", profile.max_error);
        assert!(profile.mean_error() < 2.0);
    }

    #[test]
    fn exact_labeling_has_zero_error_profile() {
        let g = generators::random_tree(50, 2);
        let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let profile = measure_additive_error(&g, &labeling).unwrap();
        assert_eq!(profile.exact, profile.pairs);
        assert_eq!(profile.max_error, 0);
        assert_eq!(profile.mean_error(), 0.0);
    }

    #[test]
    fn weighted_graphs_supported() {
        let g = generators::weighted_grid(6, 6, 4);
        let labeling = approx_pll(&g, order::by_degree(&g), 3);
        let profile = measure_additive_error(&g, &labeling).unwrap();
        assert!(profile.pairs > 0);
    }

    #[test]
    fn disconnected_pairs_stay_unreachable() {
        let g = hl_graph::builder::graph_from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let labeling = approx_pll(&g, order::by_degree(&g), 2);
        assert_eq!(labeling.query(0, 3), INFINITY);
        let profile = measure_additive_error(&g, &labeling).unwrap();
        assert!(profile.pairs > 0);
    }
}
