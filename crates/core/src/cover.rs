//! Verification that a hub labeling is a *shortest-path cover*, i.e. that
//! every distance query is answered exactly.

use hl_graph::apsp::DistanceMatrix;
use hl_graph::dijkstra::shortest_path_distances;
use hl_graph::sync::{into_inner_unpoisoned, lock_unpoisoned};
use hl_graph::{Graph, GraphError, NodeId};

use crate::label::LabelingView;

/// Outcome of a cover verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverReport {
    /// Number of ordered pairs checked.
    pub pairs_checked: usize,
    /// Pairs `(u, v, true_distance, labeling_answer)` where the labeling was
    /// wrong (capped at 32 entries to bound memory).
    pub violations: Vec<(NodeId, NodeId, u64, u64)>,
    /// Total number of violating pairs (not capped).
    pub num_violations: usize,
}

impl CoverReport {
    /// `true` when every checked query was exact.
    pub fn is_exact(&self) -> bool {
        self.num_violations == 0
    }

    /// Fraction of checked pairs answered exactly.
    pub fn accuracy(&self) -> f64 {
        if self.pairs_checked == 0 {
            return 1.0;
        }
        1.0 - self.num_violations as f64 / self.pairs_checked as f64
    }
}

const MAX_RECORDED: usize = 32;

/// Verifies the labeling against ground truth for **all** pairs, computing a
/// full APSP matrix. Quadratic memory — use on small/medium graphs.
///
/// Accepts any [`LabelingView`] — the nested [`crate::HubLabeling`] or
/// the flat arena [`crate::FlatLabeling`] verify identically.
///
/// # Errors
///
/// Propagates [`GraphError`] from the APSP computation (distance overflow).
pub fn verify_exact<L: LabelingView>(g: &Graph, labeling: &L) -> Result<CoverReport, GraphError> {
    let m = DistanceMatrix::compute(g)?;
    let n = g.num_nodes() as NodeId;
    let mut report = CoverReport {
        pairs_checked: 0,
        violations: Vec::new(),
        num_violations: 0,
    };
    for u in 0..n {
        for v in u..n {
            let truth = m.distance(u, v);
            let answer = labeling.query(u, v);
            report.pairs_checked += 1;
            if answer != truth {
                report.num_violations += 1;
                if report.violations.len() < MAX_RECORDED {
                    report.violations.push((u, v, truth, answer));
                }
            }
        }
    }
    Ok(report)
}

/// Verifies the labeling from `sources` only (each source against every
/// vertex), running one SSSP per source — linear memory, suitable for large
/// graphs.
pub fn verify_from_sources<L: LabelingView>(
    g: &Graph,
    labeling: &L,
    sources: &[NodeId],
) -> CoverReport {
    let mut report = CoverReport {
        pairs_checked: 0,
        violations: Vec::new(),
        num_violations: 0,
    };
    for &s in sources {
        let dist = shortest_path_distances(g, s);
        for v in 0..g.num_nodes() as NodeId {
            let truth = dist[v as usize];
            let answer = labeling.query(s, v);
            report.pairs_checked += 1;
            if answer != truth {
                report.num_violations += 1;
                if report.violations.len() < MAX_RECORDED {
                    report.violations.push((s, v, truth, answer));
                }
            }
        }
    }
    report
}

/// Parallel variant of [`verify_from_sources`]: one SSSP per source,
/// fanned out over the available cores. Violation *examples* are capped as
/// in the sequential version (which sources' examples survive depends on
/// thread timing, but counts are exact).
pub fn verify_from_sources_parallel<L: LabelingView + Sync>(
    g: &Graph,
    labeling: &L,
    sources: &[NodeId],
) -> CoverReport {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(sources.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let merged = std::sync::Mutex::new(CoverReport {
        pairs_checked: 0,
        violations: Vec::new(),
        num_violations: 0,
    });
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= sources.len() {
                    break;
                }
                let local = verify_from_sources(g, labeling, &sources[i..=i]);
                let mut m = lock_unpoisoned(&merged);
                m.pairs_checked += local.pairs_checked;
                m.num_violations += local.num_violations;
                for v in local.violations {
                    if m.violations.len() < MAX_RECORDED {
                        m.violations.push(v);
                    }
                }
            });
        }
    });
    into_inner_unpoisoned(merged)
}

/// Verifies that the labeling is *admissible*: every stored hub distance
/// equals the true graph distance. (A labeling can be admissible without
/// being a cover, but never the other way around for correct stores.)
pub fn verify_hub_distances<L: LabelingView>(g: &Graph, labeling: &L, sources: &[NodeId]) -> bool {
    for &s in sources {
        let dist = shortest_path_distances(g, s);
        for (&h, &d) in labeling.hubs_of(s).iter().zip(labeling.dists_of(s)) {
            if dist[h as usize] != d {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{HubLabel, HubLabeling};
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    #[test]
    fn pll_is_exact_on_grid() {
        let g = generators::grid(5, 5);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let report = verify_exact(&g, &hl).unwrap();
        assert!(report.is_exact());
        assert_eq!(report.pairs_checked, 25 * 26 / 2);
        assert_eq!(report.accuracy(), 1.0);
    }

    #[test]
    fn broken_labeling_detected() {
        let g = generators::path(4);
        // Labeling where everything claims distance via hub 0 only.
        let mut hl = HubLabeling::empty(4);
        for v in 0..4u32 {
            *hl.label_mut(v) = HubLabel::from_pairs(vec![(0, v as u64)]);
        }
        // query(1,2) = 1 + 2 = 3, but true distance is 1.
        let report = verify_exact(&g, &hl).unwrap();
        assert!(!report.is_exact());
        assert!(report.accuracy() < 1.0);
        assert!(report
            .violations
            .iter()
            .any(|&(u, v, t, a)| (u, v) == (1, 2) && t == 1 && a == 3));
    }

    #[test]
    fn sampled_verification_agrees() {
        let g = generators::connected_gnm(60, 40, 17);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let full = verify_exact(&g, &hl).unwrap();
        let sampled = verify_from_sources(&g, &hl, &[0, 10, 20, 30]);
        assert!(full.is_exact());
        assert!(sampled.is_exact());
        assert_eq!(sampled.pairs_checked, 4 * 60);
    }

    #[test]
    fn parallel_verification_matches_sequential() {
        let g = generators::connected_gnm(80, 40, 21);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let sources: Vec<_> = (0..80u32).collect();
        let seq = verify_from_sources(&g, &hl, &sources);
        let par = verify_from_sources_parallel(&g, &hl, &sources);
        assert_eq!(seq.pairs_checked, par.pairs_checked);
        assert_eq!(seq.num_violations, par.num_violations);
        assert!(par.is_exact());
    }

    #[test]
    fn parallel_verification_counts_violations() {
        let g = generators::path(6);
        let mut hl = HubLabeling::empty(6);
        hl.add_self_hubs(); // covers only the diagonal
        let sources: Vec<_> = (0..6u32).collect();
        let seq = verify_from_sources(&g, &hl, &sources);
        let par = verify_from_sources_parallel(&g, &hl, &sources);
        assert_eq!(seq.num_violations, par.num_violations);
        assert!(par.num_violations > 0);
    }

    #[test]
    fn hub_distances_admissible() {
        let g = generators::weighted_grid(4, 4, 3);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let sources: Vec<_> = (0..16u32).collect();
        assert!(verify_hub_distances(&g, &hl, &sources));
    }

    #[test]
    fn inadmissible_detected() {
        let g = generators::path(3);
        let mut hl = HubLabeling::empty(3);
        *hl.label_mut(0) = HubLabel::from_pairs(vec![(1, 99)]);
        assert!(!verify_hub_distances(&g, &hl, &[0]));
    }

    #[test]
    fn flat_form_verifies_identically() {
        let g = generators::grid(5, 5);
        let nested = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let flat = crate::flat::FlatLabeling::from_labeling(&nested);
        let report = verify_exact(&g, &flat).unwrap();
        assert!(report.is_exact());
        let sources: Vec<_> = (0..25u32).collect();
        assert!(verify_from_sources(&g, &flat, &sources).is_exact());
        assert!(verify_from_sources_parallel(&g, &flat, &sources).is_exact());
        assert!(verify_hub_distances(&g, &flat, &sources));
    }

    #[test]
    fn empty_labeling_on_single_vertex() {
        let g = generators::path(1);
        let mut hl = HubLabeling::empty(1);
        hl.add_self_hubs();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }
}
