//! Approximate hub labels + correction tables = exact labeling — the
//! architecture §1.1 of the paper describes for the state-of-the-art
//! general-graph distance labelings ("constructing such (small)
//! approximate hub-sets and complementing it with explicit correction
//! tables … suffices").
//!
//! The corrected labeling stores, per vertex `u`, the approximate hub
//! label plus a sorted table of `(v, true_distance)` for every `v` whose
//! query through the approximate labels is wrong. The query first checks
//! both endpoints' correction tables, then falls back to the hub join —
//! exact by construction, with total correction size equal to the number
//! of erroneous pairs (each stored on the smaller-id side).

use hl_graph::apsp::DistanceMatrix;
use hl_graph::{Distance, Graph, GraphError, NodeId};

use crate::approx::approx_pll;
use crate::label::HubLabeling;
use crate::order;

/// An exact labeling assembled from approximate hubs + corrections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectedLabeling {
    hubs: HubLabeling,
    /// Per-vertex sorted `(partner, true_distance)` corrections; a pair is
    /// stored once, on its smaller endpoint.
    corrections: Vec<Vec<(NodeId, Distance)>>,
}

impl CorrectedLabeling {
    /// Builds the corrected labeling from slack-pruned PLL.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the APSP ground-truth computation.
    pub fn build(g: &Graph, slack: Distance, seed: u64) -> Result<Self, GraphError> {
        let ord = if seed == 0 {
            order::by_degree(g)
        } else {
            order::random(g, seed)
        };
        let hubs = approx_pll(g, ord, slack);
        let truth = DistanceMatrix::compute(g)?;
        let n = g.num_nodes() as NodeId;
        let mut corrections: Vec<Vec<(NodeId, Distance)>> = vec![Vec::new(); n as usize];
        for u in 0..n {
            for v in u..n {
                if hubs.query(u, v) != truth.distance(u, v) {
                    corrections[u as usize].push((v, truth.distance(u, v)));
                }
            }
        }
        Ok(CorrectedLabeling { hubs, corrections })
    }

    /// Exact distance query: corrections first, hub join otherwise.
    pub fn query(&self, u: NodeId, v: NodeId) -> Distance {
        let (lo, hi) = (u.min(v), u.max(v));
        if let Ok(i) = self.corrections[lo as usize].binary_search_by_key(&hi, |&(p, _)| p) {
            return self.corrections[lo as usize][i].1;
        }
        self.hubs.query(u, v)
    }

    /// The underlying approximate hub labeling.
    pub fn hubs(&self) -> &HubLabeling {
        &self.hubs
    }

    /// Total correction entries (= number of erroneous pairs).
    pub fn num_corrections(&self) -> usize {
        self.corrections.iter().map(|c| c.len()).sum()
    }

    /// Size accounting: `(total hubs, total corrections)` — the tradeoff
    /// the slack parameter controls.
    pub fn size_breakdown(&self) -> (usize, usize) {
        (self.hubs.total_hubs(), self.num_corrections())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::generators;

    fn check_exact(g: &Graph, c: &CorrectedLabeling) {
        let m = DistanceMatrix::compute(g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(c.query(u, v), m.distance(u, v), "pair {u},{v}");
            }
        }
    }

    #[test]
    fn exact_at_every_slack() {
        let g = generators::grid(7, 7);
        for slack in [0u64, 1, 2, 4] {
            let c = CorrectedLabeling::build(&g, slack, 0).unwrap();
            check_exact(&g, &c);
        }
    }

    #[test]
    fn zero_slack_needs_no_corrections() {
        let g = generators::connected_gnm(40, 20, 6);
        let c = CorrectedLabeling::build(&g, 0, 0).unwrap();
        assert_eq!(c.num_corrections(), 0);
        check_exact(&g, &c);
    }

    #[test]
    fn slack_trades_hubs_for_corrections() {
        let g = generators::grid(9, 9);
        let tight = CorrectedLabeling::build(&g, 0, 0).unwrap();
        let loose = CorrectedLabeling::build(&g, 2, 0).unwrap();
        let (h0, c0) = tight.size_breakdown();
        let (h2, c2) = loose.size_breakdown();
        assert!(h2 < h0, "hubs must shrink: {h2} vs {h0}");
        assert!(c2 > c0, "corrections must appear: {c2} vs {c0}");
        check_exact(&g, &loose);
    }

    #[test]
    fn exact_on_weighted_and_disconnected() {
        let g = generators::weighted_grid(5, 5, 8);
        check_exact(&g, &CorrectedLabeling::build(&g, 3, 0).unwrap());
        let d = hl_graph::builder::graph_from_edges(6, &[(0, 1), (2, 3)]).unwrap();
        check_exact(&d, &CorrectedLabeling::build(&d, 2, 0).unwrap());
    }

    #[test]
    fn random_order_also_exact() {
        let g = generators::connected_gnm(35, 18, 4);
        check_exact(&g, &CorrectedLabeling::build(&g, 2, 99).unwrap());
    }
}
