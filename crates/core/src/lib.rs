//! Hub labelings (2-hop covers) — the primary object of the paper
//! *Hardness of exact distance queries in sparse graphs through hub
//! labeling* (Kosowski, Uznański, Viennot; PODC 2019).
//!
//! A **hub labeling** assigns to every vertex `v` a hubset `S_v ⊆ V`
//! together with the exact distances `d(v, h)` for `h ∈ S_v`, such that for
//! every pair `u, v` some common hub `w ∈ S_u ∩ S_v` lies on a shortest
//! `u–v` path. Distance queries are then resolved as
//! `min_{w ∈ S_u ∩ S_v} d(u, w) + d(w, v)` by merging two sorted lists.
//!
//! The crate provides:
//!
//! * [`label`] — the labeling data structures, the merge-join query, and
//!   the [`LabelingView`] borrowed view both representations implement;
//! * [`flat`] — [`FlatLabeling`], the single-arena CSR layout that is the
//!   canonical query-time representation (serving code holds this form);
//! * [`compact`] — [`CompactLabeling`], the byte-tuned arena (u16/u32
//!   distance lanes, delta-coded hub ids decoded on the fly);
//! * [`freq`] — hub-frequency label reordering, a layout pass that moves
//!   hot hubs to the front of every run;
//! * [`cover`] — verification that a labeling answers every query exactly;
//! * [`pll`] — Pruned Landmark Labeling (the canonical practical
//!   construction, exact by design);
//! * [`greedy`] — the greedy 2-hop cover of Cohen et al. for small graphs;
//! * [`random_threshold`] — the `O(n/D · log D)`-far-hubs construction in
//!   the style of Alstrup et al. (ADKP16), the baseline the paper
//!   discusses for sparse graphs;
//! * [`rs_based`] — **the construction of Theorem 4.1**, which routes
//!   covering through induced matchings and yields average hubset size
//!   `O(n / RS(n)^{1/c})` on bounded-degree graphs;
//! * [`monotone`] — monotone hubsets and the `S*` ancestor-closure
//!   accounting used by the lower bound of Theorem 2.1;
//! * [`tree`] — centroid-decomposition labeling with `O(log n)` hubs per
//!   vertex on trees;
//! * [`order`], [`stats`] — vertex orderings and size statistics.
//!
//! # Example
//!
//! ```
//! use hl_graph::generators;
//! use hl_core::pll::PrunedLandmarkLabeling;
//! use hl_core::cover::verify_exact;
//!
//! let g = generators::grid(4, 4);
//! let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
//! assert!(verify_exact(&g, &labeling).unwrap().is_exact());
//! assert_eq!(labeling.query(0, 15), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod compact;
pub mod corrected;
pub mod cover;
pub mod flat;
pub mod freq;
pub mod greedy;
pub mod hierarchical;
pub mod io;
pub mod label;
pub mod minimize;
pub mod monotone;
pub mod order;
pub mod pll;
pub mod psl;
pub mod random_threshold;
pub mod rs_based;
pub mod separator_labeling;
pub mod stats;
pub mod tree;

pub use compact::{CompactDists, CompactError, CompactLabeling, HubDeltas};
pub use flat::{FlatLabeling, FlatLayoutError};
pub use label::{HubLabel, HubLabeling, LabelingView};
pub use order::{OrderError, VertexOrder};
pub use stats::LabelingStats;
