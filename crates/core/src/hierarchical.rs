//! Canonical Hierarchical Hub Labeling (HHL), after Abraham–Delling–
//! Goldberg–Werneck (ESA 2012), which the paper cites as one of the
//! foundational hub-labeling frameworks.
//!
//! Given a total importance order on the vertices, the *canonical* labeling
//! puts `h` into `S_v` exactly when no strictly more important vertex lies
//! on any shortest `v–h` path. For every pair, the most important valid hub
//! is then present on both sides, so the labeling is exact for *any* order.
//! PLL with the same order produces a subset of the canonical labeling
//! (it is the minimal hierarchical labeling); the gap between the two is an
//! ablation the benches chart.
//!
//! The implementation is APSP-based (`O(n³)` time) and intended for the
//! small/medium instances used in experiments.

use hl_graph::apsp::DistanceMatrix;
use hl_graph::{Graph, GraphError, NodeId, INFINITY};

use crate::label::{HubLabel, HubLabeling};
use crate::order;

/// Builds the canonical hierarchical labeling for `order` (earlier in the
/// slice = more important).
///
/// # Errors
///
/// Propagates [`GraphError`] from the APSP computation.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertex set.
pub fn canonical_hhl(g: &Graph, order: &[NodeId]) -> Result<HubLabeling, GraphError> {
    assert!(
        order::is_permutation(order, g.num_nodes()),
        "HHL order must be a permutation of the vertex set"
    );
    let n = g.num_nodes();
    let m = DistanceMatrix::compute(g)?;
    // rank[v] = importance position (0 = most important).
    let mut rank = vec![0u32; n];
    for (pos, &v) in order.iter().enumerate() {
        rank[v as usize] = pos as u32;
    }
    let mut labels: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); n];
    for v in 0..n as NodeId {
        for h in 0..n as NodeId {
            let dvh = m.distance(v, h);
            if dvh == INFINITY {
                continue;
            }
            // h enters S_v unless a strictly more important vertex lies on
            // some shortest v-h path.
            let dominated = (0..n as NodeId).any(|x| {
                rank[x as usize] < rank[h as usize]
                    && m.distance(v, x) != INFINITY
                    && m.distance(x, h) != INFINITY
                    && m.distance(v, x) + m.distance(x, h) == dvh
            });
            if !dominated {
                labels[v as usize].push((h, dvh));
            }
        }
    }
    Ok(HubLabeling::from_labels(
        labels.into_iter().map(HubLabel::from_pairs).collect(),
    ))
}

/// Convenience: canonical HHL with the decreasing-degree order.
///
/// # Errors
///
/// Propagates [`GraphError`] from the APSP computation.
pub fn canonical_hhl_by_degree(g: &Graph) -> Result<HubLabeling, GraphError> {
    canonical_hhl(g, &order::by_degree(g))
}

/// Checks the *hierarchy* property: `h ∈ S_v` implies `rank(h) <= rank(v)`
/// is **not** required in general, but the nesting property is: if
/// `h ∈ S_v` then `S_h ∩ {more important than h}`-hubs of `v` route through
/// — here we verify the simpler defining property directly: no hub of `v`
/// is dominated by a more important vertex on a shortest path.
pub fn is_hierarchical(g: &Graph, labeling: &HubLabeling, order: &[NodeId]) -> bool {
    let n = g.num_nodes();
    let Ok(m) = DistanceMatrix::compute(g) else {
        return false;
    };
    let mut rank = vec![0u32; n];
    for (pos, &v) in order.iter().enumerate() {
        rank[v as usize] = pos as u32;
    }
    for v in 0..n as NodeId {
        for (h, dvh) in labeling.label(v).iter() {
            let dominated = (0..n as NodeId).any(|x| {
                rank[x as usize] < rank[h as usize]
                    && m.distance(v, x) != INFINITY
                    && m.distance(x, h) != INFINITY
                    && m.distance(v, x) + m.distance(x, h) == dvh
            });
            if dominated {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact;
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    #[test]
    fn exact_on_families() {
        for g in [
            generators::path(12),
            generators::cycle(11),
            generators::grid(4, 5),
            generators::connected_gnm(30, 15, 3),
            generators::weighted_grid(4, 4, 2),
        ] {
            let hl = canonical_hhl_by_degree(&g).unwrap();
            assert!(verify_exact(&g, &hl).unwrap().is_exact());
        }
    }

    #[test]
    fn exact_for_any_order() {
        let g = generators::connected_gnm(25, 12, 8);
        for seed in 0..4 {
            let ord = order::random(&g, seed);
            let hl = canonical_hhl(&g, &ord).unwrap();
            assert!(verify_exact(&g, &hl).unwrap().is_exact(), "seed {seed}");
            assert!(is_hierarchical(&g, &hl, &ord));
        }
    }

    #[test]
    fn pll_is_subset_of_canonical() {
        let g = generators::connected_gnm(30, 18, 5);
        let ord = order::by_degree(&g);
        let canonical = canonical_hhl(&g, &ord).unwrap();
        let pll = PrunedLandmarkLabeling::with_order(&g, ord).into_labeling();
        for v in 0..30u32 {
            for (h, d) in pll.label(v).iter() {
                assert_eq!(
                    canonical.label(v).distance_to_hub(h),
                    Some(d),
                    "PLL hub ({v},{h}) missing from canonical HHL"
                );
            }
        }
        assert!(pll.total_hubs() <= canonical.total_hubs());
    }

    #[test]
    fn pll_equals_canonical_hhl() {
        // Theory (Abraham et al. 2012, Akiba et al. 2013): for a fixed
        // total order the minimal hierarchical labeling is unique and PLL
        // computes it — so the two independent implementations must agree
        // exactly. A strong cross-validation of both.
        for seed in [3u64, 14, 15] {
            let g = generators::connected_gnm(28, 14, seed);
            let ord = order::by_degree(&g);
            let canonical = canonical_hhl(&g, &ord).unwrap();
            let pll = PrunedLandmarkLabeling::with_order(&g, ord).into_labeling();
            assert_eq!(canonical, pll, "seed {seed}");
        }
    }

    #[test]
    fn most_important_vertex_is_universal_hub() {
        let g = generators::grid(4, 4);
        let ord = order::by_degree(&g);
        let top = ord[0];
        let hl = canonical_hhl(&g, &ord).unwrap();
        for v in 0..16u32 {
            assert!(hl.label(v).contains(top));
        }
    }

    #[test]
    fn disconnected_graphs_fine() {
        let g = hl_graph::builder::graph_from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let hl = canonical_hhl_by_degree(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn rejects_bad_order() {
        let g = generators::path(3);
        let result = std::panic::catch_unwind(|| canonical_hhl(&g, &[0, 0, 1]));
        assert!(result.is_err());
    }
}
