//! Hub labeling for trees via centroid decomposition (Peleg-style), giving
//! `O(log n)` hubs per vertex — the classical tight construction the paper
//! cites for the tree case (`Θ(log² n)` bits after encoding).
//!
//! Every vertex stores, as hubs, the centroids of all decomposition pieces
//! containing it. For any pair `u, v`, the first centroid separating them
//! (the highest one on their path in the centroid tree) lies on the unique
//! tree shortest path, so the labeling is exact.

use hl_graph::dijkstra::shortest_path_distances;
use hl_graph::{Graph, GraphError, NodeId};

use crate::label::{HubLabel, HubLabeling};

/// Builds the centroid-decomposition labeling of a tree.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `g` is not a tree
/// (`m != n - 1` or disconnected).
///
/// # Example
///
/// ```
/// use hl_graph::generators;
/// use hl_core::tree::centroid_labeling;
///
/// # fn main() -> Result<(), hl_graph::GraphError> {
/// let g = generators::balanced_binary_tree(5); // 63 vertices
/// let hl = centroid_labeling(&g)?;
/// assert!(hl.max_hubs() as u32 <= 7, "about log2(n) hubs per vertex");
/// # Ok(())
/// # }
/// ```
pub fn centroid_labeling(g: &Graph) -> Result<HubLabeling, GraphError> {
    let n = g.num_nodes();
    if n == 0 {
        return Ok(HubLabeling::empty(0));
    }
    if g.num_edges() != n - 1 || !hl_graph::properties::is_connected(g) {
        return Err(GraphError::InvalidParameters {
            reason: "centroid labeling requires a connected tree".into(),
        });
    }
    let mut removed = vec![false; n];
    let mut pairs: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); n];
    // Iterative decomposition over components, each processed by finding its
    // centroid, labeling all its vertices with distances to the centroid,
    // then recursing on the split parts.
    let mut stack: Vec<NodeId> = vec![0];
    while let Some(start) = stack.pop() {
        if removed[start as usize] {
            continue;
        }
        let component = collect_component(g, start, &removed);
        let centroid = find_centroid(g, &component, &removed);
        // Distances within the component from the centroid.
        let dist = component_distances(g, centroid, &removed);
        for &v in &component {
            pairs[v as usize].push((centroid, dist[v as usize]));
        }
        removed[centroid as usize] = true;
        for &nb in g.neighbor_ids(centroid) {
            if !removed[nb as usize] {
                stack.push(nb);
            }
        }
    }
    Ok(HubLabeling::from_labels(
        pairs.into_iter().map(HubLabel::from_pairs).collect(),
    ))
}

fn collect_component(g: &Graph, start: NodeId, removed: &[bool]) -> Vec<NodeId> {
    let mut seen = vec![start];
    let mut mark = std::collections::HashSet::new();
    mark.insert(start);
    let mut i = 0;
    while i < seen.len() {
        let u = seen[i];
        i += 1;
        for &v in g.neighbor_ids(u) {
            if !removed[v as usize] && mark.insert(v) {
                seen.push(v);
            }
        }
    }
    seen
}

fn find_centroid(g: &Graph, component: &[NodeId], removed: &[bool]) -> NodeId {
    let total = component.len();
    let in_comp: std::collections::HashSet<NodeId> = component.iter().copied().collect();
    // Subtree sizes via a rooted DFS from component[0].
    let root = component[0];
    let mut order: Vec<NodeId> = Vec::with_capacity(total);
    let mut parent: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    parent.insert(root, root);
    let mut stack = vec![root];
    while let Some(u) = stack.pop() {
        order.push(u);
        for &v in g.neighbor_ids(u) {
            if !removed[v as usize] && in_comp.contains(&v) && !parent.contains_key(&v) {
                parent.insert(v, u);
                stack.push(v);
            }
        }
    }
    let mut size: std::collections::HashMap<NodeId, usize> =
        component.iter().map(|&v| (v, 1)).collect();
    for &u in order.iter().rev() {
        let p = parent[&u];
        if p != u {
            let su = size.get(&u).copied().unwrap_or(0);
            *size.entry(p).or_insert(0) += su;
        }
    }
    // The centroid minimizes the largest piece after removal.
    let mut best = root;
    let mut best_piece = usize::MAX;
    for &v in component {
        let mut largest = total - size[&v]; // the "up" piece
        for &c in g.neighbor_ids(v) {
            if in_comp.contains(&c) && parent.get(&c) == Some(&v) {
                largest = largest.max(size[&c]);
            }
        }
        if largest < best_piece || (largest == best_piece && v < best) {
            best_piece = largest;
            best = v;
        }
    }
    best
}

fn component_distances(g: &Graph, source: NodeId, removed: &[bool]) -> Vec<u64> {
    // BFS/Dijkstra restricted to non-removed vertices. For simplicity build
    // on the full-graph SSSP when nothing is removed yet; otherwise run a
    // small restricted Dijkstra here.
    if removed.iter().all(|&r| !r) {
        return shortest_path_distances(g, source);
    }
    let n = g.num_nodes();
    let mut dist = vec![u64::MAX; n];
    let mut heap = std::collections::BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(std::cmp::Reverse((0u64, source)));
    while let Some(std::cmp::Reverse((du, u))) = heap.pop() {
        if du > dist[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            if removed[v as usize] {
                continue;
            }
            let nd = du + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(std::cmp::Reverse((nd, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact;
    use hl_graph::generators;

    #[test]
    fn exact_on_path() {
        let g = generators::path(17);
        let hl = centroid_labeling(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_balanced_tree() {
        let g = generators::balanced_binary_tree(6);
        let hl = centroid_labeling(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_random_trees() {
        for seed in 0..5 {
            let g = generators::random_tree(90, seed);
            let hl = centroid_labeling(&g).unwrap();
            assert!(verify_exact(&g, &hl).unwrap().is_exact(), "seed {seed}");
        }
    }

    #[test]
    fn exact_on_star_and_caterpillar() {
        for g in [generators::star(33), generators::caterpillar(10, 4)] {
            let hl = centroid_labeling(&g).unwrap();
            assert!(verify_exact(&g, &hl).unwrap().is_exact());
        }
    }

    #[test]
    fn logarithmic_label_size() {
        // Centroid decomposition halves components, so every vertex gains
        // at most ceil(log2 n) + 1 hubs.
        let g = generators::path(256);
        let hl = centroid_labeling(&g).unwrap();
        assert!(hl.max_hubs() <= 9, "max = {}", hl.max_hubs());
        let g = generators::random_tree(500, 3);
        let hl = centroid_labeling(&g).unwrap();
        assert!(hl.max_hubs() <= 10, "max = {}", hl.max_hubs());
    }

    #[test]
    fn rejects_non_trees() {
        assert!(centroid_labeling(&generators::cycle(5)).is_err());
        let disconnected = hl_graph::builder::graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(centroid_labeling(&disconnected).is_err());
    }

    #[test]
    fn single_vertex_tree() {
        let g = generators::path(1);
        let hl = centroid_labeling(&g).unwrap();
        assert_eq!(hl.label(0).hubs(), &[0]);
    }

    #[test]
    fn two_vertex_tree() {
        let g = generators::path(2);
        let hl = centroid_labeling(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
        assert_eq!(hl.query(0, 1), 1);
    }
}
