//! Greedy 2-hop cover (Cohen, Halperin, Kaplan, Zwick; SICOMP 2003).
//!
//! Repeatedly pick the hub vertex maximizing the number of still-uncovered
//! pairs it covers, and add it to the labels of the two "sides" it serves.
//! This is the classical `O(log n)`-approximation of the optimal 2-hop
//! cover. The implementation is the straightforward cubic one, intended as
//! a *quality* baseline on small instances — it gives a near-optimal size
//! yardstick against which PLL and the Theorem 4.1 construction are
//! compared.
//!
//! This simplified variant re-evaluates marginal coverage each round
//! (`O(n)` rounds × `O(n²)` evaluation), fine for `n` up to a few hundred.

use hl_graph::apsp::DistanceMatrix;
use hl_graph::{Graph, GraphError, NodeId, INFINITY};

use crate::label::{HubLabel, HubLabeling};

/// Greedy 2-hop cover construction.
///
/// # Errors
///
/// Propagates [`GraphError`] from the APSP computation.
///
/// # Example
///
/// ```
/// use hl_graph::generators;
/// use hl_core::greedy::greedy_cover;
/// use hl_core::cover::verify_exact;
///
/// # fn main() -> Result<(), hl_graph::GraphError> {
/// let g = generators::cycle(8);
/// let hl = greedy_cover(&g)?;
/// assert!(verify_exact(&g, &hl)?.is_exact());
/// # Ok(())
/// # }
/// ```
pub fn greedy_cover(g: &Graph) -> Result<HubLabeling, GraphError> {
    let n = g.num_nodes();
    let m = DistanceMatrix::compute(g)?;
    // covered[u][v] for u <= v, flattened.
    let idx = |u: usize, v: usize| {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        a * n + b
    };
    let mut covered = vec![false; n * n];
    let mut uncovered = 0usize;
    let mut labels: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); n];
    for u in 0..n {
        // Self-hubs cover the diagonal for free.
        labels[u].push((u as NodeId, 0));
        covered[idx(u, u)] = true;
        for v in (u + 1)..n {
            if m.distance(u as NodeId, v as NodeId) == INFINITY {
                covered[idx(u, v)] = true; // unreachable pairs need no hub
            } else {
                uncovered += 1;
            }
        }
    }
    // Each round picks the hub h maximizing the number of still-uncovered
    // pairs (u, v) with h on a shortest u-v path, then adds h exactly to the
    // labels of the vertices participating in those pairs.
    while uncovered > 0 {
        let mut best_h = 0usize;
        let mut best_gain = 0usize;
        for h in 0..n {
            let mut gain = 0usize;
            let hrow = m.row(h as NodeId);
            for u in 0..n {
                let duh = hrow[u];
                if duh == u32::MAX {
                    continue;
                }
                for v in (u + 1)..n {
                    if covered[idx(u, v)] {
                        continue;
                    }
                    let dhv = hrow[v];
                    if dhv != u32::MAX
                        && duh as u64 + dhv as u64 == m.distance(u as NodeId, v as NodeId)
                    {
                        gain += 1;
                    }
                }
            }
            if gain > best_gain {
                best_gain = gain;
                best_h = h;
            }
        }
        debug_assert!(best_gain > 0, "uncovered pairs remain but no hub helps");
        let hrow = m.row(best_h as NodeId);
        let mut serves = vec![false; n];
        for u in 0..n {
            let duh = hrow[u];
            if duh == u32::MAX {
                continue;
            }
            for v in (u + 1)..n {
                if covered[idx(u, v)] {
                    continue;
                }
                let dhv = hrow[v];
                if dhv != u32::MAX
                    && duh as u64 + dhv as u64 == m.distance(u as NodeId, v as NodeId)
                {
                    covered[idx(u, v)] = true;
                    uncovered -= 1;
                    serves[u] = true;
                    serves[v] = true;
                }
            }
        }
        for u in 0..n {
            if serves[u] && u != best_h {
                labels[u].push((best_h as NodeId, hrow[u] as u64));
            }
        }
    }
    Ok(HubLabeling::from_labels(
        labels.into_iter().map(HubLabel::from_pairs).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_exact;
    use crate::pll::PrunedLandmarkLabeling;
    use hl_graph::generators;

    #[test]
    fn exact_on_path() {
        let g = generators::path(8);
        let hl = greedy_cover(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_random_sparse() {
        let g = generators::connected_gnm(40, 20, 10);
        let hl = greedy_cover(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_weighted() {
        let g = generators::weighted_grid(4, 5, 8);
        let hl = greedy_cover(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn exact_on_disconnected() {
        let g = hl_graph::builder::graph_from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let hl = greedy_cover(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn star_uses_single_universal_hub() {
        let g = generators::star(20);
        let hl = greedy_cover(&g).unwrap();
        // The first chosen hub must be the center, covering everything.
        assert!(hl.iter().all(|l| l.contains(0)));
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn greedy_not_worse_than_pll_by_much_on_small_graphs() {
        // Greedy is the quality yardstick; it should never blow up past the
        // PLL size by more than a constant factor on small sparse graphs.
        let g = generators::connected_gnm(30, 15, 77);
        let greedy = greedy_cover(&g).unwrap();
        let pll = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        assert!(greedy.total_hubs() as f64 <= 3.0 * pll.total_hubs() as f64);
    }
}
