//! Property-based tests: every construction must be an exact cover on
//! arbitrary sparse graphs, and the structural invariants of the paper must
//! hold on any labeling.

use proptest::prelude::*;

use hl_core::cover::{verify_exact, verify_hub_distances};
use hl_core::greedy::greedy_cover;
use hl_core::monotone::{check_closure_size_relation, MonotoneClosure};
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::psl::psl_labeling;
use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hl_core::rs_based::{rs_labeling, RsParams};
use hl_core::tree::centroid_labeling;
use hl_graph::properties::hop_diameter_exact;
use hl_graph::{generators, NodeId};

fn sparse_graph() -> impl Strategy<Value = hl_graph::Graph> {
    (5usize..35, 0usize..25, any::<u64>()).prop_map(|(n, extra, seed)| {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        generators::connected_gnm(n, extra.min(max_extra), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pll_exact_on_random_graphs(g in sparse_graph()) {
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        prop_assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn pll_random_order_exact(g in sparse_graph(), seed in any::<u64>()) {
        let hl = PrunedLandmarkLabeling::by_random_order(&g, seed).into_labeling();
        prop_assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn psl_exact_and_near_pll(g in sparse_graph(), threads in 1usize..5) {
        let ord = hl_core::order::by_degree(&g);
        let psl = psl_labeling(&g, ord.clone(), threads).unwrap();
        prop_assert!(verify_exact(&g, &psl).unwrap().is_exact());
        let pll = PrunedLandmarkLabeling::with_order(&g, ord).into_labeling();
        prop_assert!(psl.total_hubs() >= pll.total_hubs());
        prop_assert!((psl.total_hubs() as f64) <= 1.5 * pll.total_hubs() as f64);
    }

    #[test]
    fn greedy_exact_on_random_graphs(g in sparse_graph()) {
        let hl = greedy_cover(&g).unwrap();
        prop_assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn random_threshold_exact(g in sparse_graph(), d in 1u64..8, seed in any::<u64>()) {
        let (hl, _) = random_threshold_labeling(
            &g,
            RandomThresholdParams { threshold: d, seed },
        ).unwrap();
        prop_assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn rs_labeling_exact(g in sparse_graph(), d in 1u64..6, seed in any::<u64>()) {
        let (hl, _) = rs_labeling(&g, RsParams { threshold: d, seed }).unwrap();
        prop_assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }

    #[test]
    fn centroid_exact_on_trees(n in 2usize..120, seed in any::<u64>()) {
        let g = generators::random_tree(n, seed);
        let hl = centroid_labeling(&g).unwrap();
        prop_assert!(verify_exact(&g, &hl).unwrap().is_exact());
        // ceil(log2(n)) + 1 hubs at most.
        let bound = (n as f64).log2().ceil() as usize + 1;
        prop_assert!(hl.max_hubs() <= bound, "max {} > bound {}", hl.max_hubs(), bound);
    }

    #[test]
    fn all_hub_distances_admissible(g in sparse_graph()) {
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let sources: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        prop_assert!(verify_hub_distances(&g, &hl, &sources));
    }

    #[test]
    fn monotone_closure_relation_any_labeling(g in sparse_graph()) {
        let hl = greedy_cover(&g).unwrap();
        let mc = MonotoneClosure::compute(&g, &hl);
        let diam = hop_diameter_exact(&g);
        prop_assert_eq!(check_closure_size_relation(&g, &hl, &mc, diam), None);
    }

    #[test]
    fn queries_never_underestimate(g in sparse_graph(), d in 1u64..5, seed in any::<u64>()) {
        // Even a *partial* labeling (here: the exact rs labeling, but the
        // property is generic) may only overestimate, never underestimate,
        // because stored distances are true distances.
        let (hl, _) = rs_labeling(&g, RsParams { threshold: d, seed }).unwrap();
        let m = hl_graph::apsp::DistanceMatrix::compute(&g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                prop_assert!(hl.query(u, v) >= m.distance(u, v));
            }
        }
    }
}
