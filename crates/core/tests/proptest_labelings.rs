//! Randomized property tests: every construction must be an exact cover on
//! arbitrary sparse graphs, and the structural invariants of the paper must
//! hold on any labeling.
//!
//! Seeded [`Xorshift64`] case generation replaces the original `proptest`
//! strategies so the suite builds offline.

use hl_core::cover::{verify_exact, verify_hub_distances};
use hl_core::greedy::greedy_cover;
use hl_core::monotone::{check_closure_size_relation, MonotoneClosure};
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::psl::psl_labeling;
use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
use hl_core::rs_based::{rs_labeling, RsParams};
use hl_core::tree::centroid_labeling;
use hl_graph::properties::hop_diameter_exact;
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, NodeId};

const CASES: u64 = 24;

fn sparse_graph(rng: &mut Xorshift64) -> hl_graph::Graph {
    let n = rng.gen_range_usize(5, 35);
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let extra = rng.gen_index(25).min(max_extra);
    generators::connected_gnm(n, extra, rng.next_u64())
}

#[test]
fn pll_exact_on_random_graphs() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(case);
        let g = sparse_graph(&mut rng);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }
}

#[test]
fn pll_random_order_exact() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(1000 + case);
        let g = sparse_graph(&mut rng);
        let hl = PrunedLandmarkLabeling::by_random_order(&g, rng.next_u64()).into_labeling();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }
}

#[test]
fn psl_exact_and_near_pll() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(2000 + case);
        let g = sparse_graph(&mut rng);
        let threads = rng.gen_range_usize(1, 5);
        let ord = hl_core::order::by_degree(&g);
        let psl = psl_labeling(&g, ord.clone(), threads).unwrap();
        assert!(verify_exact(&g, &psl).unwrap().is_exact());
        let pll = PrunedLandmarkLabeling::with_order(&g, ord).into_labeling();
        assert!(psl.total_hubs() >= pll.total_hubs());
        assert!((psl.total_hubs() as f64) <= 1.5 * pll.total_hubs() as f64);
    }
}

#[test]
fn greedy_exact_on_random_graphs() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(3000 + case);
        let g = sparse_graph(&mut rng);
        let hl = greedy_cover(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }
}

#[test]
fn random_threshold_exact() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(4000 + case);
        let g = sparse_graph(&mut rng);
        let d = rng.gen_range_u64(1, 8);
        let (hl, _) = random_threshold_labeling(
            &g,
            RandomThresholdParams {
                threshold: d,
                seed: rng.next_u64(),
            },
        )
        .unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }
}

#[test]
fn rs_labeling_exact() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(5000 + case);
        let g = sparse_graph(&mut rng);
        let d = rng.gen_range_u64(1, 6);
        let (hl, _) = rs_labeling(
            &g,
            RsParams {
                threshold: d,
                seed: rng.next_u64(),
            },
        )
        .unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
    }
}

#[test]
fn centroid_exact_on_trees() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(6000 + case);
        let n = rng.gen_range_usize(2, 120);
        let g = generators::random_tree(n, rng.next_u64());
        let hl = centroid_labeling(&g).unwrap();
        assert!(verify_exact(&g, &hl).unwrap().is_exact());
        // ceil(log2(n)) + 1 hubs at most.
        let bound = (n as f64).log2().ceil() as usize + 1;
        assert!(
            hl.max_hubs() <= bound,
            "max {} > bound {}",
            hl.max_hubs(),
            bound
        );
    }
}

#[test]
fn all_hub_distances_admissible() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(7000 + case);
        let g = sparse_graph(&mut rng);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let sources: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        assert!(verify_hub_distances(&g, &hl, &sources));
    }
}

#[test]
fn monotone_closure_relation_any_labeling() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(8000 + case);
        let g = sparse_graph(&mut rng);
        let hl = greedy_cover(&g).unwrap();
        let mc = MonotoneClosure::compute(&g, &hl);
        let diam = hop_diameter_exact(&g);
        assert_eq!(check_closure_size_relation(&g, &hl, &mc, diam), None);
    }
}

#[test]
fn queries_never_underestimate() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(9000 + case);
        let g = sparse_graph(&mut rng);
        let d = rng.gen_range_u64(1, 5);
        // Even a *partial* labeling (here: the exact rs labeling, but the
        // property is generic) may only overestimate, never underestimate,
        // because stored distances are true distances.
        let (hl, _) = rs_labeling(
            &g,
            RsParams {
                threshold: d,
                seed: rng.next_u64(),
            },
        )
        .unwrap();
        let m = hl_graph::apsp::DistanceMatrix::compute(&g).unwrap();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                assert!(hl.query(u, v) >= m.distance(u, v));
            }
        }
    }
}
