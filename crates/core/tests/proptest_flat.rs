//! Randomized property tests for the flat CSR arena: on arbitrary random
//! graphs, `FlatLabeling::query` must agree entry-for-entry with the
//! nested `HubLabeling::query` *and* with BFS ground truth, and the
//! nested → flat → nested conversion must round-trip exactly.
//!
//! Seeded [`Xorshift64`] case generation keeps the suite deterministic
//! and offline (same style as `proptest_labelings.rs`).

use hl_core::flat::FlatLabeling;
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::{HubLabel, HubLabeling};
use hl_graph::bfs::bfs_distances;
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, NodeId};

const CASES: u64 = 24;

/// A connected sparse unit-weight gnm graph drawn from the case rng.
fn gnm_graph(rng: &mut Xorshift64) -> hl_graph::Graph {
    let n = rng.gen_range_usize(5, 40);
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let extra = rng.gen_index(30).min(max_extra);
    generators::connected_gnm(n, extra, rng.next_u64())
}

/// A small grid with random dimensions.
fn grid_graph(rng: &mut Xorshift64) -> hl_graph::Graph {
    let rows = rng.gen_range_usize(2, 8);
    let cols = rng.gen_range_usize(2, 8);
    generators::grid(rows, cols)
}

/// Checks `flat == nested == BFS` for **all** pairs of `g`.
fn assert_flat_matches_everywhere(g: &hl_graph::Graph, nested: &HubLabeling) {
    let flat = FlatLabeling::from_labeling(nested);
    let n = g.num_nodes() as NodeId;
    for u in 0..n {
        let truth = bfs_distances(g, u);
        for v in 0..n {
            let want = truth[v as usize];
            assert_eq!(nested.query(u, v), want, "nested d({u},{v})");
            assert_eq!(flat.query(u, v), want, "flat d({u},{v})");
        }
    }
}

#[test]
fn flat_query_matches_nested_and_bfs_on_gnm() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(case);
        let g = gnm_graph(&mut rng);
        let nested = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        assert_flat_matches_everywhere(&g, &nested);
    }
}

#[test]
fn flat_query_matches_nested_and_bfs_on_grids() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(1000 + case);
        let g = grid_graph(&mut rng);
        let nested = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        assert_flat_matches_everywhere(&g, &nested);
    }
}

#[test]
fn roundtrip_is_exact_on_random_graphs() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(2000 + case);
        let g = gnm_graph(&mut rng);
        let nested = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let flat = FlatLabeling::from_labeling(&nested);
        // Lossless both ways, through both the named and `From` paths.
        assert_eq!(flat.to_labeling(), nested);
        assert_eq!(FlatLabeling::from_labeling(&flat.to_labeling()), flat);
        assert_eq!(
            HubLabeling::from(FlatLabeling::from(nested.clone())),
            nested
        );
    }
}

#[test]
fn roundtrip_preserves_arbitrary_labels_not_just_pll() {
    // Labels with gaps, empty vertices, and duplicate-free random hub
    // sets — not necessarily a valid cover, but conversion must not care.
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(3000 + case);
        let n = rng.gen_range_usize(1, 30);
        let mut nested = HubLabeling::empty(n);
        for v in 0..n {
            let k = rng.gen_index(6);
            let pairs: Vec<(NodeId, u64)> = (0..k)
                .map(|_| (rng.gen_index(n) as NodeId, rng.gen_index(100) as u64))
                .collect();
            *nested.label_mut(v as NodeId) = HubLabel::from_pairs(pairs);
        }
        let flat = FlatLabeling::from_labeling(&nested);
        assert_eq!(flat.to_labeling(), nested);
        assert_eq!(flat.num_entries(), nested.total_hubs());
        for v in 0..n as NodeId {
            assert_eq!(flat.hubs_of(v), nested.label(v).hubs());
            assert_eq!(flat.dists_of(v), nested.label(v).distances());
        }
    }
}

#[test]
fn view_stats_agree_between_representations() {
    for case in 0..8 {
        let mut rng = Xorshift64::seed_from_u64(4000 + case);
        let g = gnm_graph(&mut rng);
        let nested = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let flat = FlatLabeling::from_labeling(&nested);
        assert_eq!(flat.total_hubs(), nested.total_hubs());
        assert_eq!(flat.max_hubs(), nested.max_hubs());
        assert!((flat.average_hubs() - nested.average_hubs()).abs() < 1e-12);
        // The arena never costs more heap than the nested form.
        assert!(flat.heap_bytes() <= nested.heap_bytes());
        // Witness queries agree too.
        let n = g.num_nodes() as NodeId;
        for u in 0..n.min(8) {
            for v in 0..n.min(8) {
                assert_eq!(
                    flat.query_with_witness(u, v),
                    nested.query_with_witness(u, v)
                );
            }
        }
    }
}
