//! Randomized property tests for the compact arena: on every graph
//! family the benches use (gnm, grid, power-law, rmat), the delta-coded
//! [`CompactLabeling`] must agree entry-for-entry with the flat CSR
//! arena *and* with BFS ground truth — including witnesses, including
//! after the hub-frequency reorder pass, including through the
//! flat → compact → flat round-trip.
//!
//! Seeded [`Xorshift64`] case generation keeps the suite deterministic
//! and offline (same style as `proptest_flat.rs`).

use hl_core::flat::FlatLabeling;
use hl_core::pll::PrunedLandmarkLabeling;
use hl_core::{freq, CompactLabeling};
use hl_graph::bfs::bfs_distances;
use hl_graph::rng::Xorshift64;
use hl_graph::{generators, Graph, NodeId};

const CASES: u64 = 12;

fn gnm_graph(rng: &mut Xorshift64) -> Graph {
    let n = rng.gen_range_usize(5, 40);
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let extra = rng.gen_index(30).min(max_extra);
    generators::connected_gnm(n, extra, rng.next_u64())
}

fn grid_graph(rng: &mut Xorshift64) -> Graph {
    let rows = rng.gen_range_usize(2, 8);
    let cols = rng.gen_range_usize(2, 8);
    generators::grid(rows, cols)
}

fn power_law_graph(rng: &mut Xorshift64) -> Graph {
    let n = rng.gen_range_usize(10, 50);
    generators::power_law_configuration(n, 25, rng.next_u64())
}

fn rmat_graph(rng: &mut Xorshift64) -> Graph {
    let scale = rng.gen_range_usize(4, 6) as u32;
    let m = (1usize << scale) * 3;
    generators::rmat(scale, m, rng.next_u64())
}

/// Checks `compact == flat == BFS` for **all** pairs of `g`, both for the
/// as-built labeling and for its frequency-reordered twin (which must
/// answer identically despite living in a remapped hub-id space).
fn assert_compact_matches_everywhere(g: &Graph) {
    let nested = PrunedLandmarkLabeling::by_degree(g).into_labeling();
    let flat = FlatLabeling::from_labeling(&nested);
    let compact = CompactLabeling::from_flat(&flat).expect("unit-weight distances fit u32");
    let (tuned_flat, _) = freq::reorder_by_hub_frequency(&flat);
    let tuned = CompactLabeling::from_flat(&tuned_flat).expect("reorder keeps distances");
    assert_eq!(
        compact.to_flat(),
        flat,
        "flat -> compact -> flat round-trip"
    );

    let n = g.num_nodes() as NodeId;
    for u in 0..n {
        let truth = bfs_distances(g, u);
        for v in 0..n {
            let want = truth[v as usize];
            assert_eq!(flat.query(u, v), want, "flat d({u},{v})");
            assert_eq!(compact.query(u, v), want, "compact d({u},{v})");
            assert_eq!(tuned.query(u, v), want, "reordered compact d({u},{v})");
            // Witnesses: the compact arena reports the same (distance,
            // hub) as the flat one; the reordered arena the same distance
            // (its witness ids live in the remapped space).
            assert_eq!(
                compact.query_with_witness(u, v),
                flat.query_with_witness(u, v),
                "witness at ({u},{v})"
            );
            assert_eq!(
                tuned.query_with_witness(u, v).map(|(d, _)| d),
                flat.query_with_witness(u, v).map(|(d, _)| d),
                "reordered witness distance at ({u},{v})"
            );
        }
    }
}

#[test]
fn compact_matches_flat_and_bfs_on_gnm() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(5000 + case);
        assert_compact_matches_everywhere(&gnm_graph(&mut rng));
    }
}

#[test]
fn compact_matches_flat_and_bfs_on_grids() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(6000 + case);
        assert_compact_matches_everywhere(&grid_graph(&mut rng));
    }
}

#[test]
fn compact_matches_flat_and_bfs_on_power_law() {
    // Configuration-model graphs are usually disconnected, so these cases
    // also cover the INFINITY (no common hub) paths of both kernels.
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(7000 + case);
        assert_compact_matches_everywhere(&power_law_graph(&mut rng));
    }
}

#[test]
fn compact_matches_flat_and_bfs_on_rmat() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(8000 + case);
        assert_compact_matches_everywhere(&rmat_graph(&mut rng));
    }
}

#[test]
fn compact_stats_agree_with_flat_on_random_graphs() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(9000 + case);
        let g = gnm_graph(&mut rng);
        let nested = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let flat = FlatLabeling::from_labeling(&nested);
        let compact = CompactLabeling::from_flat(&flat).unwrap();
        assert_eq!(compact.num_nodes(), flat.num_nodes());
        assert_eq!(compact.num_entries(), flat.num_entries());
        assert_eq!(compact.max_hubs(), flat.max_hubs());
        assert!((compact.average_hubs() - flat.average_hubs()).abs() < 1e-12);
        // The whole point: the compact arena never costs more heap.
        assert!(compact.heap_bytes() <= flat.heap_bytes());
    }
}
