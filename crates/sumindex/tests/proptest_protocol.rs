//! Randomized property tests for Sum-Index protocols, driven by seeded
//! [`Xorshift64`] streams (offline-friendly stand-in for `proptest`).

use hl_graph::rng::Xorshift64;
use hl_lowerbound::GadgetParams;
use hl_sumindex::protocol::GraphProtocol;
use hl_sumindex::repr::Repr;
use hl_sumindex::{naive, SumIndexInstance};

const CASES: u64 = 24;

#[test]
fn naive_protocol_always_correct() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(case);
        let m = rng.gen_range_usize(1, 200);
        let word: Vec<bool> = (0..m).map(|_| rng.gen_bool()).collect();
        let inst = SumIndexInstance::new(word);
        let a = rng.gen_index(m);
        let b = rng.gen_index(m);
        let answer = naive::referee(
            m,
            &naive::alice_message(&inst, a),
            &naive::bob_message(&inst, b),
        );
        assert_eq!(answer, inst.answer(a, b));
    }
}

#[test]
fn graph_protocol_correct_on_random_words() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(1000 + case);
        let params = GadgetParams::new(2, 2).unwrap();
        let m = Repr::new(params).modulus();
        let inst = SumIndexInstance::random(m as usize, rng.next_u64());
        let protocol = GraphProtocol::new(params, &inst).unwrap();
        let a = rng.gen_u64_below(m);
        let b = rng.gen_u64_below(m);
        assert_eq!(protocol.run(a, b), inst.answer(a as usize, b as usize));
    }
}

#[test]
fn repr_linearity() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(2000 + case);
        let b = rng.gen_range_u64(1, 4) as u32;
        let ell = rng.gen_range_u64(1, 4) as u32;
        if b as u64 * ell as u64 > 8 {
            continue;
        }
        let params = GadgetParams::new(b + 1, ell).unwrap(); // side >= 4
        let codec = Repr::new(params);
        let m = codec.modulus();
        let a1 = rng.gen_u64_below(m);
        let a2 = rng.gen_u64_below(m);
        let x = codec.decode(a1);
        let z = codec.decode(a2);
        let sum: Vec<u64> = x.iter().zip(&z).map(|(&p, &q)| p + q).collect();
        assert_eq!(codec.encode(&sum), (a1 + a2) % m);
    }
}
