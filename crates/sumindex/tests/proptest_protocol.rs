//! Property-based tests for Sum-Index protocols.

use proptest::prelude::*;

use hl_lowerbound::GadgetParams;
use hl_sumindex::protocol::GraphProtocol;
use hl_sumindex::repr::Repr;
use hl_sumindex::{naive, SumIndexInstance};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn naive_protocol_always_correct(word in proptest::collection::vec(any::<bool>(), 1..200), a in any::<usize>(), b in any::<usize>()) {
        let m = word.len();
        let inst = SumIndexInstance::new(word);
        let (a, b) = (a % m, b % m);
        let answer = naive::referee(
            m,
            &naive::alice_message(&inst, a),
            &naive::bob_message(&inst, b),
        );
        prop_assert_eq!(answer, inst.answer(a, b));
    }

    #[test]
    fn graph_protocol_correct_on_random_words(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let params = GadgetParams::new(2, 2).unwrap();
        let m = Repr::new(params).modulus();
        let inst = SumIndexInstance::random(m as usize, seed);
        let protocol = GraphProtocol::new(params, &inst).unwrap();
        let (a, b) = (a % m, b % m);
        prop_assert_eq!(protocol.run(a, b), inst.answer(a as usize, b as usize));
    }

    #[test]
    fn repr_linearity(b in 1u32..4, ell in 1u32..4, a1 in any::<u64>(), a2 in any::<u64>()) {
        if b as u64 * ell as u64 > 8 {
            return Ok(());
        }
        let params = GadgetParams::new(b + 1, ell).unwrap(); // side >= 4
        let codec = Repr::new(params);
        let m = codec.modulus();
        let (a1, a2) = (a1 % m, a2 % m);
        let x = codec.decode(a1);
        let z = codec.decode(a2);
        let sum: Vec<u64> = x.iter().zip(&z).map(|(&p, &q)| p + q).collect();
        prop_assert_eq!(codec.encode(&sum), (a1 + a2) % m);
    }
}
