//! The Theorem 1.6 protocol generalized over *any* distance labeling
//! scheme — the theorem's statement is scheme-agnostic ("distance labeling
//! in graphs ... requires at least ... bits per vertex"), so the protocol
//! should be too. Used as an ablation: hub-label messages vs full-vector
//! messages on the same instance.

use hl_graph::GraphError;
use hl_labeling::scheme::{BitLabel, DistanceLabelingScheme, SchemeStats};
use hl_lowerbound::removal::{decode_midpoint_presence, RemovedMiddle};
use hl_lowerbound::{GadgetParams, HGraph};

use crate::problem::SumIndexInstance;
use crate::repr::Repr;

/// Protocol setup parameterized by a labeling scheme.
pub struct SchemeProtocol<'a, S: DistanceLabelingScheme + ?Sized> {
    params: GadgetParams,
    repr: Repr,
    h: HGraph,
    labels: Vec<BitLabel>,
    scheme: &'a S,
}

impl<'a, S: DistanceLabelingScheme + ?Sized> SchemeProtocol<'a, S> {
    /// Builds the shared setup with the given scheme.
    ///
    /// # Errors
    ///
    /// Rejects word-length mismatches and propagates scheme encode errors.
    pub fn new(
        params: GadgetParams,
        instance: &SumIndexInstance,
        scheme: &'a S,
    ) -> Result<Self, GraphError> {
        let repr = Repr::new(params);
        if instance.len() as u64 != repr.modulus() {
            return Err(GraphError::InvalidParameters {
                reason: format!(
                    "word length {} != (s/2)^l = {}",
                    instance.len(),
                    repr.modulus()
                ),
            });
        }
        let h = HGraph::build(params);
        let pruned = RemovedMiddle::build(&h, |y| instance.bit(repr.encode(y) as usize));
        let labels = scheme.encode(pruned.graph())?;
        Ok(SchemeProtocol {
            params,
            repr,
            h,
            labels,
            scheme,
        })
    }

    /// Runs the protocol for `(a, b)` and also returns the two message
    /// sizes in bits (label + index).
    pub fn run(&self, a: u64, b: u64) -> (bool, usize, usize) {
        let x = self.repr.decode(a);
        let z = self.repr.decode(b);
        let dx: Vec<u64> = x.iter().map(|&d| 2 * d).collect();
        let dz: Vec<u64> = z.iter().map(|&d| 2 * d).collect();
        let u = self.h.node_id(0, &dx);
        let v = self.h.node_id(2 * self.params.ell as u64, &dz);
        let label_u = &self.labels[u as usize];
        let label_v = &self.labels[v as usize];
        let dist = self.scheme.decode(label_u, label_v);
        let idx_bits = crate::naive::index_bits(self.repr.modulus() as usize);
        (
            decode_midpoint_presence(&self.params, &dx, &dz, dist),
            label_u.num_bits() + idx_bits as usize,
            label_v.num_bits() + idx_bits as usize,
        )
    }

    /// Size statistics over all labels (the protocol's message-cost shape).
    pub fn label_stats(&self) -> SchemeStats {
        SchemeStats::of(&self.labels)
    }

    /// The scheme's name, for tables.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_labeling::full_vector::FullVectorScheme;
    use hl_labeling::hub_scheme::HubPllScheme;

    fn check_scheme<S: DistanceLabelingScheme>(scheme: &S) {
        let params = GadgetParams::new(2, 2).unwrap();
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 5);
        let protocol = SchemeProtocol::new(params, &instance, scheme).unwrap();
        for a in 0..m as u64 {
            for b in 0..m as u64 {
                let (answer, bits_a, bits_b) = protocol.run(a, b);
                assert_eq!(answer, instance.answer(a as usize, b as usize));
                assert!(bits_a > 0 && bits_b > 0);
            }
        }
    }

    #[test]
    fn correct_with_hub_scheme() {
        check_scheme(&HubPllScheme);
    }

    #[test]
    fn correct_with_full_vector_scheme() {
        check_scheme(&FullVectorScheme);
    }

    #[test]
    fn matches_specialized_protocol() {
        let params = GadgetParams::new(3, 2).unwrap();
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 9);
        let generic = SchemeProtocol::new(params, &instance, &HubPllScheme).unwrap();
        let specialized = crate::protocol::GraphProtocol::new(params, &instance).unwrap();
        for a in 0..m as u64 {
            for b in 0..m as u64 {
                assert_eq!(generic.run(a, b).0, specialized.run(a, b));
            }
        }
    }

    #[test]
    fn hub_labels_smaller_than_full_vectors_here() {
        let params = GadgetParams::new(3, 2).unwrap();
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 1);
        let hub = SchemeProtocol::new(params, &instance, &HubPllScheme).unwrap();
        let full = SchemeProtocol::new(params, &instance, &FullVectorScheme).unwrap();
        assert!(hub.label_stats().average_bits < full.label_stats().average_bits);
        assert_eq!(hub.scheme_name(), "hub-pll");
        assert_eq!(full.scheme_name(), "full-vector");
    }

    #[test]
    fn rejects_wrong_length() {
        let params = GadgetParams::new(2, 2).unwrap();
        let instance = SumIndexInstance::random(7, 0);
        assert!(SchemeProtocol::new(params, &instance, &HubPllScheme).is_err());
    }
}
