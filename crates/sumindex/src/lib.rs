//! The Sum-Index communication problem (Definition 1.5) and the reduction
//! from distance labeling of sparse graphs (Theorem 1.6).
//!
//! In Sum-Index, Alice holds a shared word `S ∈ {0,1}^m` and an index `a`,
//! Bob holds the same `S` and an index `b`; both send one simultaneous
//! message to a referee who must output `S_{(a+b) mod m}`. The best known
//! protocol (Ambainis 1996) costs `O(m·log^{0.25}m / 2^{√log m})` bits; the
//! best lower bound is `Ω(√m)`.
//!
//! Theorem 1.6 shows distance labels *are* Sum-Index messages: Alice and
//! Bob deterministically build the pruned gadget `G'_{b,ℓ}` from `S`
//! (middle vertex `v_{ℓ,y}` is kept iff `S_{repr(y)} = 1`), label it with
//! any distance labeling scheme, and send the labels of `v_{0,2x}` /
//! `v_{2ℓ,2z}`. The referee decodes one exact distance and reads the bit
//! off Observation 3.1. Hence labels of `β` bits give a protocol of
//! `β + O(log m)` bits — so lower bounds on `SUMINDEX` transfer to labels.
//!
//! * [`problem`] — instances and ground truth;
//! * [`repr`] — the `(s/2)`-ary digit codec between indices and grid
//!   vectors;
//! * [`naive`] — the trivial `m + O(log m)`-bit protocol;
//! * [`protocol`] — the paper's graph protocol, end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod g_protocol;
pub mod naive;
pub mod problem;
pub mod protocol;
pub mod repr;
pub mod scheme_protocol;

pub use problem::SumIndexInstance;
pub use protocol::{GraphProtocol, ProtocolCosts};
