//! The Sum-Index protocol on the *actual max-degree-3 graph* `G'_{b,ℓ}` —
//! the form in which Theorem 1.6 is stated ("distance labeling in graphs
//! on n vertices and max-degree 3 requires …").
//!
//! `G'` is too large for a full PLL labeling at interesting parameters
//! (`G_{2,2}` has ≈25k vertices), but the theorem only queries pairs
//! `(v_{0,2x}, v_{2ℓ,2z})` — and *every* surviving path between levels 0
//! and `2ℓ` crosses the middle layer through a surviving core (in `G` the
//! only link between `T^in_v` and `T^out_v` is the core of `v`). The
//! distances to the `s^ℓ` middle cores therefore form an exact distance
//! labeling for the queried bipartite pair set, with `s^ℓ = m·2^ℓ` hubs
//! per label. Removing a middle vertex in `G'` means cutting its core from
//! both trees.

use hl_graph::bfs::bfs_distances;
use hl_graph::{Graph, GraphBuilder, GraphError, NodeId, INFINITY};
use hl_labeling::hub_scheme::{decode_distance, encode_label};
use hl_labeling::scheme::{BitLabel, SchemeStats};
use hl_lowerbound::removal::decode_midpoint_presence;
use hl_lowerbound::{GGraph, GadgetParams, HGraph};

use hl_core::label::HubLabel;

use crate::problem::SumIndexInstance;
use crate::repr::Repr;

/// Protocol over the pruned max-degree-3 graph `G'_{b,ℓ}` with
/// middle-layer-core labels.
#[derive(Debug)]
pub struct GPrimeProtocol {
    params: GadgetParams,
    repr: Repr,
    h: HGraph,
    /// Bit labels of the level-0 query cores, indexed by `repr` index.
    alice_labels: Vec<BitLabel>,
    /// Bit labels of the level-2ℓ query cores, indexed by `repr` index.
    bob_labels: Vec<BitLabel>,
    graph_nodes: usize,
    max_degree: usize,
}

impl GPrimeProtocol {
    /// Builds the shared setup: `G'` plus the middle-core labels of all
    /// possible query vertices.
    ///
    /// # Errors
    ///
    /// Rejects word-length mismatches (and propagates graph errors).
    pub fn new(params: GadgetParams, instance: &SumIndexInstance) -> Result<Self, GraphError> {
        let repr = Repr::new(params);
        let m = repr.modulus();
        if instance.len() as u64 != m {
            return Err(GraphError::InvalidParameters {
                reason: format!("word length {} != (s/2)^l = {}", instance.len(), m),
            });
        }
        let h = HGraph::build(params);
        let g = GGraph::from_hgraph(&h);
        let ell = params.ell as u64;

        // Prune: cut the core of every removed middle vertex out of G.
        let mut removed_core = vec![false; g.graph().num_nodes()];
        for y in h.all_vectors() {
            if !instance.bit(repr.encode(&y) as usize) {
                removed_core[g.core(h.node_id(ell, &y)) as usize] = true;
            }
        }
        let g_pruned = drop_incident_edges(g.graph(), &removed_core);
        let max_degree = g_pruned.max_degree();

        // Middle hubs: all middle cores, surviving or not (unreachable ones
        // simply drop out of the labels).
        let middle_cores: Vec<NodeId> = h
            .all_vectors()
            .map(|y| g.core(h.node_id(ell, &y)))
            .collect();

        let label_of = |v: NodeId| -> BitLabel {
            let dist = bfs_distances(&g_pruned, v);
            let pairs: Vec<(NodeId, u64)> = middle_cores
                .iter()
                .filter_map(|&c| {
                    let d = dist[c as usize];
                    if d == INFINITY {
                        None
                    } else {
                        Some((c, d))
                    }
                })
                .collect();
            encode_label(&HubLabel::from_pairs(pairs))
        };

        let mut alice_labels = Vec::with_capacity(m as usize);
        let mut bob_labels = Vec::with_capacity(m as usize);
        for idx in 0..m {
            let x = repr.decode(idx);
            let doubled: Vec<u64> = x.iter().map(|&d| 2 * d).collect();
            alice_labels.push(label_of(g.core(h.node_id(0, &doubled))));
            bob_labels.push(label_of(g.core(h.node_id(2 * ell, &doubled))));
        }
        Ok(GPrimeProtocol {
            params,
            repr,
            h,
            alice_labels,
            bob_labels,
            graph_nodes: g_pruned.num_nodes(),
            max_degree,
        })
    }

    /// Runs the protocol for inputs `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is `>= m`.
    pub fn run(&self, a: u64, b: u64) -> bool {
        let dist = decode_distance(&self.alice_labels[a as usize], &self.bob_labels[b as usize]);
        let x = self.repr.decode(a);
        let z = self.repr.decode(b);
        let dx: Vec<u64> = x.iter().map(|&d| 2 * d).collect();
        let dz: Vec<u64> = z.iter().map(|&d| 2 * d).collect();
        decode_midpoint_presence(&self.params, &dx, &dz, dist)
    }

    /// Number of vertices of `G'` (the `n` of Theorem 1.6).
    pub fn graph_nodes(&self) -> usize {
        self.graph_nodes
    }

    /// Max degree of the pruned graph (must stay `<= 3`).
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Label-size statistics across all query vertices.
    pub fn label_stats(&self) -> SchemeStats {
        let all: Vec<BitLabel> = self
            .alice_labels
            .iter()
            .chain(&self.bob_labels)
            .cloned()
            .collect();
        SchemeStats::of(&all)
    }

    /// The underlying `H` gadget (for inspection).
    pub fn hgraph(&self) -> &HGraph {
        &self.h
    }
}

/// Copy of `g` with all edges incident to flagged vertices removed.
fn drop_incident_edges(g: &Graph, flagged: &[bool]) -> Graph {
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for (u, v, w) in g.edges() {
        if !flagged[u as usize] && !flagged[v as usize] {
            b.add_edge(u, v, w).expect("edges in range"); // lint:allow(no-panic): endpoints come from a graph with the same node count
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_exhaustively_on_degree3_graph() {
        let params = GadgetParams::new(2, 2).unwrap();
        let m = Repr::new(params).modulus() as usize;
        for seed in [1u64, 2] {
            let instance = SumIndexInstance::random(m, seed);
            let protocol = GPrimeProtocol::new(params, &instance).unwrap();
            assert!(protocol.max_degree() <= 3);
            assert!(protocol.graph_nodes() > 20_000, "G(2,2) is ~25k vertices");
            for a in 0..m as u64 {
                for b in 0..m as u64 {
                    assert_eq!(
                        protocol.run(a, b),
                        instance.answer(a as usize, b as usize),
                        "seed={seed} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_h_protocol() {
        let params = GadgetParams::new(2, 2).unwrap();
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 9);
        let on_g = GPrimeProtocol::new(params, &instance).unwrap();
        let on_h = crate::protocol::GraphProtocol::new(params, &instance).unwrap();
        for a in 0..m as u64 {
            for b in 0..m as u64 {
                assert_eq!(on_g.run(a, b), on_h.run(a, b));
            }
        }
    }

    #[test]
    fn label_sizes_scale_with_middle_layer() {
        let params = GadgetParams::new(2, 2).unwrap();
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, 3);
        let protocol = GPrimeProtocol::new(params, &instance).unwrap();
        let stats = protocol.label_stats();
        // s^l = 16 hubs, distances ~ 4A+spread (hundreds): label sizes in
        // the hundreds of bits, not tens of thousands.
        assert!(stats.max_bits > 64);
        assert!(stats.max_bits < 16 * 64);
    }

    #[test]
    fn rejects_wrong_word_length() {
        let params = GadgetParams::new(2, 2).unwrap();
        let instance = SumIndexInstance::random(3, 0);
        assert!(GPrimeProtocol::new(params, &instance).is_err());
    }
}
