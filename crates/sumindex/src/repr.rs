//! The `repr` codec of Section 3: vectors over `[0, s)^ℓ` read as
//! `(s/2)`-ary digit strings, modulo `m = (s/2)^ℓ`.
//!
//! On the restricted box `[0, s/2)^ℓ` the map is a bijection onto
//! `[0, m)`; on the full box every index has exactly `2^ℓ` preimages. The
//! crucial protocol identity is linearity:
//! `repr(x + z) = (repr(x) + repr(z)) mod m` for the *componentwise* sum —
//! which is exactly how the midpoint `(2x + 2z)/2 = x + z` of the gadget
//! picks out the bit `S_{(a+b) mod m}`.

use hl_lowerbound::GadgetParams;

/// The codec for a given gadget parameterization.
#[derive(Debug, Clone, Copy)]
pub struct Repr {
    half_side: u64,
    ell: u32,
}

impl Repr {
    /// Creates the codec for `params` (`half_side = s/2 = 2^{b−1}`).
    pub fn new(params: GadgetParams) -> Self {
        Repr {
            half_side: params.side() / 2,
            ell: params.ell,
        }
    }

    /// The modulus `m = (s/2)^ℓ`.
    pub fn modulus(&self) -> u64 {
        self.half_side.pow(self.ell)
    }

    /// `repr(x) = (Σ x_i (s/2)^i) mod m` for any vector over `[0, s)^ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension is wrong.
    pub fn encode(&self, x: &[u64]) -> u64 {
        assert_eq!(x.len(), self.ell as usize, "wrong dimension");
        let m = self.modulus();
        let mut acc = 0u64;
        for (i, &xi) in x.iter().enumerate() {
            acc = (acc + xi % m * (self.half_side.pow(i as u32) % m)) % m;
        }
        acc
    }

    /// The unique preimage of `index` inside the restricted box
    /// `[0, s/2)^ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= m`.
    pub fn decode(&self, index: u64) -> Vec<u64> {
        assert!(index < self.modulus(), "index out of range");
        let mut digits = Vec::with_capacity(self.ell as usize);
        let mut rest = index;
        for _ in 0..self.ell {
            digits.push(rest % self.half_side);
            rest /= self.half_side;
        }
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec22() -> Repr {
        Repr::new(GadgetParams::new(2, 2).unwrap())
    }

    #[test]
    fn modulus_formula() {
        assert_eq!(codec22().modulus(), 4); // (4/2)^2
        let c = Repr::new(GadgetParams::new(3, 2).unwrap());
        assert_eq!(c.modulus(), 16); // 4^2
    }

    #[test]
    fn bijection_on_restricted_box() {
        let c = Repr::new(GadgetParams::new(3, 3).unwrap());
        let m = c.modulus();
        let mut seen = std::collections::HashSet::new();
        for idx in 0..m {
            let x = c.decode(idx);
            assert!(x.iter().all(|&d| d < 4), "restricted box digits");
            assert_eq!(c.encode(&x), idx, "roundtrip");
            assert!(seen.insert(x));
        }
        assert_eq!(seen.len() as u64, m);
    }

    #[test]
    fn full_box_has_two_pow_ell_preimages() {
        let c = codec22();
        let mut counts = vec![0usize; c.modulus() as usize];
        for x0 in 0..4u64 {
            for x1 in 0..4u64 {
                counts[c.encode(&[x0, x1]) as usize] += 1;
            }
        }
        assert!(
            counts.iter().all(|&k| k == 4),
            "2^ℓ = 4 preimages each: {counts:?}"
        );
    }

    #[test]
    fn linearity_under_componentwise_sum() {
        let c = Repr::new(GadgetParams::new(3, 2).unwrap());
        let m = c.modulus();
        for a in 0..m {
            for b in 0..m {
                let x = c.decode(a);
                let z = c.decode(b);
                let sum: Vec<u64> = x.iter().zip(&z).map(|(&p, &q)| p + q).collect();
                assert_eq!(c.encode(&sum), (a + b) % m, "a={a} b={b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_large_index() {
        codec22().decode(4);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn encode_rejects_wrong_dimension() {
        codec22().encode(&[1]);
    }
}
