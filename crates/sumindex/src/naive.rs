//! The trivial Sum-Index protocol: Alice ships the whole word.
//!
//! Costs `m + ⌈log m⌉` bits from Alice and `⌈log m⌉` from Bob — the
//! baseline any interesting protocol must beat, and the upper anchor of
//! the experiment tables (the lower anchor being `Ω(√m)`).

use hl_labeling::bits::{BitReader, BitWriter};
use hl_labeling::BitVec;

use crate::problem::SumIndexInstance;

/// Bits needed to address `[0, m)`.
pub fn index_bits(m: usize) -> u32 {
    usize::BITS - (m.max(2) - 1).leading_zeros()
}

/// Alice's message: the word followed by `a`.
pub fn alice_message(instance: &SumIndexInstance, a: usize) -> BitVec {
    let mut w = BitWriter::new();
    for &bit in instance.word() {
        w.write_bit(bit);
    }
    w.write_bits(a as u64, index_bits(instance.len()));
    w.into_bits()
}

/// Bob's message: just `b`.
pub fn bob_message(instance: &SumIndexInstance, b: usize) -> BitVec {
    let mut w = BitWriter::new();
    w.write_bits(b as u64, index_bits(instance.len()));
    w.into_bits()
}

/// Referee: recovers `S` and `a` from Alice, `b` from Bob, and answers.
///
/// `m` is public (part of the protocol description).
pub fn referee(m: usize, alice: &BitVec, bob: &BitVec) -> bool {
    let bits = index_bits(m);
    let mut ra = BitReader::new(alice);
    let word: Vec<bool> = (0..m).map(|_| ra.read_bit()).collect();
    let a = ra.read_bits(bits) as usize;
    let mut rb = BitReader::new(bob);
    let b = rb.read_bits(bits) as usize;
    word[(a + b) % m]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_on_all_pairs() {
        let inst = SumIndexInstance::random(17, 3);
        for a in 0..17 {
            for b in 0..17 {
                let ma = alice_message(&inst, a);
                let mb = bob_message(&inst, b);
                assert_eq!(referee(17, &ma, &mb), inst.answer(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn message_sizes() {
        let inst = SumIndexInstance::random(64, 1);
        assert_eq!(alice_message(&inst, 5).len(), 64 + 6);
        assert_eq!(bob_message(&inst, 5).len(), 6);
    }

    #[test]
    fn index_bits_values() {
        assert_eq!(index_bits(2), 1);
        assert_eq!(index_bits(4), 2);
        assert_eq!(index_bits(5), 3);
        assert_eq!(index_bits(1024), 10);
    }
}
