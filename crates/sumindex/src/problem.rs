//! Sum-Index instances and ground truth.

use hl_graph::rng::Xorshift64;

/// One Sum-Index instance: the shared word `S ∈ {0,1}^m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SumIndexInstance {
    word: Vec<bool>,
}

impl SumIndexInstance {
    /// Wraps a word.
    ///
    /// # Panics
    ///
    /// Panics if the word is empty.
    pub fn new(word: Vec<bool>) -> Self {
        assert!(!word.is_empty(), "Sum-Index requires a nonempty word");
        SumIndexInstance { word }
    }

    /// A seeded random word of length `m`.
    pub fn random(m: usize, seed: u64) -> Self {
        let mut rng = Xorshift64::seed_from_u64(seed);
        SumIndexInstance::new((0..m).map(|_| rng.gen_bool()).collect())
    }

    /// Word length `m`.
    pub fn len(&self) -> usize {
        self.word.len()
    }

    /// `false` always (instances are nonempty); mirrors the container
    /// convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shared word.
    pub fn word(&self) -> &[bool] {
        &self.word
    }

    /// Bit `S_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= m`.
    pub fn bit(&self, i: usize) -> bool {
        self.word[i]
    }

    /// Ground truth `S_{(a+b) mod m}`.
    pub fn answer(&self, a: usize, b: usize) -> bool {
        self.word[(a + b) % self.word.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_wraps_modulo() {
        let inst = SumIndexInstance::new(vec![true, false, false, true]);
        assert!(inst.answer(0, 0));
        assert!(!inst.answer(1, 1));
        assert!(inst.answer(2, 1));
        assert!(inst.answer(3, 1), "wraps to index 0");
        assert!(!inst.answer(3, 2), "wraps to index 1");
    }

    #[test]
    fn random_is_seeded() {
        assert_eq!(
            SumIndexInstance::random(64, 9),
            SumIndexInstance::random(64, 9)
        );
        assert_ne!(
            SumIndexInstance::random(64, 9),
            SumIndexInstance::random(64, 10)
        );
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_word_rejected() {
        let _ = SumIndexInstance::new(vec![]);
    }

    #[test]
    fn accessors() {
        let inst = SumIndexInstance::random(16, 0);
        assert_eq!(inst.len(), 16);
        assert!(!inst.is_empty());
        assert_eq!(inst.bit(3), inst.word()[3]);
    }
}
