//! The paper's Sum-Index protocol (proof of Theorem 1.6), executed end to
//! end.
//!
//! Both parties share `S` and the gadget parameters, so both can build the
//! *same* pruned graph `H'_{b,ℓ}` (middle vertex `v_{ℓ,y}` kept iff
//! `S_{repr(y)} = 1`) and the same deterministic distance labeling. Alice
//! sends the label of `v_{0,2x}` (where `repr(x) = a`) plus `a`; Bob sends
//! the label of `v_{2ℓ,2z}` plus `b`. The referee decodes the exact
//! `v_{0,2x}`-`v_{2ℓ,2z}` distance from the two labels and applies
//! Observation 3.1: the distance equals the unique-path length iff the
//! midpoint `v_{ℓ,x+z}` survived, i.e. iff `S_{(a+b) mod m} = 1`.
//!
//! The protocol works over `H'` rather than the degree-3 `G'`: distances
//! between the queried levels coincide (verified in `hl-lowerbound`), and
//! the paper's degree-3 expansion matters for the *counting* of `n`, not
//! for protocol correctness.

use hl_graph::GraphError;
use hl_labeling::hub_scheme::{decode_distance, encode_labeling};
use hl_labeling::scheme::BitLabel;
use hl_lowerbound::removal::{decode_midpoint_presence, RemovedMiddle};
use hl_lowerbound::{GadgetParams, HGraph};

use hl_core::pll::PrunedLandmarkLabeling;

use crate::naive::index_bits;
use crate::problem::SumIndexInstance;
use crate::repr::Repr;

/// One party's message: a distance label plus the party's index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The distance label of the queried vertex.
    pub label: BitLabel,
    /// The sender's input index (`a` or `b`).
    pub index: u64,
}

impl Message {
    /// Total message size in bits (label + index).
    pub fn num_bits(&self, m: usize) -> usize {
        self.label.num_bits() + index_bits(m) as usize
    }
}

/// Cost summary of a protocol instantiation, for the experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolCosts {
    /// Word length `m`.
    pub m: usize,
    /// Number of vertices of the pruned gadget.
    pub graph_nodes: usize,
    /// Largest message over all inputs (bits).
    pub max_message_bits: usize,
    /// Average message size over the level-0/level-2ℓ query vertices.
    pub avg_message_bits: f64,
    /// The naive protocol's Alice message (`m + ⌈log m⌉` bits).
    pub naive_bits: usize,
    /// The `Ω(√m)` lower-bound anchor.
    pub sqrt_m: f64,
}

/// The shared deterministic setup both parties compute from `(params, S)`.
///
/// # Example
///
/// ```
/// use hl_lowerbound::GadgetParams;
/// use hl_sumindex::{protocol::GraphProtocol, repr::Repr, SumIndexInstance};
///
/// # fn main() -> Result<(), hl_graph::GraphError> {
/// let params = GadgetParams::new(2, 2)?;
/// let m = Repr::new(params).modulus() as usize;
/// let instance = SumIndexInstance::random(m, 1);
/// let protocol = GraphProtocol::new(params, &instance)?;
/// assert_eq!(protocol.run(1, 2), instance.answer(1, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GraphProtocol {
    params: GadgetParams,
    repr: Repr,
    h: HGraph,
    labels: Vec<BitLabel>,
    graph_nodes: usize,
}

impl GraphProtocol {
    /// Builds the shared setup: pruned gadget + deterministic labeling.
    ///
    /// # Errors
    ///
    /// Rejects instances whose length differs from `m = (s/2)^ℓ`.
    pub fn new(params: GadgetParams, instance: &SumIndexInstance) -> Result<Self, GraphError> {
        let repr = Repr::new(params);
        let m = repr.modulus();
        if instance.len() as u64 != m {
            return Err(GraphError::InvalidParameters {
                reason: format!("word length {} != (s/2)^l = {}", instance.len(), m),
            });
        }
        let h = HGraph::build(params);
        let pruned = RemovedMiddle::build(&h, |y| instance.bit(repr.encode(y) as usize));
        let labeling = PrunedLandmarkLabeling::by_degree(pruned.graph()).into_labeling();
        let labels = encode_labeling(&labeling);
        Ok(GraphProtocol {
            params,
            repr,
            graph_nodes: pruned.graph().num_nodes() - pruned.num_removed(),
            h,
            labels,
        })
    }

    /// The gadget parameters.
    pub fn params(&self) -> GadgetParams {
        self.params
    }

    /// The modulus `m`.
    pub fn modulus(&self) -> u64 {
        self.repr.modulus()
    }

    /// Alice's query vertex for index `a`: `v_{0,2x}` with `repr(x) = a`.
    pub fn alice_vertex(&self, a: u64) -> hl_graph::NodeId {
        let x = self.repr.decode(a);
        let doubled: Vec<u64> = x.iter().map(|&d| 2 * d).collect();
        self.h.node_id(0, &doubled)
    }

    /// Bob's query vertex for index `b`: `v_{2ℓ,2z}` with `repr(z) = b`.
    pub fn bob_vertex(&self, b: u64) -> hl_graph::NodeId {
        let z = self.repr.decode(b);
        let doubled: Vec<u64> = z.iter().map(|&d| 2 * d).collect();
        self.h.node_id(2 * self.params.ell as u64, &doubled)
    }

    /// Alice's message for input `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= m`.
    pub fn alice_message(&self, a: u64) -> Message {
        Message {
            label: self.labels[self.alice_vertex(a) as usize].clone(),
            index: a,
        }
    }

    /// Bob's message for input `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= m`.
    pub fn bob_message(&self, b: u64) -> Message {
        Message {
            label: self.labels[self.bob_vertex(b) as usize].clone(),
            index: b,
        }
    }

    /// The referee: decodes the distance from the two labels and reads the
    /// bit via Observation 3.1. Uses only public parameters and the two
    /// messages — never the word or the graph.
    pub fn referee(&self, alice: &Message, bob: &Message) -> bool {
        let x = self.repr.decode(alice.index);
        let z = self.repr.decode(bob.index);
        let doubled_x: Vec<u64> = x.iter().map(|&d| 2 * d).collect();
        let doubled_z: Vec<u64> = z.iter().map(|&d| 2 * d).collect();
        let dist = decode_distance(&alice.label, &bob.label);
        decode_midpoint_presence(&self.params, &doubled_x, &doubled_z, dist)
    }

    /// Runs the protocol for inputs `(a, b)`.
    pub fn run(&self, a: u64, b: u64) -> bool {
        self.referee(&self.alice_message(a), &self.bob_message(b))
    }

    /// Cost summary over all possible inputs.
    pub fn costs(&self) -> ProtocolCosts {
        let m = self.modulus() as usize;
        let mut max_bits = 0usize;
        let mut total_bits = 0usize;
        for a in 0..m as u64 {
            for msg in [self.alice_message(a), self.bob_message(a)] {
                let bits = msg.num_bits(m);
                max_bits = max_bits.max(bits);
                total_bits += bits;
            }
        }
        ProtocolCosts {
            m,
            graph_nodes: self.graph_nodes,
            max_message_bits: max_bits,
            avg_message_bits: total_bits as f64 / (2 * m) as f64,
            naive_bits: m + index_bits(m) as usize,
            sqrt_m: (m as f64).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_check(b: u32, ell: u32, seed: u64) {
        let params = GadgetParams::new(b, ell).unwrap();
        let m = Repr::new(params).modulus() as usize;
        let instance = SumIndexInstance::random(m, seed);
        let protocol = GraphProtocol::new(params, &instance).unwrap();
        for a in 0..m as u64 {
            for bb in 0..m as u64 {
                assert_eq!(
                    protocol.run(a, bb),
                    instance.answer(a as usize, bb as usize),
                    "params=({b},{ell}) a={a} b={bb}"
                );
            }
        }
    }

    #[test]
    fn correct_exhaustively_b2_l2() {
        exhaustive_check(2, 2, 11);
    }

    #[test]
    fn correct_exhaustively_b3_l2() {
        exhaustive_check(3, 2, 12);
    }

    #[test]
    fn correct_exhaustively_b2_l3() {
        exhaustive_check(2, 3, 13);
    }

    #[test]
    fn correct_on_constant_words() {
        let params = GadgetParams::new(2, 2).unwrap();
        for word in [vec![true; 4], vec![false; 4]] {
            let instance = SumIndexInstance::new(word.clone());
            let protocol = GraphProtocol::new(params, &instance).unwrap();
            for a in 0..4u64 {
                for b in 0..4u64 {
                    assert_eq!(protocol.run(a, b), word[0]);
                }
            }
        }
    }

    #[test]
    fn rejects_wrong_word_length() {
        let params = GadgetParams::new(2, 2).unwrap();
        let instance = SumIndexInstance::random(5, 0);
        assert!(GraphProtocol::new(params, &instance).is_err());
    }

    #[test]
    fn costs_are_reported() {
        let params = GadgetParams::new(3, 2).unwrap();
        let instance = SumIndexInstance::random(16, 7);
        let protocol = GraphProtocol::new(params, &instance).unwrap();
        let costs = protocol.costs();
        assert_eq!(costs.m, 16);
        assert_eq!(costs.naive_bits, 16 + 4);
        assert!(costs.max_message_bits > 0);
        assert!(costs.avg_message_bits <= costs.max_message_bits as f64);
        assert!((costs.sqrt_m - 4.0).abs() < 1e-9);
    }

    #[test]
    fn alice_and_bob_vertices_are_distinct_levels() {
        let params = GadgetParams::new(2, 2).unwrap();
        let instance = SumIndexInstance::random(4, 2);
        let protocol = GraphProtocol::new(params, &instance).unwrap();
        for i in 0..4u64 {
            let av = protocol.alice_vertex(i) as u64;
            let bv = protocol.bob_vertex(i) as u64;
            assert!(av < 16, "level 0");
            assert!(bv >= 4 * 16, "level 2l");
        }
    }
}
