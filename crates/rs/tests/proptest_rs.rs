//! Randomized property tests for the Ruzsa–Szemerédi machinery, driven by
//! seeded [`Xorshift64`] streams (offline-friendly stand-in for `proptest`).

use hl_graph::rng::Xorshift64;
use hl_rs::behrend::{behrend_for_dimension, greedy_ap_free_set, is_ap_free};
use hl_rs::induced::{greedy_induced_partition, is_induced_matching_partition};
use hl_rs::{behrend_set, best_ap_free_set, RsGraph};

const CASES: u64 = 32;

#[test]
fn greedy_sets_are_ap_free() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(case);
        let n = rng.gen_range_u64(1, 600);
        let s = greedy_ap_free_set(n);
        assert!(is_ap_free(&s));
        assert!(s.iter().all(|&x| x < n));
    }
}

#[test]
fn greedy_is_monotone_prefix() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(1000 + case);
        let n = rng.gen_range_u64(2, 300);
        // The greedy set for a smaller universe is a prefix of the larger.
        let small = greedy_ap_free_set(n);
        let large = greedy_ap_free_set(n + 50);
        assert!(large.starts_with(&small));
    }
}

#[test]
fn behrend_sets_are_ap_free() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(2000 + case);
        let n = rng.gen_range_u64(8, 40_000);
        let s = behrend_set(n);
        assert!(is_ap_free(&s));
        assert!(s.iter().all(|&x| x < n));
    }
}

#[test]
fn behrend_dimension_slices_are_ap_free() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(3000 + case);
        let n = rng.gen_range_u64(64, 20_000);
        let d = rng.gen_range_u64(2, 6) as u32;
        if let Some(s) = behrend_for_dimension(n, d) {
            assert!(is_ap_free(&s));
            assert!(s.iter().all(|&x| x < n));
        }
    }
}

#[test]
fn best_set_at_least_as_large() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(4000 + case);
        let n = rng.gen_range_u64(8, 5_000);
        let best = best_ap_free_set(n);
        assert!(best.len() >= behrend_set(n).len());
        assert!(is_ap_free(&best));
    }
}

#[test]
fn rs_graph_matchings_always_induced() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(5000 + case);
        let base = rng.gen_range_usize(2, 25);
        // Use a greedy AP-free difference set over a random-ish universe.
        let universe = 4 + rng.gen_u64_below(40);
        let b = greedy_ap_free_set(universe);
        let rs = RsGraph::from_ap_free_set(base, &b);
        assert!(rs.is_ruzsa_szemeredi());
        assert!(is_induced_matching_partition(rs.graph(), rs.matchings()));
        assert_eq!(rs.graph().num_edges(), base * b.len());
    }
}

#[test]
fn greedy_partition_valid_on_random_graphs() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(6000 + case);
        let n = rng.gen_range_usize(4, 30);
        let extra = rng.gen_index(25);
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = hl_graph::generators::connected_gnm(n, extra.min(max_extra), rng.next_u64());
        let p = greedy_induced_partition(&g);
        assert!(is_induced_matching_partition(&g, &p));
        // A partition never needs more matchings than edges.
        assert!(p.len() <= g.num_edges());
    }
}
