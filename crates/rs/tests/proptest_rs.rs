//! Property-based tests for the Ruzsa–Szemerédi machinery.

use proptest::prelude::*;

use hl_rs::behrend::{behrend_for_dimension, greedy_ap_free_set, is_ap_free};
use hl_rs::induced::{greedy_induced_partition, is_induced_matching_partition};
use hl_rs::{behrend_set, best_ap_free_set, RsGraph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn greedy_sets_are_ap_free(n in 1u64..600) {
        let s = greedy_ap_free_set(n);
        prop_assert!(is_ap_free(&s));
        prop_assert!(s.iter().all(|&x| x < n));
    }

    #[test]
    fn greedy_is_monotone_prefix(n in 2u64..300) {
        // The greedy set for a smaller universe is a prefix of the larger.
        let small = greedy_ap_free_set(n);
        let large = greedy_ap_free_set(n + 50);
        prop_assert!(large.starts_with(&small));
    }

    #[test]
    fn behrend_sets_are_ap_free(n in 8u64..40_000) {
        let s = behrend_set(n);
        prop_assert!(is_ap_free(&s));
        prop_assert!(s.iter().all(|&x| x < n));
    }

    #[test]
    fn behrend_dimension_slices_are_ap_free(n in 64u64..20_000, d in 2u32..6) {
        if let Some(s) = behrend_for_dimension(n, d) {
            prop_assert!(is_ap_free(&s));
            prop_assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn best_set_at_least_as_large(n in 8u64..5_000) {
        let best = best_ap_free_set(n);
        prop_assert!(best.len() >= behrend_set(n).len());
        prop_assert!(is_ap_free(&best));
    }

    #[test]
    fn rs_graph_matchings_always_induced(base in 2usize..25, pick in any::<u64>()) {
        // Use a greedy AP-free difference set over a random-ish universe.
        let universe = 4 + (pick % 40);
        let b = greedy_ap_free_set(universe);
        let rs = RsGraph::from_ap_free_set(base, &b);
        prop_assert!(rs.is_ruzsa_szemeredi());
        prop_assert!(is_induced_matching_partition(rs.graph(), rs.matchings()));
        prop_assert_eq!(rs.graph().num_edges(), base * b.len());
    }

    #[test]
    fn greedy_partition_valid_on_random_graphs(n in 4usize..30, extra in 0usize..25, seed in any::<u64>()) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = hl_graph::generators::connected_gnm(n, extra.min(max_extra), seed);
        let p = greedy_induced_partition(&g);
        prop_assert!(is_induced_matching_partition(&g, &p));
        // A partition never needs more matchings than edges.
        prop_assert!(p.len() <= g.num_edges());
    }
}
