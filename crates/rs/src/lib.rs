//! Ruzsa–Szemerédi machinery: Behrend progression-free sets, RS graphs and
//! induced matchings.
//!
//! The paper ties both its upper bound (Theorem 4.1) and the limits of its
//! lower-bound technique to the **Ruzsa–Szemerédi function** `RS(n)`
//! (Definition 1.3): the largest value such that every graph on `n`
//! vertices whose edges partition into at most `n` induced matchings has at
//! most `n²/RS(n)` edges. Current knowledge:
//!
//! ```text
//! 2^{Ω(log* n)}  ≤  RS(n)  ≤  2^{O(√log n)}
//! ```
//!
//! the upper bound coming from Behrend's construction of 3-AP-free sets
//! (1946). This crate implements:
//!
//! * [`behrend`] — Behrend's sphere construction of large progression-free
//!   subsets of `[n]`, a greedy baseline, and a verifier;
//! * [`rs_graph`] — the classical RS graph: a bipartite graph whose edges
//!   `{(x+a, x+2a)}` partition into induced matchings `M_x` indexed by the
//!   base point `x`, with AP-freeness of `a` guaranteeing induced-ness;
//! * [`induced`] — induced-matching verification and a greedy
//!   edge-partition of arbitrary graphs into induced matchings;
//! * [`rs_function`] — empirical witnesses for the upper-bound side of
//!   `RS(n)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behrend;
pub mod induced;
pub mod rs_function;
pub mod rs_graph;

pub use behrend::{behrend_set, best_ap_free_set, greedy_ap_free_set, is_ap_free};
pub use rs_graph::RsGraph;
