//! Empirical study of the Ruzsa–Szemerédi function `RS(n)`.
//!
//! `RS(n)` (Definition 1.3) is defined so that every graph on `n` vertices
//! whose edges partition into `≤ n` induced matchings has `≤ n²/RS(n)`
//! edges. Exact values are unknown; this module provides the two
//! computable proxies the experiments chart:
//!
//! * **upper-bound witnesses** — our Behrend-based [`crate::RsGraph`]s give
//!   concrete RS graphs with many edges, certifying `RS(n) ≤ n²/m`;
//! * **heuristic reading** used by the Theorem 4.1 parameter choice,
//!   `RS̃(n) = 2^{√(log₂ n)}`, the shape of the true upper bound.

use crate::rs_graph::RsGraph;

/// A row of the RS-function experiment table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RsWitness {
    /// Number of vertices of the witness graph.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Number of induced matchings in the partition.
    pub matchings: usize,
    /// The certified upper bound `RS(n) ≤ n²/m`.
    pub rs_upper: f64,
    /// The heuristic shape `2^{√(log₂ n)}` for comparison.
    pub rs_heuristic: f64,
}

/// Builds the Behrend witness at roughly `target_vertices` vertices and
/// reports the certified upper bound on `RS` at that size.
pub fn witness(target_vertices: usize) -> RsWitness {
    let rs = RsGraph::behrend(target_vertices);
    let n = rs.graph().num_nodes();
    RsWitness {
        n,
        m: rs.graph().num_edges(),
        matchings: rs.matchings().len(),
        rs_upper: rs.rs_upper_witness(),
        rs_heuristic: rs_heuristic(n),
    }
}

/// The heuristic shape `2^{√(log₂ n)}` of the Behrend upper bound on
/// `RS(n)`, used by `RsParams::for_size` (in `hl-core`) as
/// a stand-in for the unknown true value.
pub fn rs_heuristic(n: usize) -> f64 {
    if n < 2 {
        return 1.0;
    }
    let log = (n as f64).log2();
    2f64.powf(log.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_is_consistent() {
        let w = witness(400);
        assert!(w.m > 0);
        assert!(w.matchings <= w.n, "Definition 1.3 requires <= n matchings");
        assert!(w.rs_upper >= 1.0);
        let density = w.m as f64 / (w.n as f64 * w.n as f64);
        assert!((w.rs_upper - 1.0 / density).abs() < 1e-6);
    }

    #[test]
    fn heuristic_shape_monotone() {
        assert!(rs_heuristic(100) < rs_heuristic(10_000));
        assert!(rs_heuristic(1) >= 1.0);
        // 2^sqrt(log2 n) is subpolynomial: much smaller than n^0.5 for large n.
        assert!(rs_heuristic(1_000_000) < (1_000_000f64).sqrt());
    }

    #[test]
    fn witnesses_get_denser_with_scale() {
        // The witness bound n²/m should grow slowly (subpolynomially):
        // going from n≈250 to n≈2500 must multiply it by far less than 10.
        let w1 = witness(250);
        let w2 = witness(2_500);
        assert!(w2.rs_upper / w1.rs_upper < 10.0);
    }
}
