//! The classical Ruzsa–Szemerédi graph built from a progression-free set.
//!
//! Given a 3-AP-free set `B ⊆ [0, K)` and a base-point range `[0, N)`, the
//! bipartite graph has left vertices `y = x + a` and right vertices
//! `z = x + 2a` (on disjoint integer ranges), one edge per pair
//! `(x, a) ∈ [N] × B`, and the edge set partitions into the `N` matchings
//! `M_x = { (x + a, x + 2a) : a ∈ B }`.
//!
//! **Why `M_x` is induced:** a cross edge between `(x+a, x+2a)` and
//! `(x+b, x+2b)` would be `(x+a, x+2b) = (x'+c, x'+2c)` for some pair
//! `(x', c)`, forcing `c = 2b − a` and hence the arithmetic progression
//! `a, b, c ∈ B` — which AP-freeness collapses to `a = b = c`. With
//! `|B| = N / 2^{Θ(√log N)}` (Behrend) the graph has `n` vertices,
//! `≤ n` induced matchings and `n² / 2^{Θ(√log n)}` edges, witnessing the
//! upper-bound side of `RS(n)`.

use hl_graph::{Graph, GraphBuilder, NodeId};

use crate::behrend;

/// A Ruzsa–Szemerédi graph together with its induced-matching partition.
#[derive(Debug, Clone)]
pub struct RsGraph {
    graph: Graph,
    matchings: Vec<Vec<(NodeId, NodeId)>>,
    base_points: usize,
    difference_set: Vec<u64>,
}

impl RsGraph {
    /// Builds the RS graph for base points `[0, base_points)` and the given
    /// AP-free difference set.
    ///
    /// # Panics
    ///
    /// Panics if `difference_set` is not 3-AP-free (checked eagerly — the
    /// induced-matching guarantee would silently fail otherwise).
    pub fn from_ap_free_set(base_points: usize, difference_set: &[u64]) -> Self {
        assert!(
            behrend::is_ap_free(difference_set),
            "difference set must be 3-AP-free for matchings to be induced"
        );
        let n = base_points as u64;
        let max_b = difference_set.iter().copied().max().unwrap_or(0);
        // Left vertices: y = x + a ∈ [0, n + max_b); right: z = x + 2a.
        let left_size = (n + max_b) as usize;
        let right_size = (n + 2 * max_b) as usize;
        let offset = left_size as u64;
        let mut builder =
            GraphBuilder::with_capacity(left_size + right_size, base_points * difference_set.len());
        let mut matchings = Vec::with_capacity(base_points);
        for x in 0..n {
            let mut m = Vec::with_capacity(difference_set.len());
            for &a in difference_set {
                let y = (x + a) as NodeId;
                let z = (offset + x + 2 * a) as NodeId;
                builder.add_unit_edge(y, z).expect("rs vertices in range"); // lint:allow(no-panic): y < left_size and z < left_size + right_size by the difference-set bounds
                m.push((y, z));
            }
            if !m.is_empty() {
                matchings.push(m);
            }
        }
        RsGraph {
            graph: builder.build(),
            matchings,
            base_points,
            difference_set: difference_set.to_vec(),
        }
    }

    /// Builds the densest RS graph on roughly `target_vertices` vertices
    /// using the best constructible AP-free difference set
    /// ([`behrend::best_ap_free_set`]).
    ///
    /// The construction uses base points `[0, N)` with `N ≈ target/5` so
    /// that `left + right ≈ (N + K) + (N + 2K) ≤ target` where the
    /// difference set lives in `[0, K)`, `K = N`.
    pub fn behrend(target_vertices: usize) -> Self {
        let n = (target_vertices / 5).max(2) as u64;
        let b = behrend::best_ap_free_set(n);
        RsGraph::from_ap_free_set(n as usize, &b)
    }

    /// The underlying bipartite graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The induced-matching partition (one matching per base point).
    pub fn matchings(&self) -> &[Vec<(NodeId, NodeId)>] {
        &self.matchings
    }

    /// Number of base points `N` (upper bound on the number of matchings).
    pub fn base_points(&self) -> usize {
        self.base_points
    }

    /// The AP-free difference set used.
    pub fn difference_set(&self) -> &[u64] {
        &self.difference_set
    }

    /// `true` when the number of matchings is at most the number of
    /// vertices — the condition in Definition 1.3.
    pub fn is_ruzsa_szemeredi(&self) -> bool {
        self.matchings.len() <= self.graph.num_nodes()
    }

    /// Edge density ratio `n² / m` — an empirical upper-bound witness for
    /// `RS(n)` (every RS graph has `m ≤ n²/RS(n)`, so `RS(n) ≤ n²/m`).
    pub fn rs_upper_witness(&self) -> f64 {
        let n = self.graph.num_nodes() as f64;
        let m = self.graph.num_edges().max(1) as f64;
        n * n / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induced::{is_induced_matching, is_induced_matching_partition};

    #[test]
    fn tiny_rs_graph_structure() {
        // B = {0, 1} is AP-free; N = 3 base points.
        let rs = RsGraph::from_ap_free_set(3, &[0, 1]);
        assert_eq!(rs.base_points(), 3);
        assert_eq!(rs.matchings().len(), 3);
        assert_eq!(rs.graph().num_edges(), 6);
        assert!(rs.is_ruzsa_szemeredi());
    }

    #[test]
    fn matchings_are_induced() {
        let rs = RsGraph::from_ap_free_set(12, &[0, 1, 3, 4, 9]);
        for m in rs.matchings() {
            assert!(is_induced_matching(rs.graph(), m));
        }
        assert!(is_induced_matching_partition(rs.graph(), rs.matchings()));
    }

    #[test]
    fn behrend_rs_graph_is_valid_partition() {
        let rs = RsGraph::behrend(300);
        assert!(rs.is_ruzsa_szemeredi());
        assert!(is_induced_matching_partition(rs.graph(), rs.matchings()));
    }

    #[test]
    fn ap_violating_set_rejected() {
        let result = std::panic::catch_unwind(|| RsGraph::from_ap_free_set(4, &[0, 1, 2]));
        assert!(result.is_err());
    }

    #[test]
    fn edge_count_formula() {
        let b = crate::behrend::behrend_set(40);
        let rs = RsGraph::from_ap_free_set(40, &b);
        assert_eq!(rs.graph().num_edges(), 40 * b.len());
        assert_eq!(rs.difference_set(), &b[..]);
    }

    #[test]
    fn witness_improves_with_size() {
        // Denser construction => smaller n²/m witness; the witness for a
        // larger Behrend graph should remain within a sane range.
        let small = RsGraph::behrend(100);
        let w = small.rs_upper_witness();
        assert!(w > 1.0);
    }

    #[test]
    fn empty_difference_set() {
        let rs = RsGraph::from_ap_free_set(5, &[]);
        assert_eq!(rs.graph().num_edges(), 0);
        assert_eq!(rs.matchings().len(), 0);
    }
}
