//! Induced matchings: verification and greedy edge-partition.
//!
//! `M ⊆ E(G)` is an *induced matching* (Definition 1.2) when (i) it is a
//! matching and (ii) the subgraph of `G` induced by `M`'s endpoints
//! contains exactly the edges of `M` — no "cross" edges between different
//! matching edges.

use std::collections::HashSet;

use hl_graph::{Graph, NodeId};

/// Checks whether `edges` forms an induced matching of `g`.
///
/// Quadratic in `|edges|`; fine for verification workloads.
pub fn is_induced_matching(g: &Graph, edges: &[(NodeId, NodeId)]) -> bool {
    // (i) matching: endpoints pairwise distinct, and each edge exists.
    let mut endpoints = HashSet::new();
    for &(u, v) in edges {
        if u == v || !g.has_edge(u, v) {
            return false;
        }
        if !endpoints.insert(u) || !endpoints.insert(v) {
            return false;
        }
    }
    // (ii) induced: no cross edge between endpoints of distinct edges.
    for (i, &(u1, v1)) in edges.iter().enumerate() {
        for &(u2, v2) in &edges[i + 1..] {
            if g.has_edge(u1, u2) || g.has_edge(u1, v2) || g.has_edge(v1, u2) || g.has_edge(v1, v2)
            {
                return false;
            }
        }
    }
    true
}

/// Checks that `matchings` is an edge *partition* of `g` into induced
/// matchings (every edge in exactly one matching, each matching induced).
pub fn is_induced_matching_partition(g: &Graph, matchings: &[Vec<(NodeId, NodeId)>]) -> bool {
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
    for m in matchings {
        if !is_induced_matching(g, m) {
            return false;
        }
        for &(u, v) in m {
            if !seen.insert((u.min(v), u.max(v))) {
                return false; // duplicate edge across matchings
            }
        }
    }
    seen.len() == g.num_edges()
}

/// Greedily partitions the edges of `g` into induced matchings, returning
/// the matchings. The count is an upper bound on the minimum number of
/// induced matchings needed — the quantity `RS`-type bounds constrain.
pub fn greedy_induced_partition(g: &Graph) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut remaining: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    let mut result = Vec::new();
    while !remaining.is_empty() {
        let mut matched: HashSet<NodeId> = HashSet::new();
        let mut current: Vec<(NodeId, NodeId)> = Vec::new();
        let mut rest: Vec<(NodeId, NodeId)> = Vec::new();
        'edges: for &(u, v) in &remaining {
            if matched.contains(&u) || matched.contains(&v) {
                rest.push((u, v));
                continue;
            }
            // Induced check against current matching: u and v must not be
            // adjacent to any already-matched endpoint.
            for &w in &matched {
                if g.has_edge(u, w) || g.has_edge(v, w) {
                    rest.push((u, v));
                    continue 'edges;
                }
            }
            matched.insert(u);
            matched.insert(v);
            current.push((u, v));
        }
        debug_assert!(!current.is_empty());
        result.push(current);
        remaining = rest;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::builder::graph_from_edges;
    use hl_graph::generators;

    #[test]
    fn single_edge_is_induced() {
        let g = generators::path(3);
        assert!(is_induced_matching(&g, &[(0, 1)]));
    }

    #[test]
    fn adjacent_edges_not_a_matching() {
        let g = generators::path(3);
        assert!(!is_induced_matching(&g, &[(0, 1), (1, 2)]));
    }

    #[test]
    fn cross_edge_breaks_inducedness() {
        // Path 0-1-2-3: {(0,1), (2,3)} is a matching but edge (1,2) crosses.
        let g = generators::path(4);
        assert!(!is_induced_matching(&g, &[(0, 1), (2, 3)]));
        // On 0-1 2-3 (disjoint edges) it is induced.
        let h = graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(is_induced_matching(&h, &[(0, 1), (2, 3)]));
    }

    #[test]
    fn nonexistent_edge_rejected() {
        let g = generators::path(4);
        assert!(!is_induced_matching(&g, &[(0, 2)]));
    }

    #[test]
    fn empty_matching_is_induced() {
        let g = generators::path(2);
        assert!(is_induced_matching(&g, &[]));
    }

    #[test]
    fn partition_validation() {
        let g = generators::path(4);
        let p = vec![vec![(0u32, 1u32)], vec![(1, 2)], vec![(2, 3)]];
        assert!(is_induced_matching_partition(&g, &p));
        // Missing an edge:
        let q = vec![vec![(0u32, 1u32)], vec![(1, 2)]];
        assert!(!is_induced_matching_partition(&g, &q));
        // Duplicate edge:
        let r = vec![vec![(0u32, 1u32)], vec![(0, 1)], vec![(1, 2)], vec![(2, 3)]];
        assert!(!is_induced_matching_partition(&g, &r));
    }

    #[test]
    fn greedy_partition_covers_all_edges() {
        for g in [
            generators::grid(4, 5),
            generators::cycle(9),
            generators::complete(7),
            generators::connected_gnm(30, 25, 3),
        ] {
            let p = greedy_induced_partition(&g);
            assert!(is_induced_matching_partition(&g, &p));
        }
    }

    #[test]
    fn greedy_partition_of_complete_graph_is_large() {
        // K_n has no induced matching of size 2, so the partition needs
        // exactly m = n(n-1)/2 matchings.
        let g = generators::complete(6);
        let p = greedy_induced_partition(&g);
        assert_eq!(p.len(), 15);
    }

    #[test]
    fn greedy_partition_of_perfect_matching_is_single() {
        let g = graph_from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let p = greedy_induced_partition(&g);
        assert_eq!(p.len(), 1);
    }
}
