//! Behrend's construction of large progression-free sets (1946).
//!
//! Vectors `x ∈ [0, C)^d` on a sphere `‖x‖² = r` cannot satisfy
//! `x + z = 2y` with `x ≠ z` (the sphere is strictly convex), and encoding
//! vectors as integers in base `2C − 1` keeps sums carry-free, so the
//! encoded sphere is a 3-AP-free subset of `[0, (2C−1)^d)`. Choosing
//! `d ≈ √(log n)` and the best radius gives density `n / 2^{Θ(√log n)}` —
//! exactly the quantity that appears in the paper's bounds.

use std::collections::HashMap;
use std::collections::HashSet;

/// Returns `true` when `set` contains no 3-term arithmetic progression
/// (distinct `a, b, c` with `a + c = 2b`).
///
/// # Example
///
/// ```
/// use hl_rs::behrend::is_ap_free;
///
/// assert!(is_ap_free(&[1, 2, 4, 8]));
/// assert!(!is_ap_free(&[1, 2, 3]));
/// ```
pub fn is_ap_free(set: &[u64]) -> bool {
    let lookup: HashSet<u64> = set.iter().copied().collect();
    for (i, &a) in set.iter().enumerate() {
        for &c in &set[i + 1..] {
            let s = a + c;
            if s % 2 == 0 && lookup.contains(&(s / 2)) && s / 2 != a && s / 2 != c {
                return false;
            }
        }
    }
    true
}

/// Greedy progression-free set in `[0, n)` (the Stanley sequence when
/// started from 0): scan upward, keep a value if it closes no 3-AP with two
/// kept values. Density `≈ n^{log₃2} ≈ n^{0.63}` — the pre-Behrend baseline
/// the experiments contrast against.
///
/// # Example
///
/// ```
/// use hl_rs::greedy_ap_free_set;
///
/// assert_eq!(greedy_ap_free_set(10), vec![0, 1, 3, 4, 9]);
/// ```
pub fn greedy_ap_free_set(n: u64) -> Vec<u64> {
    let mut chosen: Vec<u64> = Vec::new();
    let mut member = HashSet::new();
    for c in 0..n {
        // c closes an AP if there are a < b in the set with a + c = 2b,
        // i.e. b = (a + c) / 2 ... scanning b and checking a = 2b - c is
        // O(|set|) per candidate.
        let closes = chosen.iter().any(|&b| {
            if 2 * b >= c {
                let a = 2 * b - c;
                a != b && b != c && member.contains(&a)
            } else {
                false
            }
        });
        if !closes {
            chosen.push(c);
            member.insert(c);
        }
    }
    chosen
}

/// Behrend's construction: the largest sphere slice over a small range of
/// dimensions, encoded into `[0, n)`. Returns a sorted 3-AP-free set.
///
/// Note on scale: Behrend's density `n/2^{Θ(√log n)}` *asymptotically*
/// crushes the greedy `n^{log₃2}`, but the crossover sits far beyond any
/// computable universe (around `n ≈ 2⁶⁰`). At experiment-feasible sizes the
/// greedy set is denser — an honest empirical fact the EXPERIMENTS tables
/// record. Use [`best_ap_free_set`] when you just want the largest set we
/// can build.
pub fn behrend_set(n: u64) -> Vec<u64> {
    let mut best: Vec<u64> = Vec::new();
    if n < 8 {
        return greedy_ap_free_set(n);
    }
    // Theory suggests d ≈ sqrt(log2 n); scan a window around it.
    let logn = (n as f64).log2();
    let d_center = logn.sqrt().round() as u32;
    for d in d_center.saturating_sub(2).max(2)..=(d_center + 2) {
        if let Some(candidate) = behrend_for_dimension(n, d) {
            if candidate.len() > best.len() {
                best = candidate;
            }
        }
    }
    best.sort_unstable();
    debug_assert!(is_ap_free(&best));
    best
}

/// The best 3-AP-free set in `[0, n)` this crate can construct: the larger
/// of the Behrend sphere set and (for `n` small enough to afford it) the
/// greedy set.
pub fn best_ap_free_set(n: u64) -> Vec<u64> {
    let behrend = behrend_set(n);
    if n <= 150_000 {
        let greedy = greedy_ap_free_set(n);
        if greedy.len() > behrend.len() {
            return greedy;
        }
    }
    behrend
}

/// Behrend sphere slice for a fixed dimension `d`. Returns `None` when the
/// dimension is infeasible for this `n` (side length would drop below 2).
pub fn behrend_for_dimension(n: u64, d: u32) -> Option<Vec<u64>> {
    // Need base^d <= n with base = 2C - 1 and C >= 2.
    let base_max = (n as f64).powf(1.0 / d as f64).floor() as u64;
    if base_max < 3 {
        return None;
    }
    let base = if base_max.is_multiple_of(2) {
        base_max - 1
    } else {
        base_max
    };
    let c = base.div_ceil(2); // digits 0..c-1, doubled digits stay < base
    if c < 2 {
        return None;
    }
    // Enumerate all vectors in [0, c)^d, bucket by squared norm.
    let mut by_norm: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut digits = vec![0u64; d as usize];
    loop {
        let norm: u64 = digits.iter().map(|&x| x * x).sum();
        let mut val = 0u64;
        for &x in digits.iter().rev() {
            val = val * base + x;
        }
        by_norm.entry(norm).or_default().push(val);
        // Increment the odometer.
        let mut pos = 0usize;
        loop {
            if pos == d as usize {
                // Finished; take the best sphere.
                let best = by_norm
                    .into_values()
                    .max_by_key(|v| v.len())
                    .unwrap_or_default();
                return Some(best);
            }
            digits[pos] += 1;
            if digits[pos] < c {
                break;
            }
            digits[pos] = 0;
            pos += 1;
        }
    }
}

/// Density record for the experiment tables: the sizes of the greedy and
/// Behrend sets in `[0, n)` plus the ratio `n / |B|` (the paper's
/// `2^{Θ(√log n)}` shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApFreeDensity {
    /// Universe size.
    pub n: u64,
    /// Size of the greedy (Stanley) set.
    pub greedy: usize,
    /// Size of the Behrend set.
    pub behrend: usize,
    /// `n / max(greedy, behrend)` — the achieved gap factor (the paper's
    /// bounds put the truth between `2^{Θ(√log n)}` and `n^{1−o(1)}`-ish
    /// greedy density at feasible sizes).
    pub gap_factor: f64,
}

/// Computes [`ApFreeDensity`] for `n` (the greedy set is only evaluated up
/// to a work cap and reported as 0 beyond it).
pub fn density(n: u64) -> ApFreeDensity {
    let behrend = behrend_set(n).len();
    let greedy = if n <= 150_000 {
        greedy_ap_free_set(n).len()
    } else {
        0
    };
    let best = behrend.max(greedy).max(1);
    ApFreeDensity {
        n,
        greedy,
        behrend,
        gap_factor: n as f64 / best as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ap_free_detects_progressions() {
        assert!(is_ap_free(&[]));
        assert!(is_ap_free(&[5]));
        assert!(is_ap_free(&[0, 1, 3, 4]));
        assert!(!is_ap_free(&[0, 1, 2]));
        assert!(!is_ap_free(&[1, 5, 9]));
        assert!(!is_ap_free(&[10, 0, 5]), "order must not matter");
    }

    #[test]
    fn greedy_is_stanley_prefix() {
        // Known prefix of the Stanley sequence (greedy 3-AP-free from 0):
        // 0, 1, 3, 4, 9, 10, 12, 13, 27, ...
        let s = greedy_ap_free_set(28);
        assert_eq!(s, vec![0, 1, 3, 4, 9, 10, 12, 13, 27]);
        assert!(is_ap_free(&s));
    }

    #[test]
    fn greedy_density_matches_theory() {
        // |S ∩ [0, 3^k)| = 2^k for the Stanley sequence.
        let s = greedy_ap_free_set(243);
        assert_eq!(s.len(), 32);
    }

    #[test]
    fn behrend_sets_are_ap_free() {
        for n in [50u64, 500, 5_000, 50_000] {
            let b = behrend_set(n);
            assert!(!b.is_empty());
            assert!(b.iter().all(|&x| x < n), "elements must lie in [0, n)");
            assert!(is_ap_free(&b), "n = {n}");
        }
    }

    #[test]
    fn best_set_beats_sqrt_density() {
        // At n = 50k the best constructible set exceeds sqrt(n) comfortably
        // (the greedy branch wins at this scale, as documented).
        let b = best_ap_free_set(50_000);
        assert!(b.len() as f64 > (50_000f64).sqrt(), "got {}", b.len());
        assert!(is_ap_free(&b));
    }

    #[test]
    fn behrend_sphere_sizes_grow() {
        // Pure sphere construction must still scale up with n.
        let small = behrend_set(1_000).len();
        let large = behrend_set(1_000_000).len();
        assert!(large > 4 * small, "small={small} large={large}");
    }

    #[test]
    fn behrend_for_dimension_rejects_tiny() {
        assert!(behrend_for_dimension(4, 8).is_none());
    }

    #[test]
    fn behrend_for_dimension_is_sphere() {
        let b = behrend_for_dimension(1_000, 3).unwrap();
        assert!(is_ap_free(&b));
    }

    #[test]
    fn behrend_elements_sorted_unique() {
        let b = behrend_set(2_000);
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn density_report() {
        let d = density(1_000);
        assert_eq!(d.n, 1_000);
        assert!(d.greedy >= 100, "Stanley density ~ n^0.63");
        assert!(d.behrend >= 1);
        assert!(d.gap_factor >= 1.0);
        assert!((d.gap_factor - 1_000.0 / d.greedy.max(d.behrend) as f64).abs() < 1e-9);
    }
}
