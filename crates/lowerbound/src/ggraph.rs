//! The max-degree-3 unweighted expansion `G_{b,ℓ}` of `H_{b,ℓ}`
//! (Theorem 2.1).
//!
//! Every `H`-vertex `v` becomes a *core* vertex attached to two perfectly
//! balanced binary trees `T^in_v` and `T^out_v` (each with `s` leaves and
//! depth `b`), and every `H`-edge `{u, v}` of weight `w` becomes a unit
//! path of `w − 2b − 2` edges between the corresponding leaves
//! `u^out_v → v^in_u`, so that core-to-core distances in `G` equal weighted
//! distances in `H` while the maximum degree drops to 3.

use hl_graph::{Distance, Graph, GraphBuilder, NodeId};

use crate::hgraph::HGraph;
use crate::params::GadgetParams;

/// Every gadget endpoint is either an id the builder handed out via
/// `add_node` or an offset inside the preallocated core/tree blocks, so
/// the out-of-range error `add_unit_edge` can return is unreachable.
fn must_link(builder: &mut GraphBuilder, u: NodeId, v: NodeId) {
    builder
        .add_unit_edge(u, v)
        .expect("gadget endpoints are inside the preallocated layout"); // lint:allow(no-panic): endpoints come from the builder or the precomputed block layout
}

/// The graph `G_{b,ℓ}` with its mapping back to `H_{b,ℓ}`.
#[derive(Debug, Clone)]
pub struct GGraph {
    params: GadgetParams,
    graph: Graph,
    /// Core vertex in `G` of each `H`-vertex.
    core: Vec<NodeId>,
    /// Number of non-auxiliary (core + tree) vertices.
    structured: usize,
}

impl GGraph {
    /// Expands `H_{b,ℓ}` into `G_{b,ℓ}`.
    pub fn build(params: GadgetParams) -> Self {
        let h = HGraph::build(params);
        Self::from_hgraph(&h)
    }

    /// Expands an already-built [`HGraph`].
    pub fn from_hgraph(h: &HGraph) -> Self {
        let params = h.params();
        let s = params.side();
        let b = params.b as u64;
        let ell = params.ell as u64;
        let level_size = params.level_size();
        let h_n = params.h_num_nodes();
        let tree_nodes = 2 * s - 1;

        // Layout per H-vertex: [core, T_in block?, T_out block?].
        let mut core = vec![0 as NodeId; h_n as usize];
        let mut in_base = vec![NodeId::MAX; h_n as usize];
        let mut out_base = vec![NodeId::MAX; h_n as usize];
        let mut next: u64 = 0;
        for hv in 0..h_n {
            let level = hv / level_size;
            core[hv as usize] = next as NodeId;
            next += 1;
            if level > 0 {
                in_base[hv as usize] = next as NodeId;
                next += tree_nodes;
            }
            if level < 2 * ell {
                out_base[hv as usize] = next as NodeId;
                next += tree_nodes;
            }
        }
        let structured = next as usize;
        let mut builder = GraphBuilder::with_capacity(structured, structured * 2);

        // Trees and root links.
        for hv in 0..h_n as usize {
            for &base in [in_base[hv], out_base[hv]].iter() {
                if base == NodeId::MAX {
                    continue;
                }
                must_link(&mut builder, core[hv], base);
                for k in 0..(s - 1) {
                    let node = base + k as NodeId;
                    must_link(&mut builder, node, base + (2 * k + 1) as NodeId);
                    must_link(&mut builder, node, base + (2 * k + 2) as NodeId);
                }
            }
        }

        // Subdivided H-edges between tree leaves.
        let a = params.base_weight();
        let leaf = |base: NodeId, t: u64| base + (s - 1 + t) as NodeId;
        for i in 0..2 * ell {
            let c = if i < ell { i } else { 2 * ell - i - 1 } as usize;
            let stride = s.pow(c as u32);
            for idx in 0..level_size {
                let ju = (idx / stride) % s;
                let hu = (i * level_size + idx) as usize;
                for jv in 0..s {
                    let widx = idx - ju * stride + jv * stride;
                    let hv = ((i + 1) * level_size + widx) as usize;
                    let delta = ju.abs_diff(jv);
                    let w = a + delta * delta;
                    // Path of w - 2b - 2 unit edges between the two leaves.
                    let from = leaf(out_base[hu], jv);
                    let to = leaf(in_base[hv], ju);
                    let hops = w - 2 * b - 2;
                    debug_assert!(hops >= 1);
                    let mut prev = from;
                    for _ in 1..hops {
                        let mid = builder.add_node();
                        must_link(&mut builder, prev, mid);
                        prev = mid;
                    }
                    must_link(&mut builder, prev, to);
                }
            }
        }

        GGraph {
            params,
            graph: builder.build(),
            core,
            structured,
        }
    }

    /// The gadget parameters.
    pub fn params(&self) -> GadgetParams {
        self.params
    }

    /// The underlying unit-weight graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The `G`-core vertex of `H`-vertex `hv`.
    ///
    /// # Panics
    ///
    /// Panics if `hv` is out of range.
    pub fn core(&self, hv: NodeId) -> NodeId {
        self.core[hv as usize]
    }

    /// Core of `v_{level, coords}` addressed through the `H` codec.
    pub fn core_of(&self, h: &HGraph, level: u64, coords: &[u64]) -> NodeId {
        self.core(h.node_id(level, coords))
    }

    /// Number of core + tree vertices (the rest are path subdivisions).
    pub fn num_structured(&self) -> usize {
        self.structured
    }

    /// Expected core-to-core distance: equals the `H` weighted distance.
    pub fn predicted_distance(&self, h: &HGraph, hu: NodeId, hv: NodeId) -> Distance {
        hl_graph::dijkstra::dijkstra_distance_between(h.graph(), hu, hv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::bfs::bfs_distances;
    use hl_graph::properties::is_connected;

    fn g11() -> (HGraph, GGraph) {
        let p = GadgetParams::new(1, 1).unwrap();
        let h = HGraph::build(p);
        let g = GGraph::from_hgraph(&h);
        (h, g)
    }

    #[test]
    fn max_degree_is_three() {
        for (b, ell) in [(1, 1), (2, 1), (1, 2), (2, 2)] {
            let g = GGraph::build(GadgetParams::new(b, ell).unwrap());
            assert_eq!(g.graph().max_degree(), 3, "G({b},{ell})");
            assert!(is_connected(g.graph()));
            assert!(g.graph().is_unit_weighted());
        }
    }

    #[test]
    fn cores_have_degree_at_most_two() {
        let (h, g) = g11();
        for hv in 0..h.graph().num_nodes() as NodeId {
            assert!(g.graph().degree(g.core(hv)) <= 2);
        }
    }

    #[test]
    fn distances_match_h_across_levels() {
        // The paper's claim holds for vertices on *different* levels
        // (Lemma 2.2's proof: "for any u ∈ V_i and v ∈ V_j with i < j");
        // same-level pairs may shortcut through a tree without visiting the
        // core, saving the two root-core edges.
        let (h, g) = g11();
        let level_size = h.params().level_size();
        for hu in 0..h.graph().num_nodes() as NodeId {
            let dh = hl_graph::dijkstra::dijkstra_distances(h.graph(), hu);
            let dg = bfs_distances(g.graph(), g.core(hu));
            for hv in 0..h.graph().num_nodes() as NodeId {
                if hu as u64 / level_size == hv as u64 / level_size && hu != hv {
                    // Same level: G may only be shorter-or-equal.
                    assert!(dg[g.core(hv) as usize] <= dh[hv as usize]);
                    continue;
                }
                assert_eq!(
                    dg[g.core(hv) as usize],
                    dh[hv as usize],
                    "distance mismatch {hu}-{hv}"
                );
            }
        }
    }

    #[test]
    fn distances_match_h_figure1_sample() {
        let p = GadgetParams::new(2, 2).unwrap();
        let h = HGraph::build(p);
        let g = GGraph::from_hgraph(&h);
        let hu = h.node_id(0, &[1, 0]);
        let hz = h.node_id(4, &[3, 2]);
        let dg = bfs_distances(g.graph(), g.core(hu));
        assert_eq!(dg[g.core(hz) as usize], 4 * 96 + 4);
    }

    #[test]
    fn node_count_scales_with_total_weight() {
        let p = GadgetParams::new(2, 2).unwrap();
        let h = HGraph::build(p);
        let g = GGraph::from_hgraph(&h);
        let total_w: u64 = h.graph().edges().map(|(_, _, w)| w).sum();
        let n = g.graph().num_nodes() as u64;
        // n = structured + sum(w - 2b - 3); structured is lower order.
        assert!(
            n > total_w / 2 && n < total_w + 10_000,
            "n = {n}, total weight = {total_w}"
        );
    }

    #[test]
    fn structured_count_formula() {
        let (h, g) = g11();
        // level 0 and 2: core + one tree (3 nodes) each = 4; level 1: core +
        // two trees = 7. Two vertices per level.
        let expected = 2 * (4 + 7 + 4);
        assert_eq!(g.num_structured(), expected);
        assert_eq!(h.graph().num_nodes(), 6);
    }

    #[test]
    fn all_aux_vertices_have_degree_two() {
        let (_, g) = g11();
        for v in g.num_structured()..g.graph().num_nodes() {
            assert_eq!(g.graph().degree(v as NodeId), 2, "aux vertex {v}");
        }
    }
}
