//! Sampled verification for gadget sizes where exhaustive checks are too
//! expensive: Lemma 2.2 on a seeded subset of even pairs, and the counting
//! audit on a seeded subset of triples.

use hl_graph::rng::Xorshift64;
use hl_graph::NodeId;

use hl_core::label::HubLabeling;

use crate::accounting::{audit, AccountingReport, Triple};
use crate::hgraph::HGraph;
use crate::midpoint::{check_pair, MidpointCheck};

/// Draws `count` independent even pairs `(x, z)` (uniform over the even-
/// difference pairs), seeded.
pub fn sample_even_pairs(h: &HGraph, count: usize, seed: u64) -> Vec<(Vec<u64>, Vec<u64>)> {
    let params = h.params();
    let s = params.side();
    let ell = params.ell as usize;
    let mut rng = Xorshift64::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x: Vec<u64> = (0..ell).map(|_| rng.gen_u64_below(s)).collect();
            // z_k must match x_k's parity: draw a half-range offset.
            let z: Vec<u64> = x
                .iter()
                .map(|&xk| {
                    let parity = xk % 2;
                    2 * rng.gen_u64_below(s / 2) + parity
                })
                .collect();
            (x, z)
        })
        .collect()
}

/// Checks Lemma 2.2 on `count` sampled pairs; returns the failures.
pub fn check_sampled_pairs(h: &HGraph, count: usize, seed: u64) -> Vec<MidpointCheck> {
    sample_even_pairs(h, count, seed)
        .into_iter()
        .map(|(x, z)| check_pair(h, &x, &z))
        .filter(|c| !c.holds())
        .collect()
}

/// Runs the counting audit on `count` sampled triples.
pub fn audit_sampled(
    h: &HGraph,
    labeling: &HubLabeling,
    count: usize,
    seed: u64,
) -> AccountingReport {
    let ell = h.params().ell as u64;
    let triples: Vec<Triple> = sample_even_pairs(h, count, seed)
        .into_iter()
        .map(|(x, z)| {
            let mid: Vec<u64> = x.iter().zip(&z).map(|(&a, &c)| (a + c) / 2).collect();
            (
                h.node_id(0, &x) as NodeId,
                h.node_id(ell, &mid) as NodeId,
                h.node_id(2 * ell, &z) as NodeId,
            )
        })
        .collect();
    audit(h.graph(), labeling, &triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GadgetParams;
    use hl_core::pll::PrunedLandmarkLabeling;

    #[test]
    fn sampled_pairs_have_even_differences() {
        let h = HGraph::build(GadgetParams::new(3, 2).unwrap());
        for (x, z) in sample_even_pairs(&h, 100, 4) {
            assert!(x.iter().zip(&z).all(|(&a, &c)| a.abs_diff(c) % 2 == 0));
            assert!(x.iter().all(|&d| d < 8) && z.iter().all(|&d| d < 8));
        }
    }

    #[test]
    fn sampling_deterministic() {
        let h = HGraph::build(GadgetParams::new(2, 2).unwrap());
        assert_eq!(sample_even_pairs(&h, 20, 7), sample_even_pairs(&h, 20, 7));
        assert_ne!(sample_even_pairs(&h, 20, 7), sample_even_pairs(&h, 20, 8));
    }

    #[test]
    fn lemma22_holds_on_samples_of_larger_gadget() {
        // H(3,2) has 1024 even pairs; sample 64 and verify.
        let h = HGraph::build(GadgetParams::new(3, 2).unwrap());
        assert!(check_sampled_pairs(&h, 64, 3).is_empty());
    }

    #[test]
    fn sampled_audit_charges_everything() {
        let h = HGraph::build(GadgetParams::new(3, 2).unwrap());
        let hl = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
        let report = audit_sampled(&h, &hl, 48, 5);
        assert!(report.all_charged(), "{report:?}");
        assert_eq!(report.triples, 48);
    }
}
