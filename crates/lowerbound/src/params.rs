//! Parameters and closed-form predictions for the `H_{b,ℓ}` / `G_{b,ℓ}`
//! family of Theorem 2.1.

use hl_graph::GraphError;

/// Parameters of the gadget: `b` (side-length exponent, `s = 2^b`) and `ℓ`
/// (half the number of level transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GadgetParams {
    /// Side-length exponent; the per-coordinate alphabet is `s = 2^b`.
    pub b: u32,
    /// Number of coordinate dimensions; the graph has `2ℓ + 1` levels.
    pub ell: u32,
}

impl GadgetParams {
    /// Creates parameters, validating feasibility of the construction.
    ///
    /// # Errors
    ///
    /// Rejects `b == 0` or `ell == 0` and parameter combinations whose
    /// level size `s^ℓ` exceeds `2^32` (vertex ids would overflow).
    pub fn new(b: u32, ell: u32) -> Result<Self, GraphError> {
        if b == 0 || ell == 0 {
            return Err(GraphError::InvalidParameters {
                reason: "gadget requires b >= 1 and ell >= 1".into(),
            });
        }
        if (b as u64) * (ell as u64) > 26 {
            return Err(GraphError::InvalidParameters {
                reason: format!("level size 2^(b*ell) = 2^{} too large", b * ell),
            });
        }
        Ok(GadgetParams { b, ell })
    }

    /// The per-coordinate alphabet size `s = 2^b`.
    pub fn side(&self) -> u64 {
        1u64 << self.b
    }

    /// The base edge weight `A = 3ℓs²`.
    pub fn base_weight(&self) -> u64 {
        3 * self.ell as u64 * self.side() * self.side()
    }

    /// Number of levels, `2ℓ + 1`.
    pub fn num_levels(&self) -> u64 {
        2 * self.ell as u64 + 1
    }

    /// Vertices per level, `s^ℓ`.
    pub fn level_size(&self) -> u64 {
        self.side().pow(self.ell)
    }

    /// `|V(H_{b,ℓ})| = (2ℓ+1)·s^ℓ`.
    pub fn h_num_nodes(&self) -> u64 {
        self.num_levels() * self.level_size()
    }

    /// `|E(H_{b,ℓ})| = 2ℓ·s^ℓ·s` (each vertex has `s` up-neighbors).
    pub fn h_num_edges(&self) -> u64 {
        2 * self.ell as u64 * self.level_size() * self.side()
    }

    /// The paper's triplet count `s^ℓ · (s/2)^ℓ` — the number of
    /// `(x, y, z)` triples with `y = (x+z)/2`, each charging one middle
    /// vertex to a hubset (claim (iii) of Theorem 2.1).
    pub fn triplet_count(&self) -> u64 {
        self.level_size() * (self.side() / 2).pow(self.ell)
    }

    /// Lower bound on `Σ_v |S*_v|` from the counting argument:
    /// exactly [`GadgetParams::triplet_count`].
    pub fn star_total_lower_bound(&self) -> u64 {
        self.triplet_count()
    }

    /// The weighted-diameter upper bound `(3ℓ+1)s² · 4ℓ` used in Eq. (1)
    /// to relate `|S*_v|` and `|S_v|` in `G_{b,ℓ}` (hop diameter ×
    /// max-weight slack). For `H_{b,ℓ}` the hop diameter is just `2ℓ`.
    pub fn eq1_factor_g(&self) -> u64 {
        (3 * self.ell as u64 + 1) * self.side() * self.side() * 4 * self.ell as u64
    }

    /// Closed-form lower bound on the *average* hubset size of `H_{b,ℓ}`
    /// implied by claim (iii): `triplets / (n_H · (2ℓ + 1))`, using the hop
    /// diameter `2ℓ` (+1 for the root) as the `S* → S` conversion factor.
    pub fn h_avg_hub_lower_bound(&self) -> f64 {
        self.triplet_count() as f64 / (self.h_num_nodes() as f64 * (2.0 * self.ell as f64 + 1.0))
    }

    /// The length of the unique shortest `v_{0,x} → v_{2ℓ,z}` path when
    /// `z - x` is componentwise even: `2ℓA + Σ_k (z_k - x_k)²/2`.
    pub fn unique_sp_length(&self, x: &[u64], z: &[u64]) -> u64 {
        debug_assert_eq!(x.len(), self.ell as usize);
        debug_assert_eq!(z.len(), self.ell as usize);
        let spread: u64 = x
            .iter()
            .zip(z)
            .map(|(&a, &c)| {
                let d = a.abs_diff(c);
                debug_assert!(d % 2 == 0, "coordinates must have even difference");
                d * d / 2
            })
            .sum();
        2 * self.ell as u64 * self.base_weight() + spread
    }
}

impl std::fmt::Display for GadgetParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "H(b={}, l={})", self.b, self.ell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_params() {
        assert!(GadgetParams::new(0, 2).is_err());
        assert!(GadgetParams::new(2, 0).is_err());
        assert!(GadgetParams::new(9, 3).is_err());
    }

    #[test]
    fn figure1_parameters() {
        // Figure 1 uses b = 2, ℓ = 2 (s = 4).
        let p = GadgetParams::new(2, 2).unwrap();
        assert_eq!(p.side(), 4);
        assert_eq!(p.base_weight(), 96); // A = 3·2·16
        assert_eq!(p.num_levels(), 5);
        assert_eq!(p.level_size(), 16);
        assert_eq!(p.h_num_nodes(), 80);
        assert_eq!(p.h_num_edges(), 2 * 2 * 16 * 4);
    }

    #[test]
    fn triplet_count_matches_formula() {
        let p = GadgetParams::new(2, 2).unwrap();
        // s^ℓ (s/2)^ℓ = 16 · 4 = 64.
        assert_eq!(p.triplet_count(), 64);
        let p = GadgetParams::new(3, 2).unwrap();
        assert_eq!(p.triplet_count(), 64 * 16);
    }

    #[test]
    fn figure1_path_lengths() {
        // Blue path of Figure 1: (1,0) -> (3,2), both coordinate gaps 2:
        // length 4A + 4.
        let p = GadgetParams::new(2, 2).unwrap();
        assert_eq!(p.unique_sp_length(&[1, 0], &[3, 2]), 4 * 96 + 4);
        // Zero spread: straight climb costs 4A.
        assert_eq!(p.unique_sp_length(&[1, 1], &[1, 1]), 4 * 96);
    }

    #[test]
    fn lower_bound_positive_and_scaling() {
        let small = GadgetParams::new(2, 2).unwrap();
        let big = GadgetParams::new(3, 2).unwrap();
        assert!(small.h_avg_hub_lower_bound() > 0.0);
        assert!(
            big.h_avg_hub_lower_bound() > small.h_avg_hub_lower_bound(),
            "bound grows with the level size"
        );
    }

    #[test]
    fn display_shape() {
        let p = GadgetParams::new(2, 3).unwrap();
        assert_eq!(p.to_string(), "H(b=2, l=3)");
    }
}
