//! Middle-layer removal: the graphs `H'_{b,ℓ}` / `G'_{b,ℓ}` of Section 3.
//!
//! Removing a subset `W` of the middle layer `V_ℓ` makes the
//! `v_{0,x} → v_{2ℓ,z}` distance *sensitive* to the presence of the
//! midpoint (Observation 3.1): if `v_{ℓ,(x+z)/2}` is present, the distance
//! is exactly the unique-path length `L₀`; if it was removed, every
//! remaining path is strictly longer. The Sum-Index protocol of
//! Theorem 1.6 decodes one bit from exactly this dichotomy.

use hl_graph::{Distance, Graph, GraphBuilder, NodeId};

use crate::hgraph::HGraph;
use crate::params::GadgetParams;

/// `H_{b,ℓ}` with a subset of the middle layer removed.
#[derive(Debug, Clone)]
pub struct RemovedMiddle {
    params: GadgetParams,
    graph: Graph,
    removed: Vec<bool>,
}

impl RemovedMiddle {
    /// Removes from `h` every middle-layer vertex `v_{ℓ,y}` for which
    /// `keep(y) == false`. Vertex ids are preserved (removed vertices
    /// simply become isolated), so the `H` codec keeps working.
    pub fn build(h: &HGraph, keep: impl Fn(&[u64]) -> bool) -> Self {
        let params = h.params();
        let ell = params.ell as u64;
        let mut removed = vec![false; h.graph().num_nodes()];
        for y in h.all_vectors() {
            if !keep(&y) {
                removed[h.node_id(ell, &y) as usize] = true;
            }
        }
        let mut builder = GraphBuilder::with_capacity(h.graph().num_nodes(), h.graph().num_edges());
        for (u, v, w) in h.graph().edges() {
            if !removed[u as usize] && !removed[v as usize] {
                builder.add_edge(u, v, w).expect("edges in range"); // lint:allow(no-panic): endpoints come from a graph with the same node count
            }
        }
        RemovedMiddle {
            params,
            graph: builder.build(),
            removed,
        }
    }

    /// The gadget parameters.
    pub fn params(&self) -> GadgetParams {
        self.params
    }

    /// The pruned graph (same vertex ids as the original `H`).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// `true` when vertex `v` was removed.
    pub fn is_removed(&self, v: NodeId) -> bool {
        self.removed[v as usize]
    }

    /// Number of removed middle vertices.
    pub fn num_removed(&self) -> usize {
        self.removed.iter().filter(|&&r| r).count()
    }
}

/// Observation 3.1: decodes whether the midpoint `v_{ℓ,(x+z)/2}` was
/// present, from `x`, `z` and the measured `v_{0,x} → v_{2ℓ,z}` distance
/// in the pruned graph.
///
/// Returns `true` (present) iff the distance equals the unique-path length
/// `L₀ = 2ℓA + Σ(z_k−x_k)²/2`; any removal forces a strictly larger
/// distance (or disconnection).
pub fn decode_midpoint_presence(
    params: &GadgetParams,
    x: &[u64],
    z: &[u64],
    measured: Distance,
) -> bool {
    measured == params.unique_sp_length(x, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::dijkstra::dijkstra_distance_between;

    fn h22() -> HGraph {
        HGraph::build(GadgetParams::new(2, 2).unwrap())
    }

    #[test]
    fn no_removal_keeps_graph() {
        let h = h22();
        let r = RemovedMiddle::build(&h, |_| true);
        assert_eq!(r.num_removed(), 0);
        assert_eq!(r.graph().num_edges(), h.graph().num_edges());
    }

    #[test]
    fn removal_isolates_vertices() {
        let h = h22();
        let r = RemovedMiddle::build(&h, |y| y != [0, 0]);
        assert_eq!(r.num_removed(), 1);
        let dead = h.node_id(2, &[0, 0]);
        assert!(r.is_removed(dead));
        assert_eq!(r.graph().degree(dead), 0);
        assert_eq!(r.graph().num_edges(), h.graph().num_edges() - 8);
    }

    #[test]
    fn distance_sensitive_to_midpoint() {
        let h = h22();
        let params = h.params();
        let x = [1u64, 0];
        let z = [3u64, 2];
        let mid = [2u64, 1];
        let src = h.node_id(0, &x);
        let dst = h.node_id(4, &z);
        // Midpoint present: distance = L0.
        let keep_all = RemovedMiddle::build(&h, |_| true);
        let d1 = dijkstra_distance_between(keep_all.graph(), src, dst);
        assert!(decode_midpoint_presence(&params, &x, &z, d1));
        // Midpoint removed: strictly longer.
        let pruned = RemovedMiddle::build(&h, |y| y != mid);
        let d2 = dijkstra_distance_between(pruned.graph(), src, dst);
        assert!(d2 > d1);
        assert!(!decode_midpoint_presence(&params, &x, &z, d2));
    }

    #[test]
    fn unrelated_removals_do_not_affect_decoding() {
        let h = h22();
        let params = h.params();
        let x = [0u64, 0];
        let z = [2u64, 2];
        // Remove half the middle layer but keep the midpoint (1,1).
        let pruned = RemovedMiddle::build(&h, |y| (y[0] + y[1]) % 2 == 0);
        assert!(pruned.num_removed() > 0);
        let d = dijkstra_distance_between(pruned.graph(), h.node_id(0, &x), h.node_id(4, &z));
        assert!(decode_midpoint_presence(&params, &x, &z, d));
    }

    #[test]
    fn every_even_pair_decodes_correctly_under_random_removal() {
        let h = HGraph::build(GadgetParams::new(1, 2).unwrap());
        let params = h.params();
        // Deterministic pseudo-random keep pattern.
        let keep = |y: &[u64]| !(y[0] * 31 + y[1] * 17).is_multiple_of(3);
        let pruned = RemovedMiddle::build(&h, keep);
        for (x, z, mid) in h.even_pairs() {
            let d = dijkstra_distance_between(pruned.graph(), h.node_id(0, &x), h.node_id(4, &z));
            assert_eq!(
                decode_midpoint_presence(&params, &x, &z, d),
                keep(&mid),
                "pair {x:?} {z:?}"
            );
        }
    }
}
