//! The lower-bound gadgets of Section 2 and 3 of the paper: the layered
//! weighted graph `H_{b,ℓ}`, its max-degree-3 expansion `G_{b,ℓ}`
//! (Theorem 2.1, Figure 1), the unique-shortest-path midpoint property
//! (Lemma 2.2), the triplet-counting machinery that yields the
//! `n / 2^{Θ(√log n)}` average hub-size lower bound (Theorem 1.1), and the
//! middle-layer removal `G'_{b,ℓ}` that powers the Sum-Index reduction
//! (Theorem 1.6).
//!
//! # The construction in brief
//!
//! `H_{b,ℓ}` has `2ℓ+1` levels of `s^ℓ` vertices each (`s = 2^b`), a vertex
//! per `ℓ`-dimensional vector over `[0, s)`. Edges join consecutive levels
//! between vectors differing in at most one *designated* coordinate (the
//! coordinate cycles `1..ℓ` going up, then `ℓ..1`), with weight
//! `A + (j_c − j'_c)²`, `A = 3ℓs²`. Convexity of the squared step costs
//! makes the shortest `v_{0,x} → v_{2ℓ,z}` path unique whenever `z − x` is
//! even, and it passes through the *midpoint* `v_{ℓ,(x+z)/2}` — so
//! `(s²/2)^ℓ` pairs each pin a distinct middle vertex into one of their two
//! hubsets, forcing average hubset size `≈ s^ℓ/2^ℓ`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod ggraph;
pub mod hgraph;
pub mod midpoint;
pub mod params;
pub mod removal;
pub mod sampling;

pub use ggraph::GGraph;
pub use hgraph::HGraph;
pub use params::GadgetParams;
