//! The triplet-counting argument of Theorem 2.1, claim (iii), made
//! executable.
//!
//! For every triple `(x, y, z)` with `y = (x+z)/2` the midpoint vertex
//! `v_{ℓ,y}` lies on the unique shortest `v_{0,x} → v_{2ℓ,z}` path, so for
//! any valid hub labeling with monotone closure `S*`, either
//! `v_{ℓ,y} ∈ S*_{v_{0,x}}` or `v_{ℓ,y} ∈ S*_{v_{2ℓ,z}}`. Because `z` is
//! determined by `(x, y)` and `x` by `(y, z)`, each charge is distinct and
//! `Σ_v |S*_v| ≥ s^ℓ·(s/2)^ℓ` follows — the executable core of the
//! `n/2^{Θ(√log n)}` lower bound.

use hl_graph::sptree::ShortestPathTree;
use hl_graph::{Graph, NodeId};

use hl_core::label::HubLabeling;

use crate::hgraph::HGraph;

/// A midpoint triple in graph-vertex form: `(source, midpoint, target)`.
pub type Triple = (NodeId, NodeId, NodeId);

/// Enumerates the paper's triples `(v_{0,x}, v_{ℓ,(x+z)/2}, v_{2ℓ,z})` over
/// all componentwise-even pairs, as `H`-vertex ids.
pub fn h_triples(h: &HGraph) -> Vec<Triple> {
    let ell = h.params().ell as u64;
    h.even_pairs()
        .map(|(x, z, mid)| {
            (
                h.node_id(0, &x),
                h.node_id(ell, &mid),
                h.node_id(2 * ell, &z),
            )
        })
        .collect()
}

/// Outcome of the accounting check for a concrete labeling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccountingReport {
    /// Number of triples audited (`s^ℓ (s/2)^ℓ`).
    pub triples: usize,
    /// Triples whose midpoint was charged to an endpoint's `S*`.
    pub charged: usize,
    /// `Σ_v |S_v|` of the audited labeling.
    pub total_hubs: usize,
    /// `Σ over endpoint vertices of |S*_v|` (closures computed only at
    /// triple endpoints).
    pub star_total_at_endpoints: usize,
    /// The theoretical lower bound on `Σ_v |S*_v|` (= `triples`).
    pub star_lower_bound: usize,
}

impl AccountingReport {
    /// `true` when every triple was charged — the inequality of claim (iii)
    /// is then witnessed: `Σ|S*| ≥ triples`.
    pub fn all_charged(&self) -> bool {
        self.charged == self.triples
    }

    /// `true` when the measured `S*` mass at endpoints already meets the
    /// counting lower bound.
    pub fn bound_met(&self) -> bool {
        self.star_total_at_endpoints >= self.star_lower_bound
    }
}

/// Audits a hub labeling of `graph` against the given triples.
///
/// Builds one canonical shortest-path tree per distinct endpoint (sources
/// and targets), closes each endpoint's hubset under ancestors, and counts
/// the midpoint charges. Works for labelings of `H_{b,ℓ}` (pass
/// [`h_triples`]) and of `G_{b,ℓ}` (pass core-mapped triples).
pub fn audit(graph: &Graph, labeling: &HubLabeling, triples: &[Triple]) -> AccountingReport {
    use std::collections::HashMap;
    let mut closures: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut endpoints: Vec<NodeId> = Vec::new();
    for &(u, _, z) in triples {
        endpoints.push(u);
        endpoints.push(z);
    }
    endpoints.sort_unstable();
    endpoints.dedup();
    for &e in &endpoints {
        let tree = ShortestPathTree::build(graph, e);
        closures.insert(e, tree.ancestor_closure(labeling.label(e).hubs()));
    }
    let contains = |v: NodeId, x: NodeId| closures[&v].binary_search(&x).is_ok();
    let charged = triples
        .iter()
        .filter(|&&(u, mid, z)| contains(u, mid) || contains(z, mid))
        .count();
    AccountingReport {
        triples: triples.len(),
        charged,
        total_hubs: labeling.total_hubs(),
        star_total_at_endpoints: endpoints.iter().map(|e| closures[e].len()).sum(),
        star_lower_bound: triples.len(),
    }
}

/// Audits a labeling of `H_{b,ℓ}` directly.
pub fn audit_h(h: &HGraph, labeling: &HubLabeling) -> AccountingReport {
    audit(h.graph(), labeling, &h_triples(h))
}

/// Audits a labeling of `G_{b,ℓ}`, mapping the triples through cores.
pub fn audit_g(h: &HGraph, g: &crate::ggraph::GGraph, labeling: &HubLabeling) -> AccountingReport {
    let triples: Vec<Triple> = h_triples(h)
        .into_iter()
        .map(|(u, m, z)| (g.core(u), g.core(m), g.core(z)))
        .collect();
    audit(g.graph(), labeling, &triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ggraph::GGraph;
    use crate::params::GadgetParams;
    use hl_core::pll::PrunedLandmarkLabeling;

    #[test]
    fn triples_are_distinct_and_counted() {
        let h = HGraph::build(GadgetParams::new(2, 2).unwrap());
        let ts = h_triples(&h);
        assert_eq!(ts.len() as u64, h.params().triplet_count());
        let set: std::collections::HashSet<_> = ts.iter().collect();
        assert_eq!(set.len(), ts.len());
        // (x, y) determines z and (y, z) determines x: the (source, mid)
        // pairs and (mid, target) pairs are each distinct.
        let sm: std::collections::HashSet<_> = ts.iter().map(|&(u, m, _)| (u, m)).collect();
        let mt: std::collections::HashSet<_> = ts.iter().map(|&(_, m, z)| (m, z)).collect();
        assert_eq!(sm.len(), ts.len());
        assert_eq!(mt.len(), ts.len());
    }

    #[test]
    fn pll_labeling_charges_every_triple_on_h() {
        let h = HGraph::build(GadgetParams::new(2, 2).unwrap());
        let hl = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
        let report = audit_h(&h, &hl);
        assert!(report.all_charged(), "{report:?}");
        assert!(report.bound_met());
        assert!(report.total_hubs >= 1);
    }

    #[test]
    fn pll_labeling_charges_every_triple_on_g() {
        let p = GadgetParams::new(1, 2).unwrap();
        let h = HGraph::build(p);
        let g = GGraph::from_hgraph(&h);
        let hl = PrunedLandmarkLabeling::by_degree(g.graph()).into_labeling();
        let report = audit_g(&h, &g, &hl);
        assert!(report.all_charged(), "{report:?}");
    }

    #[test]
    fn broken_labeling_fails_audit() {
        // An empty labeling charges nothing (it is not a cover).
        let h = HGraph::build(GadgetParams::new(1, 1).unwrap());
        let empty = HubLabeling::empty(h.graph().num_nodes());
        let report = audit_h(&h, &empty);
        assert!(!report.all_charged());
        assert_eq!(report.charged, 0);
    }

    #[test]
    fn average_hub_size_respects_theory() {
        // The PLL average hub size on H must sit above the closed-form
        // counting bound (it is a *lower* bound on any labeling).
        let p = GadgetParams::new(2, 2).unwrap();
        let h = HGraph::build(p);
        let hl = PrunedLandmarkLabeling::by_degree(h.graph()).into_labeling();
        assert!(
            hl.average_hubs() >= p.h_avg_hub_lower_bound(),
            "avg {} < bound {}",
            hl.average_hubs(),
            p.h_avg_hub_lower_bound()
        );
    }
}
