//! Verification of Lemma 2.2: for every pair `v_{0,x}`, `v_{2ℓ,z}` with
//! componentwise-even `z − x`, the shortest path is *unique*, has length
//! `2ℓA + Σ(z_k−x_k)²/2`, and passes through the midpoint
//! `v_{ℓ,(x+z)/2}`.

use hl_graph::dijkstra::dijkstra_count_paths;
use hl_graph::sptree::ShortestPathTree;
use hl_graph::NodeId;

use crate::hgraph::HGraph;

/// Result of checking one Lemma 2.2 pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MidpointCheck {
    /// The level-0 endpoint vector `x`.
    pub x: Vec<u64>,
    /// The level-`2ℓ` endpoint vector `z`.
    pub z: Vec<u64>,
    /// Measured shortest-path distance.
    pub distance: u64,
    /// Predicted unique shortest-path length.
    pub predicted: u64,
    /// Number of shortest paths found.
    pub path_count: u64,
    /// Whether the canonical shortest path passes the midpoint vertex.
    pub through_midpoint: bool,
}

impl MidpointCheck {
    /// `true` when the pair satisfies every claim of Lemma 2.2.
    pub fn holds(&self) -> bool {
        self.distance == self.predicted && self.path_count == 1 && self.through_midpoint
    }
}

/// Checks Lemma 2.2 for a single pair `(x, z)`.
///
/// # Panics
///
/// Panics if the coordinate differences are not all even (the lemma's
/// hypothesis) or the vectors have the wrong dimension.
pub fn check_pair(h: &HGraph, x: &[u64], z: &[u64]) -> MidpointCheck {
    let params = h.params();
    assert!(
        x.iter().zip(z).all(|(&a, &c)| a.abs_diff(c) % 2 == 0),
        "Lemma 2.2 requires componentwise even differences"
    );
    let mid: Vec<u64> = x.iter().zip(z).map(|(&a, &c)| (a + c) / 2).collect();
    let src = h.node_id(0, x);
    let dst = h.node_id(2 * params.ell as u64, z);
    let mid_id = h.node_id(params.ell as u64, &mid);
    let (dist, count) = dijkstra_count_paths(h.graph(), src);
    let tree = ShortestPathTree::build(h.graph(), src);
    let through = tree
        .path_to(dst)
        .map(|p| p.contains(&mid_id))
        .unwrap_or(false);
    MidpointCheck {
        x: x.to_vec(),
        z: z.to_vec(),
        distance: dist[dst as usize],
        predicted: params.unique_sp_length(x, z),
        path_count: count[dst as usize],
        through_midpoint: through,
    }
}

/// Checks Lemma 2.2 for **all** even pairs of the gadget; returns the
/// failures (empty = the lemma holds on this instance).
pub fn check_all_pairs(h: &HGraph) -> Vec<MidpointCheck> {
    let mut failures = Vec::new();
    // Group by source x to reuse the Dijkstra run.
    let params = h.params();
    let two_ell = 2 * params.ell as u64;
    let xs: Vec<Vec<u64>> = h.all_vectors().collect();
    for x in &xs {
        let src = h.node_id(0, x);
        let (dist, count) = dijkstra_count_paths(h.graph(), src);
        let tree = ShortestPathTree::build(h.graph(), src);
        for z in h.all_vectors() {
            if !x.iter().zip(&z).all(|(&a, &c)| a.abs_diff(c) % 2 == 0) {
                continue;
            }
            let mid: Vec<u64> = x.iter().zip(&z).map(|(&a, &c)| (a + c) / 2).collect();
            let dst = h.node_id(two_ell, &z);
            let mid_id = h.node_id(params.ell as u64, &mid);
            let through = tree
                .path_to(dst)
                .map(|p| p.contains(&mid_id))
                .unwrap_or(false);
            let check = MidpointCheck {
                x: x.clone(),
                z: z.clone(),
                distance: dist[dst as usize],
                predicted: params.unique_sp_length(x, &z),
                path_count: count[dst as usize],
                through_midpoint: through,
            };
            if !check.holds() {
                failures.push(check);
            }
        }
    }
    failures
}

/// The Figure 1 sanity check: in `H_{2,2}`, the blue path
/// `v_{0,(1,0)} → v_{4,(3,2)}` is the unique shortest path, has length
/// `4A + 4` and passes `v_{2,(2,1)}`; the red detour through `v_{2,(3,2)}`
/// costs `4A + 8`.
pub fn figure1_check(h: &HGraph) -> (MidpointCheck, u64) {
    assert_eq!(
        (h.params().b, h.params().ell),
        (2, 2),
        "Figure 1 uses b = ℓ = 2"
    );
    let blue = check_pair(h, &[1, 0], &[3, 2]);
    // Red path length: forced detour keeping coordinate deltas (2,0)+(0,2)
    // in unbalanced splits: climb to (3,2) directly then descend straight:
    // (A+4)+(A+4)+(A+0)+(A+0) = 4A + 8.
    let red = 4 * h.params().base_weight() + 8;
    (blue, red)
}

/// Verifies that core-to-core distances in `G_{b,ℓ}` equal the `H_{b,ℓ}`
/// distances for all level-0/level-2ℓ pairs — the final step of the proof
/// of Lemma 2.2 ("for any u ∈ V_i and v ∈ V_j ... dist_G = dist_H").
pub fn check_g_matches_h(
    h: &HGraph,
    g: &crate::ggraph::GGraph,
) -> Result<(), (NodeId, NodeId, u64, u64)> {
    let params = h.params();
    let two_ell = 2 * params.ell as u64;
    for x in h.all_vectors() {
        let hu = h.node_id(0, &x);
        let dh = hl_graph::dijkstra::dijkstra_distances(h.graph(), hu);
        let dg = hl_graph::bfs::bfs_distances(g.graph(), g.core(hu));
        for z in h.all_vectors() {
            let hv = h.node_id(two_ell, &z);
            let (a, b) = (dh[hv as usize], dg[g.core(hv) as usize]);
            if a != b {
                return Err((hu, hv, a, b));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ggraph::GGraph;
    use crate::params::GadgetParams;

    #[test]
    fn lemma22_holds_on_small_gadgets() {
        for (b, ell) in [(1, 1), (2, 1), (1, 2), (2, 2)] {
            let h = HGraph::build(GadgetParams::new(b, ell).unwrap());
            let failures = check_all_pairs(&h);
            assert!(failures.is_empty(), "H({b},{ell}): {:?}", failures.first());
        }
    }

    #[test]
    fn figure1_blue_and_red() {
        let h = HGraph::build(GadgetParams::new(2, 2).unwrap());
        let (blue, red) = figure1_check(&h);
        assert!(blue.holds());
        assert_eq!(blue.distance, 4 * 96 + 4);
        assert_eq!(red, 4 * 96 + 8);
        assert!(red > blue.distance);
    }

    #[test]
    fn odd_differences_rejected() {
        let h = HGraph::build(GadgetParams::new(2, 2).unwrap());
        let result = std::panic::catch_unwind(|| check_pair(&h, &[0, 0], &[1, 0]));
        assert!(result.is_err());
    }

    #[test]
    fn check_pair_detailed_fields() {
        let h = HGraph::build(GadgetParams::new(2, 2).unwrap());
        let c = check_pair(&h, &[0, 0], &[2, 2]);
        assert!(c.holds());
        assert_eq!(c.predicted, 4 * 96 + 2 + 2);
        assert_eq!(c.path_count, 1);
    }

    #[test]
    fn zero_spread_pair() {
        // x == z: straight climb, still unique through the midpoint x.
        let h = HGraph::build(GadgetParams::new(1, 2).unwrap());
        let c = check_pair(&h, &[1, 1], &[1, 1]);
        assert!(c.holds());
        assert_eq!(c.predicted, 4 * h.params().base_weight());
    }

    #[test]
    fn g_distances_equal_h_distances() {
        for (b, ell) in [(1, 1), (2, 1), (1, 2)] {
            let h = HGraph::build(GadgetParams::new(b, ell).unwrap());
            let g = GGraph::from_hgraph(&h);
            assert_eq!(check_g_matches_h(&h, &g), Ok(()), "G({b},{ell})");
        }
    }
}
