//! The layered weighted gadget `H_{b,ℓ}` of Theorem 2.1 (Figure 1).

use hl_graph::{Graph, GraphBuilder, NodeId, Weight};

use crate::params::GadgetParams;

/// The graph `H_{b,ℓ}` together with its vertex codec.
///
/// Vertex `v_{i,⃗j}` (level `i ∈ [0, 2ℓ]`, vector `⃗j ∈ [0, s)^ℓ`) has id
/// `i · s^ℓ + Σ_k j_k s^k`.
///
/// # Example
///
/// ```
/// use hl_lowerbound::{GadgetParams, HGraph};
///
/// # fn main() -> Result<(), hl_graph::GraphError> {
/// let h = HGraph::build(GadgetParams::new(2, 2)?);
/// assert_eq!(h.graph().num_nodes(), 80);
/// assert_eq!(h.graph().num_edges(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HGraph {
    params: GadgetParams,
    graph: Graph,
}

impl HGraph {
    /// Constructs `H_{b,ℓ}`.
    pub fn build(params: GadgetParams) -> Self {
        let s = params.side();
        let ell = params.ell as u64;
        let level_size = params.level_size();
        let a = params.base_weight();
        let n = params.h_num_nodes() as usize;
        let mut builder = GraphBuilder::with_capacity(n, params.h_num_edges() as usize);
        // Edges between level i and i+1 change coordinate c(i):
        // 0-indexed, c = i for i < ℓ and c = 2ℓ - i - 1 for i >= ℓ.
        for i in 0..2 * ell {
            let c = if i < ell { i } else { 2 * ell - i - 1 } as usize;
            let stride = s.pow(c as u32);
            for idx in 0..level_size {
                let jc = (idx / stride) % s;
                let u = (i * level_size + idx) as NodeId;
                for target in 0..s {
                    let delta = jc.abs_diff(target);
                    let widx = idx - jc * stride + target * stride;
                    let v = ((i + 1) * level_size + widx) as NodeId;
                    let w: Weight = a + delta * delta;
                    builder.add_edge(u, v, w).expect("gadget edges in range"); // lint:allow(no-panic): u and v index the h_num_nodes layout that sized the builder
                }
            }
        }
        HGraph {
            params,
            graph: builder.build(),
        }
    }

    /// The gadget parameters.
    pub fn params(&self) -> GadgetParams {
        self.params
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Id of vertex `v_{level, coords}`.
    ///
    /// # Panics
    ///
    /// Panics if `level > 2ℓ`, `coords.len() != ℓ`, or any coordinate is
    /// `>= s`.
    pub fn node_id(&self, level: u64, coords: &[u64]) -> NodeId {
        assert!(level <= 2 * self.params.ell as u64, "level out of range");
        assert_eq!(coords.len(), self.params.ell as usize, "wrong dimension");
        let s = self.params.side();
        let mut idx = 0u64;
        for (k, &j) in coords.iter().enumerate() {
            assert!(j < s, "coordinate out of range");
            idx += j * s.pow(k as u32);
        }
        (level * self.params.level_size() + idx) as NodeId
    }

    /// Inverse of [`HGraph::node_id`]: `(level, coords)` of a vertex.
    pub fn node_coords(&self, v: NodeId) -> (u64, Vec<u64>) {
        let level_size = self.params.level_size();
        let s = self.params.side();
        let level = v as u64 / level_size;
        let mut idx = v as u64 % level_size;
        let mut coords = Vec::with_capacity(self.params.ell as usize);
        for _ in 0..self.params.ell {
            coords.push(idx % s);
            idx /= s;
        }
        (level, coords)
    }

    /// Iterates over all vectors in `[0, s)^ℓ`.
    pub fn all_vectors(&self) -> impl Iterator<Item = Vec<u64>> + '_ {
        let s = self.params.side();
        let ell = self.params.ell as usize;
        (0..self.params.level_size()).map(move |mut idx| {
            let mut coords = Vec::with_capacity(ell);
            for _ in 0..ell {
                coords.push(idx % s);
                idx /= s;
            }
            coords
        })
    }

    /// Iterates over the Lemma 2.2 pairs: `(x, z)` with `z_k − x_k` even
    /// for all `k`, yielding `(x, z, midpoint)`.
    pub fn even_pairs(&self) -> impl Iterator<Item = (Vec<u64>, Vec<u64>, Vec<u64>)> + '_ {
        self.all_vectors().flat_map(move |x| {
            let x2 = x.clone();
            self.all_vectors().filter_map(move |z| {
                if x2.iter().zip(&z).all(|(&a, &c)| a.abs_diff(c) % 2 == 0) {
                    let mid: Vec<u64> = x2.iter().zip(&z).map(|(&a, &c)| (a + c) / 2).collect();
                    Some((x2.clone(), z, mid))
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_graph::dijkstra::dijkstra_distances;
    use hl_graph::properties::is_connected;

    fn h22() -> HGraph {
        HGraph::build(GadgetParams::new(2, 2).unwrap())
    }

    #[test]
    fn counts_match_closed_forms() {
        for (b, ell) in [(1, 1), (2, 1), (1, 2), (2, 2), (2, 3)] {
            let p = GadgetParams::new(b, ell).unwrap();
            let h = HGraph::build(p);
            assert_eq!(h.graph().num_nodes() as u64, p.h_num_nodes(), "{p}");
            assert_eq!(h.graph().num_edges() as u64, p.h_num_edges(), "{p}");
        }
    }

    #[test]
    fn codec_roundtrip() {
        let h = h22();
        for level in 0..=4 {
            for idx in 0..16u64 {
                let coords = vec![idx % 4, idx / 4];
                let id = h.node_id(level, &coords);
                assert_eq!(h.node_coords(id), (level, coords));
            }
        }
    }

    #[test]
    fn degrees_are_two_s() {
        let h = h22();
        let g = h.graph();
        for v in 0..g.num_nodes() as NodeId {
            let (level, _) = h.node_coords(v);
            let expected = if level == 0 || level == 4 { 4 } else { 8 };
            assert_eq!(g.degree(v), expected, "vertex {v} at level {level}");
        }
    }

    #[test]
    fn connected_and_weights_in_range() {
        let h = h22();
        assert!(is_connected(h.graph()));
        let a = h.params().base_weight();
        let s = h.params().side();
        for (_, _, w) in h.graph().edges() {
            assert!(w >= a && w <= a + (s - 1) * (s - 1));
        }
    }

    #[test]
    fn edge_weights_match_coordinate_gaps() {
        let h = h22();
        // Level 0 -> 1 changes coordinate 0: (1,0) -> (3,0) has weight A+4.
        let u = h.node_id(0, &[1, 0]);
        let v = h.node_id(1, &[3, 0]);
        assert_eq!(h.graph().edge_weight(u, v), Some(96 + 4));
        // (1,0) -> (1,2) differs in coordinate 1 which is NOT the designated
        // coordinate of levels 0 -> 1: no edge.
        let w = h.node_id(1, &[1, 2]);
        assert_eq!(h.graph().edge_weight(u, w), None);
        // Level 2 -> 3 changes coordinate 1 (descending phase).
        let p = h.node_id(2, &[2, 1]);
        let q = h.node_id(3, &[2, 3]);
        assert_eq!(h.graph().edge_weight(p, q), Some(96 + 4));
    }

    #[test]
    fn figure1_blue_path_distance() {
        // Figure 1: d(v_{0,(1,0)}, v_{4,(3,2)}) = 4A + 4 via v_{2,(2,1)}.
        let h = h22();
        let u = h.node_id(0, &[1, 0]);
        let z = h.node_id(4, &[3, 2]);
        let d = dijkstra_distances(h.graph(), u);
        assert_eq!(d[z as usize], 4 * 96 + 4);
    }

    #[test]
    fn even_pairs_count() {
        let h = h22();
        // s^ℓ · (s/2)^ℓ = 16 · 4 = 64.
        assert_eq!(h.even_pairs().count(), 64);
        for (x, z, mid) in h.even_pairs() {
            for k in 0..2 {
                assert_eq!(x[k] + z[k], 2 * mid[k]);
            }
        }
    }

    #[test]
    fn all_vectors_unique() {
        let h = h22();
        let vs: Vec<_> = h.all_vectors().collect();
        assert_eq!(vs.len(), 16);
        let set: std::collections::HashSet<_> = vs.iter().collect();
        assert_eq!(set.len(), 16);
    }
}
