//! Randomized property tests for the lower-bound gadgets, driven by seeded
//! [`Xorshift64`] streams (offline-friendly stand-in for `proptest`).

use hl_graph::rng::Xorshift64;
use hl_lowerbound::midpoint::check_pair;
use hl_lowerbound::removal::{decode_midpoint_presence, RemovedMiddle};
use hl_lowerbound::sampling::sample_even_pairs;
use hl_lowerbound::{GadgetParams, HGraph};

const CASES: u64 = 24;

fn small_params(rng: &mut Xorshift64) -> GadgetParams {
    let choices = [(1u32, 1u32), (2, 1), (1, 2), (2, 2), (3, 2)];
    let (b, ell) = choices[rng.gen_index(choices.len())];
    GadgetParams::new(b, ell).unwrap()
}

#[test]
fn codec_roundtrips() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(case);
        let h = HGraph::build(small_params(&mut rng));
        let n = h.graph().num_nodes() as u64;
        let v = (rng.next_u64() % n) as u32;
        let (level, coords) = h.node_coords(v);
        assert_eq!(h.node_id(level, &coords), v);
    }
}

#[test]
fn lemma22_on_sampled_pairs() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(1000 + case);
        let h = HGraph::build(small_params(&mut rng));
        for (x, z) in sample_even_pairs(&h, 8, rng.next_u64()) {
            let check = check_pair(&h, &x, &z);
            assert!(check.holds(), "pair {x:?} {z:?}: {check:?}");
        }
    }
}

#[test]
fn removal_monotone_in_distance() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(2000 + case);
        let p = small_params(&mut rng);
        let seed = rng.next_u64();
        // Removing vertices can only increase distances; decoding must flag
        // exactly the removed midpoints.
        let h = HGraph::build(p);
        let keep_mask = seed;
        let keep = |y: &[u64]| {
            let idx: u64 = y
                .iter()
                .enumerate()
                .map(|(i, &d)| d << (3 * i as u64))
                .sum();
            (keep_mask >> (idx % 64)) & 1 == 1
        };
        let pruned = RemovedMiddle::build(&h, keep);
        for (x, z) in sample_even_pairs(&h, 6, seed ^ 0xABCD) {
            let mid: Vec<u64> = x.iter().zip(&z).map(|(&a, &c)| (a + c) / 2).collect();
            let src = h.node_id(0, &x);
            let dst = h.node_id(2 * p.ell as u64, &z);
            let d_full = hl_graph::dijkstra::dijkstra_distance_between(h.graph(), src, dst);
            let d_pruned = hl_graph::dijkstra::dijkstra_distance_between(pruned.graph(), src, dst);
            assert!(d_pruned >= d_full);
            assert_eq!(decode_midpoint_presence(&p, &x, &z, d_pruned), keep(&mid));
        }
    }
}

#[test]
fn predicted_length_formula_symmetric() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(3000 + case);
        let p = small_params(&mut rng);
        let h = HGraph::build(p);
        for (x, z) in sample_even_pairs(&h, 6, rng.next_u64()) {
            assert_eq!(p.unique_sp_length(&x, &z), p.unique_sp_length(&z, &x));
        }
    }
}
