//! Property-based tests for the lower-bound gadgets.

use proptest::prelude::*;

use hl_lowerbound::midpoint::check_pair;
use hl_lowerbound::removal::{decode_midpoint_presence, RemovedMiddle};
use hl_lowerbound::sampling::sample_even_pairs;
use hl_lowerbound::{GadgetParams, HGraph};

fn small_params() -> impl Strategy<Value = GadgetParams> {
    prop_oneof![
        Just(GadgetParams::new(1, 1).unwrap()),
        Just(GadgetParams::new(2, 1).unwrap()),
        Just(GadgetParams::new(1, 2).unwrap()),
        Just(GadgetParams::new(2, 2).unwrap()),
        Just(GadgetParams::new(3, 2).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn codec_roundtrips(p in small_params(), raw in any::<u64>()) {
        let h = HGraph::build(p);
        let n = h.graph().num_nodes() as u64;
        let v = (raw % n) as u32;
        let (level, coords) = h.node_coords(v);
        prop_assert_eq!(h.node_id(level, &coords), v);
    }

    #[test]
    fn lemma22_on_sampled_pairs(p in small_params(), seed in any::<u64>()) {
        let h = HGraph::build(p);
        for (x, z) in sample_even_pairs(&h, 8, seed) {
            let check = check_pair(&h, &x, &z);
            prop_assert!(check.holds(), "pair {:?} {:?}: {:?}", x, z, check);
        }
    }

    #[test]
    fn removal_monotone_in_distance(p in small_params(), seed in any::<u64>()) {
        // Removing vertices can only increase distances; decoding must flag
        // exactly the removed midpoints.
        let h = HGraph::build(p);
        let keep_mask = seed;
        let keep = |y: &[u64]| {
            let idx: u64 = y.iter().enumerate().map(|(i, &d)| d << (3 * i as u64)).sum();
            (keep_mask >> (idx % 64)) & 1 == 1
        };
        let pruned = RemovedMiddle::build(&h, keep);
        for (x, z) in sample_even_pairs(&h, 6, seed ^ 0xABCD) {
            let mid: Vec<u64> = x.iter().zip(&z).map(|(&a, &c)| (a + c) / 2).collect();
            let src = h.node_id(0, &x);
            let dst = h.node_id(2 * p.ell as u64, &z);
            let d_full = hl_graph::dijkstra::dijkstra_distance_between(h.graph(), src, dst);
            let d_pruned =
                hl_graph::dijkstra::dijkstra_distance_between(pruned.graph(), src, dst);
            prop_assert!(d_pruned >= d_full);
            prop_assert_eq!(decode_midpoint_presence(&p, &x, &z, d_pruned), keep(&mid));
        }
    }

    #[test]
    fn predicted_length_formula_symmetric(p in small_params(), seed in any::<u64>()) {
        let h = HGraph::build(p);
        for (x, z) in sample_even_pairs(&h, 6, seed) {
            prop_assert_eq!(p.unique_sp_length(&x, &z), p.unique_sp_length(&z, &x));
        }
    }
}
