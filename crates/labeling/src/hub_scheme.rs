//! Hub labelings encoded as bit labels — the "hubsets → distance labels"
//! step the paper calls out ("such constructions usually involve some form
//! of compression and/or encoding of all distances from a vertex to its
//! hubs").
//!
//! Format per label: γ(k+1) hub count, then `k` hub ids (first id γ-coded
//! +1, rest gap-coded), then `k` distances (γ-coded +1). Two labels decode
//! a distance by a sorted merge on hub ids — no graph access needed.

use std::fmt;

use hl_graph::{Distance, Graph, GraphError, NodeId, INFINITY};

use hl_core::label::{HubLabel, HubLabeling};
use hl_core::pll::PrunedLandmarkLabeling;

use crate::bits::{BitReader, BitWriter};
use crate::scheme::{BitLabel, DistanceLabelingScheme};

/// Encodes one hub label into bits.
pub fn encode_label(label: &HubLabel) -> BitLabel {
    let mut w = BitWriter::new();
    w.write_gamma0(label.len() as u64);
    let mut prev: Option<NodeId> = None;
    for &h in label.hubs() {
        match prev {
            None => w.write_gamma0(h as u64),
            Some(p) => w.write_gamma((h - p) as u64),
        }
        prev = Some(h);
    }
    for &d in label.distances() {
        w.write_gamma0(d);
    }
    BitLabel::new(w.into_bits())
}

/// Decodes a [`BitLabel`] back into a [`HubLabel`].
pub fn decode_label(label: &BitLabel) -> HubLabel {
    let mut hubs = Vec::new();
    let mut dists = Vec::new();
    decode_label_append(label, &mut hubs, &mut dists);
    HubLabel::from_pairs(hubs.into_iter().zip(dists).collect())
}

/// Decodes a [`BitLabel`], *appending* its `(hub, distance)` entries to
/// `hubs` and `dists` in increasing hub order (the gap coding guarantees
/// sortedness). This is the allocation-free decode path: a caller
/// assembling a [`hl_core::FlatLabeling`] arena decodes every label
/// straight into the arena's backing vectors (or a reused scratch pair)
/// without building a per-vertex [`HubLabel`].
pub fn decode_label_append(label: &BitLabel, hubs: &mut Vec<NodeId>, dists: &mut Vec<Distance>) {
    let mut r = BitReader::new(label.bits());
    let k = r.read_gamma0() as usize;
    let start = hubs.len();
    hubs.reserve(k);
    let mut cur = 0u64;
    for i in 0..k {
        cur = if i == 0 {
            r.read_gamma0()
        } else {
            cur + r.read_gamma()
        };
        hubs.push(cur as NodeId);
    }
    dists.reserve(k);
    for _ in 0..k {
        dists.push(r.read_gamma0());
    }
    debug_assert!(hubs[start..].windows(2).all(|w| w[0] < w[1]));
}

/// Why an untrusted bit label failed to decode.
///
/// [`decode_label_append`] trusts its input — it panics (or worse,
/// over-reserves) on bits this process did not encode itself. Anything
/// read from disk or the network goes through
/// [`try_decode_label_append`] instead, which reports one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelDecodeError {
    /// A γ code ran off the end of the bits, or encoded a value too wide
    /// for `u64`.
    BadGamma {
        /// Bit position the reader had reached.
        at_bit: usize,
    },
    /// The declared entry count cannot fit in the remaining bits (each
    /// `(hub, distance)` entry costs at least two bits), so it is a lie —
    /// rejecting it early also stops attacker-controlled allocations.
    CountTooLarge {
        /// The declared number of entries.
        count: u64,
        /// Bits left after the count, an upper bound on plausible entries.
        remaining_bits: usize,
    },
    /// Accumulated hub-id gaps overflowed the node-id space.
    HubOverflow,
    /// Bits were left over after the declared entries — a valid label
    /// consumes its bit length exactly.
    TrailingBits(usize),
}

impl fmt::Display for LabelDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelDecodeError::BadGamma { at_bit } => {
                write!(f, "malformed gamma code at bit {at_bit}")
            }
            LabelDecodeError::CountTooLarge {
                count,
                remaining_bits,
            } => {
                write!(
                    f,
                    "declared {count} entries but only {remaining_bits} bits remain"
                )
            }
            LabelDecodeError::HubOverflow => write!(f, "hub id gaps overflow the node-id space"),
            LabelDecodeError::TrailingBits(n) => {
                write!(f, "{n} trailing bits after the last entry")
            }
        }
    }
}

impl std::error::Error for LabelDecodeError {}

/// Checked variant of [`decode_label_append`] for *untrusted* bits (label
/// stores on disk, frames off the wire): every read is bounds-checked,
/// the entry count is validated against the remaining bits before any
/// allocation, hub-id accumulation is overflow-checked, and the label
/// must consume its bits exactly. On error, `hubs` and `dists` are
/// truncated back to their input lengths.
pub fn try_decode_label_append(
    label: &BitLabel,
    hubs: &mut Vec<NodeId>,
    dists: &mut Vec<Distance>,
) -> Result<(), LabelDecodeError> {
    let start_hubs = hubs.len();
    let start_dists = dists.len();
    let result = try_decode_label_inner(label, hubs, dists);
    if result.is_err() {
        hubs.truncate(start_hubs);
        dists.truncate(start_dists);
    }
    result
}

fn try_decode_label_inner(
    label: &BitLabel,
    hubs: &mut Vec<NodeId>,
    dists: &mut Vec<Distance>,
) -> Result<(), LabelDecodeError> {
    let mut r = BitReader::new(label.bits());
    let bad_gamma = |r: &BitReader<'_>| LabelDecodeError::BadGamma {
        at_bit: r.position(),
    };
    let count = r.try_read_gamma0().ok_or_else(|| bad_gamma(&r))?;
    let k = usize::try_from(count).map_err(|_| LabelDecodeError::CountTooLarge {
        count,
        remaining_bits: r.remaining(),
    })?;
    // Each entry is one γ-coded hub (≥ 1 bit) plus one γ-coded distance
    // (≥ 1 bit), so a count beyond remaining/2 cannot be honest. This
    // also bounds the reserves below by the label's physical size.
    if k > r.remaining() / 2 {
        return Err(LabelDecodeError::CountTooLarge {
            count,
            remaining_bits: r.remaining(),
        });
    }
    hubs.reserve(k);
    let mut cur = 0u64;
    for i in 0..k {
        cur = if i == 0 {
            r.try_read_gamma0().ok_or_else(|| bad_gamma(&r))?
        } else {
            let gap = r.try_read_gamma().ok_or_else(|| bad_gamma(&r))?;
            cur.checked_add(gap).ok_or(LabelDecodeError::HubOverflow)?
        };
        if cur > NodeId::MAX as u64 {
            return Err(LabelDecodeError::HubOverflow);
        }
        hubs.push(cur as NodeId);
    }
    dists.reserve(k);
    for _ in 0..k {
        dists.push(r.try_read_gamma0().ok_or_else(|| bad_gamma(&r))?);
    }
    if r.remaining() != 0 {
        return Err(LabelDecodeError::TrailingBits(r.remaining()));
    }
    Ok(())
}

/// Encodes a complete hub labeling.
pub fn encode_labeling(labeling: &HubLabeling) -> Vec<BitLabel> {
    (0..labeling.num_nodes() as NodeId)
        .map(|v| encode_label(labeling.label(v)))
        .collect()
}

/// Decodes the distance between two encoded labels (merge on hub ids).
pub fn decode_distance(a: &BitLabel, b: &BitLabel) -> Distance {
    decode_label(a).join(&decode_label(b))
}

/// A [`DistanceLabelingScheme`] built on PLL hub labels.
#[derive(Debug, Clone, Copy, Default)]
pub struct HubPllScheme;

impl DistanceLabelingScheme for HubPllScheme {
    fn name(&self) -> &'static str {
        "hub-pll"
    }

    fn encode(&self, g: &Graph) -> Result<Vec<BitLabel>, GraphError> {
        let labeling = PrunedLandmarkLabeling::by_degree(g).into_labeling();
        Ok(encode_labeling(&labeling))
    }

    fn decode(&self, u: &BitLabel, v: &BitLabel) -> Distance {
        decode_distance(u, v)
    }
}

/// A scheme built on an arbitrary pre-computed hub labeling (useful when
/// the caller wants a specific construction, e.g. the Theorem 4.1 one).
#[derive(Debug, Clone)]
pub struct PrecomputedHubScheme {
    labeling: HubLabeling,
}

impl PrecomputedHubScheme {
    /// Wraps an existing labeling.
    pub fn new(labeling: HubLabeling) -> Self {
        PrecomputedHubScheme { labeling }
    }
}

impl DistanceLabelingScheme for PrecomputedHubScheme {
    fn name(&self) -> &'static str {
        "hub-precomputed"
    }

    fn encode(&self, g: &Graph) -> Result<Vec<BitLabel>, GraphError> {
        if self.labeling.num_nodes() != g.num_nodes() {
            return Err(GraphError::InvalidParameters {
                reason: "precomputed labeling does not match graph size".into(),
            });
        }
        Ok(encode_labeling(&self.labeling))
    }

    fn decode(&self, u: &BitLabel, v: &BitLabel) -> Distance {
        decode_distance(u, v)
    }
}

/// Convenience: encoded distance must equal [`INFINITY`] exactly when the
/// hub labels share no hub.
pub fn is_disconnected_answer(d: Distance) -> bool {
    d == INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{verify_scheme, SchemeStats};
    use hl_graph::generators;

    #[test]
    fn label_roundtrip() {
        let label = HubLabel::from_pairs(vec![(0, 0), (7, 3), (8, 12), (1000, 999)]);
        let encoded = encode_label(&label);
        assert_eq!(decode_label(&encoded), label);
    }

    #[test]
    fn empty_label_roundtrip() {
        let label = HubLabel::new();
        assert_eq!(decode_label(&encode_label(&label)), label);
    }

    #[test]
    fn try_decode_accepts_everything_the_encoder_writes() {
        for label in [
            HubLabel::new(),
            HubLabel::from_pairs(vec![(0, 0)]),
            HubLabel::from_pairs(vec![(0, 0), (7, 3), (8, 12), (1000, 999)]),
        ] {
            let encoded = encode_label(&label);
            let mut hubs = Vec::new();
            let mut dists = Vec::new();
            try_decode_label_append(&encoded, &mut hubs, &mut dists).unwrap();
            assert_eq!(hubs, label.hubs());
            assert_eq!(dists, label.distances());
        }
    }

    #[test]
    fn try_decode_rejects_garbage_bits_instead_of_panicking() {
        use crate::bits::{BitVec, BitWriter};

        let mut hubs = Vec::new();
        let mut dists = Vec::new();

        // All-zero bits: the count's unary run never terminates. The
        // trusting decoder panics on this input; the checked one must not.
        let mut zeros = BitVec::new();
        for _ in 0..64 {
            zeros.push(false);
        }
        let err = try_decode_label_append(&BitLabel::new(zeros), &mut hubs, &mut dists);
        assert!(matches!(err, Err(LabelDecodeError::BadGamma { .. })));
        assert!(
            hubs.is_empty() && dists.is_empty(),
            "buffers must roll back"
        );

        // A count far beyond what the remaining bits could carry: must be
        // rejected *before* any reserve, or a one-byte label could demand
        // gigabytes.
        let mut w = BitWriter::new();
        w.write_gamma0(1u64 << 40);
        let err = try_decode_label_append(&BitLabel::new(w.into_bits()), &mut hubs, &mut dists);
        assert!(matches!(err, Err(LabelDecodeError::CountTooLarge { .. })));

        // Hub ids past the 32-bit node-id space.
        let mut w = BitWriter::new();
        w.write_gamma0(1); // one entry
        w.write_gamma0(1u64 << 33); // first hub id, too wide for NodeId
        w.write_gamma0(5); // its distance
        let err = try_decode_label_append(&BitLabel::new(w.into_bits()), &mut hubs, &mut dists);
        assert!(matches!(err, Err(LabelDecodeError::HubOverflow)));

        // A structurally valid label followed by leftover bits.
        let mut trailing = encode_label(&HubLabel::from_pairs(vec![(3, 1)]));
        let mut bits = BitVec::new();
        for i in 0..trailing.bits().len() {
            bits.push(trailing.bits().get(i));
        }
        bits.push(true);
        trailing = BitLabel::new(bits);
        let err = try_decode_label_append(&trailing, &mut hubs, &mut dists);
        assert!(matches!(err, Err(LabelDecodeError::TrailingBits(1))));
    }

    #[test]
    fn append_decode_concatenates_sorted_entries() {
        let a = HubLabel::from_pairs(vec![(0, 0), (7, 3), (1000, 999)]);
        let b = HubLabel::from_pairs(vec![(2, 1), (5, 5)]);
        let mut hubs = Vec::new();
        let mut dists = Vec::new();
        decode_label_append(&encode_label(&a), &mut hubs, &mut dists);
        let a_end = hubs.len();
        decode_label_append(&encode_label(&b), &mut hubs, &mut dists);
        assert_eq!(&hubs[..a_end], a.hubs());
        assert_eq!(&dists[..a_end], a.distances());
        assert_eq!(&hubs[a_end..], b.hubs());
        assert_eq!(&dists[a_end..], b.distances());
    }

    #[test]
    fn distance_decoding_matches_join() {
        let a = HubLabel::from_pairs(vec![(1, 4), (5, 2)]);
        let b = HubLabel::from_pairs(vec![(2, 1), (5, 5)]);
        let (ea, eb) = (encode_label(&a), encode_label(&b));
        assert_eq!(decode_distance(&ea, &eb), 7);
    }

    #[test]
    fn pll_scheme_exact_on_families() {
        for g in [
            generators::grid(5, 5),
            generators::random_tree(40, 2),
            generators::connected_gnm(40, 20, 3),
            generators::weighted_grid(4, 4, 4),
        ] {
            assert_eq!(verify_scheme(&HubPllScheme, &g).unwrap(), 0);
        }
    }

    #[test]
    fn pll_scheme_handles_disconnection() {
        let g = hl_graph::builder::graph_from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(verify_scheme(&HubPllScheme, &g).unwrap(), 0);
        let labels = HubPllScheme.encode(&g).unwrap();
        assert!(is_disconnected_answer(
            HubPllScheme.decode(&labels[0], &labels[4])
        ));
    }

    #[test]
    fn precomputed_scheme_rejects_size_mismatch() {
        let g = generators::path(5);
        let labeling = HubLabeling::empty(3);
        assert!(PrecomputedHubScheme::new(labeling).encode(&g).is_err());
    }

    #[test]
    fn precomputed_scheme_exact() {
        let g = generators::cycle(12);
        let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let scheme = PrecomputedHubScheme::new(labeling);
        assert_eq!(verify_scheme(&scheme, &g).unwrap(), 0);
    }

    #[test]
    fn bit_sizes_reasonable() {
        // A 64-vertex grid label should cost far fewer bits than a full
        // distance vector (64 * 7 bits).
        let g = generators::grid(8, 8);
        let labels = HubPllScheme.encode(&g).unwrap();
        let stats = SchemeStats::of(&labels);
        assert!(
            stats.average_bits < 64.0 * 7.0 / 2.0,
            "avg = {}",
            stats.average_bits
        );
        assert!(stats.max_bits > 0);
    }
}
