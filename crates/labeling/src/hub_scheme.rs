//! Hub labelings encoded as bit labels — the "hubsets → distance labels"
//! step the paper calls out ("such constructions usually involve some form
//! of compression and/or encoding of all distances from a vertex to its
//! hubs").
//!
//! Format per label: γ(k+1) hub count, then `k` hub ids (first id γ-coded
//! +1, rest gap-coded), then `k` distances (γ-coded +1). Two labels decode
//! a distance by a sorted merge on hub ids — no graph access needed.

use hl_graph::{Distance, Graph, GraphError, NodeId, INFINITY};

use hl_core::label::{HubLabel, HubLabeling};
use hl_core::pll::PrunedLandmarkLabeling;

use crate::bits::{BitReader, BitWriter};
use crate::scheme::{BitLabel, DistanceLabelingScheme};

/// Encodes one hub label into bits.
pub fn encode_label(label: &HubLabel) -> BitLabel {
    let mut w = BitWriter::new();
    w.write_gamma0(label.len() as u64);
    let mut prev: Option<NodeId> = None;
    for &h in label.hubs() {
        match prev {
            None => w.write_gamma0(h as u64),
            Some(p) => w.write_gamma((h - p) as u64),
        }
        prev = Some(h);
    }
    for &d in label.distances() {
        w.write_gamma0(d);
    }
    BitLabel::new(w.into_bits())
}

/// Decodes a [`BitLabel`] back into a [`HubLabel`].
pub fn decode_label(label: &BitLabel) -> HubLabel {
    let mut hubs = Vec::new();
    let mut dists = Vec::new();
    decode_label_append(label, &mut hubs, &mut dists);
    HubLabel::from_pairs(hubs.into_iter().zip(dists).collect())
}

/// Decodes a [`BitLabel`], *appending* its `(hub, distance)` entries to
/// `hubs` and `dists` in increasing hub order (the gap coding guarantees
/// sortedness). This is the allocation-free decode path: a caller
/// assembling a [`hl_core::FlatLabeling`] arena decodes every label
/// straight into the arena's backing vectors (or a reused scratch pair)
/// without building a per-vertex [`HubLabel`].
pub fn decode_label_append(label: &BitLabel, hubs: &mut Vec<NodeId>, dists: &mut Vec<Distance>) {
    let mut r = BitReader::new(label.bits());
    let k = r.read_gamma0() as usize;
    let start = hubs.len();
    hubs.reserve(k);
    let mut cur = 0u64;
    for i in 0..k {
        cur = if i == 0 {
            r.read_gamma0()
        } else {
            cur + r.read_gamma()
        };
        hubs.push(cur as NodeId);
    }
    dists.reserve(k);
    for _ in 0..k {
        dists.push(r.read_gamma0());
    }
    debug_assert!(hubs[start..].windows(2).all(|w| w[0] < w[1]));
}

/// Encodes a complete hub labeling.
pub fn encode_labeling(labeling: &HubLabeling) -> Vec<BitLabel> {
    (0..labeling.num_nodes() as NodeId)
        .map(|v| encode_label(labeling.label(v)))
        .collect()
}

/// Decodes the distance between two encoded labels (merge on hub ids).
pub fn decode_distance(a: &BitLabel, b: &BitLabel) -> Distance {
    decode_label(a).join(&decode_label(b))
}

/// A [`DistanceLabelingScheme`] built on PLL hub labels.
#[derive(Debug, Clone, Copy, Default)]
pub struct HubPllScheme;

impl DistanceLabelingScheme for HubPllScheme {
    fn name(&self) -> &'static str {
        "hub-pll"
    }

    fn encode(&self, g: &Graph) -> Result<Vec<BitLabel>, GraphError> {
        let labeling = PrunedLandmarkLabeling::by_degree(g).into_labeling();
        Ok(encode_labeling(&labeling))
    }

    fn decode(&self, u: &BitLabel, v: &BitLabel) -> Distance {
        decode_distance(u, v)
    }
}

/// A scheme built on an arbitrary pre-computed hub labeling (useful when
/// the caller wants a specific construction, e.g. the Theorem 4.1 one).
#[derive(Debug, Clone)]
pub struct PrecomputedHubScheme {
    labeling: HubLabeling,
}

impl PrecomputedHubScheme {
    /// Wraps an existing labeling.
    pub fn new(labeling: HubLabeling) -> Self {
        PrecomputedHubScheme { labeling }
    }
}

impl DistanceLabelingScheme for PrecomputedHubScheme {
    fn name(&self) -> &'static str {
        "hub-precomputed"
    }

    fn encode(&self, g: &Graph) -> Result<Vec<BitLabel>, GraphError> {
        if self.labeling.num_nodes() != g.num_nodes() {
            return Err(GraphError::InvalidParameters {
                reason: "precomputed labeling does not match graph size".into(),
            });
        }
        Ok(encode_labeling(&self.labeling))
    }

    fn decode(&self, u: &BitLabel, v: &BitLabel) -> Distance {
        decode_distance(u, v)
    }
}

/// Convenience: encoded distance must equal [`INFINITY`] exactly when the
/// hub labels share no hub.
pub fn is_disconnected_answer(d: Distance) -> bool {
    d == INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{verify_scheme, SchemeStats};
    use hl_graph::generators;

    #[test]
    fn label_roundtrip() {
        let label = HubLabel::from_pairs(vec![(0, 0), (7, 3), (8, 12), (1000, 999)]);
        let encoded = encode_label(&label);
        assert_eq!(decode_label(&encoded), label);
    }

    #[test]
    fn empty_label_roundtrip() {
        let label = HubLabel::new();
        assert_eq!(decode_label(&encode_label(&label)), label);
    }

    #[test]
    fn append_decode_concatenates_sorted_entries() {
        let a = HubLabel::from_pairs(vec![(0, 0), (7, 3), (1000, 999)]);
        let b = HubLabel::from_pairs(vec![(2, 1), (5, 5)]);
        let mut hubs = Vec::new();
        let mut dists = Vec::new();
        decode_label_append(&encode_label(&a), &mut hubs, &mut dists);
        let a_end = hubs.len();
        decode_label_append(&encode_label(&b), &mut hubs, &mut dists);
        assert_eq!(&hubs[..a_end], a.hubs());
        assert_eq!(&dists[..a_end], a.distances());
        assert_eq!(&hubs[a_end..], b.hubs());
        assert_eq!(&dists[a_end..], b.distances());
    }

    #[test]
    fn distance_decoding_matches_join() {
        let a = HubLabel::from_pairs(vec![(1, 4), (5, 2)]);
        let b = HubLabel::from_pairs(vec![(2, 1), (5, 5)]);
        let (ea, eb) = (encode_label(&a), encode_label(&b));
        assert_eq!(decode_distance(&ea, &eb), 7);
    }

    #[test]
    fn pll_scheme_exact_on_families() {
        for g in [
            generators::grid(5, 5),
            generators::random_tree(40, 2),
            generators::connected_gnm(40, 20, 3),
            generators::weighted_grid(4, 4, 4),
        ] {
            assert_eq!(verify_scheme(&HubPllScheme, &g).unwrap(), 0);
        }
    }

    #[test]
    fn pll_scheme_handles_disconnection() {
        let g = hl_graph::builder::graph_from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(verify_scheme(&HubPllScheme, &g).unwrap(), 0);
        let labels = HubPllScheme.encode(&g).unwrap();
        assert!(is_disconnected_answer(
            HubPllScheme.decode(&labels[0], &labels[4])
        ));
    }

    #[test]
    fn precomputed_scheme_rejects_size_mismatch() {
        let g = generators::path(5);
        let labeling = HubLabeling::empty(3);
        assert!(PrecomputedHubScheme::new(labeling).encode(&g).is_err());
    }

    #[test]
    fn precomputed_scheme_exact() {
        let g = generators::cycle(12);
        let labeling = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let scheme = PrecomputedHubScheme::new(labeling);
        assert_eq!(verify_scheme(&scheme, &g).unwrap(), 0);
    }

    #[test]
    fn bit_sizes_reasonable() {
        // A 64-vertex grid label should cost far fewer bits than a full
        // distance vector (64 * 7 bits).
        let g = generators::grid(8, 8);
        let labels = HubPllScheme.encode(&g).unwrap();
        let stats = SchemeStats::of(&labels);
        assert!(
            stats.average_bits < 64.0 * 7.0 / 2.0,
            "avg = {}",
            stats.average_bits
        );
        assert!(stats.max_bits > 0);
    }
}
