//! Bit-level primitives: bit vectors, MSB-first readers/writers, unary and
//! Elias-γ/δ codes.
//!
//! Distance labelings are measured in *bits*; these codecs let the schemes
//! report honest sizes (and actually round-trip their data).

/// A growable bit vector (MSB-first within each byte).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    bytes: Vec<u8>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let byte = self.len / 8;
        if byte == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte] |= 1 << (7 - self.len % 8);
        }
        self.len += 1;
    }

    /// The bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index out of range");
        self.bytes[idx / 8] & (1 << (7 - idx % 8)) != 0
    }

    /// Underlying bytes (the last byte may be partially used).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reassembles a bit vector from its serialized parts: the bytes from
    /// [`BitVec::as_bytes`] plus the bit length from [`BitVec::len`].
    /// This is the inverse used by binary label stores (`hl-server`).
    ///
    /// Returns `None` when `bytes` is not exactly `ceil(len / 8)` bytes
    /// long or a bit past `len` in the final byte is set — both are signs
    /// of a corrupted or misaligned serialization, which callers must
    /// surface as an error rather than decode garbage.
    pub fn from_bytes(bytes: Vec<u8>, len: usize) -> Option<Self> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        if !len.is_multiple_of(8) {
            let tail = bytes[bytes.len() - 1];
            let used = len % 8;
            if tail & ((1u8 << (8 - used)) - 1) != 0 {
                return None;
            }
        }
        Some(BitVec { bytes, len })
    }
}

/// MSB-first bit writer over a [`BitVec`].
#[derive(Debug, Default)]
pub struct BitWriter {
    bits: BitVec,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends one bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Appends the low `width` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width too large");
        assert!(
            width == 64 || value < (1u64 << width),
            "value does not fit width"
        );
        for i in (0..width).rev() {
            self.bits.push(value >> i & 1 == 1);
        }
    }

    /// Appends `value` zeros followed by a one (unary code).
    pub fn write_unary(&mut self, value: u64) {
        for _ in 0..value {
            self.bits.push(false);
        }
        self.bits.push(true);
    }

    /// Elias-γ code of `value >= 1`: unary length prefix + binary suffix.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn write_gamma(&mut self, value: u64) {
        assert!(value >= 1, "gamma codes positive integers only");
        let n = 63 - value.leading_zeros(); // floor(log2 value)
        for _ in 0..n {
            self.bits.push(false);
        }
        self.write_bits(value, n + 1);
    }

    /// Elias-γ of `value + 1`, allowing zero.
    pub fn write_gamma0(&mut self, value: u64) {
        self.write_gamma(value + 1);
    }

    /// Elias-δ code of `value >= 1`: γ-coded length + binary remainder.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn write_delta(&mut self, value: u64) {
        assert!(value >= 1, "delta codes positive integers only");
        let n = 63 - value.leading_zeros();
        self.write_gamma(n as u64 + 1);
        if n > 0 {
            self.write_bits(value & ((1u64 << n) - 1), n);
        }
    }

    /// Bits written so far.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Finishes writing and extracts the bit vector.
    pub fn into_bits(self) -> BitVec {
        self.bits
    }
}

/// MSB-first bit reader over a [`BitVec`].
#[derive(Debug)]
pub struct BitReader<'a> {
    bits: &'a BitVec,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Starts reading at the first bit.
    pub fn new(bits: &'a BitVec) -> Self {
        BitReader { bits, pos: 0 }
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if the reader is exhausted.
    pub fn read_bit(&mut self) -> bool {
        let b = self.bits.get(self.pos);
        self.pos += 1;
        b
    }

    /// Reads `width` bits MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain.
    pub fn read_bits(&mut self, width: u32) -> u64 {
        let mut v = 0u64;
        for _ in 0..width {
            v = v << 1 | self.read_bit() as u64;
        }
        v
    }

    /// Reads a unary code.
    pub fn read_unary(&mut self) -> u64 {
        let mut n = 0;
        while !self.read_bit() {
            n += 1;
        }
        n
    }

    /// Reads an Elias-γ code.
    pub fn read_gamma(&mut self) -> u64 {
        let n = self.read_unary();
        let rest = if n == 0 { 0 } else { self.read_bits(n as u32) };
        (1u64 << n) | rest
    }

    /// Reads a γ-coded `value + 1`, returning `value`.
    pub fn read_gamma0(&mut self) -> u64 {
        self.read_gamma() - 1
    }

    /// Reads an Elias-δ code.
    pub fn read_delta(&mut self) -> u64 {
        let n = self.read_gamma() - 1;
        let rest = if n == 0 { 0 } else { self.read_bits(n as u32) };
        (1u64 << n) | rest
    }

    // --- Checked variants -------------------------------------------------
    //
    // The panicking readers above are for bits this process itself wrote
    // (encode → decode round trips). Bits arriving from *outside* — a label
    // store file, a network peer — may be arbitrary, and a checksum only
    // guards against accidents, not crafted input. The `try_` readers
    // return `None` instead of panicking on exhaustion, over-long unary
    // runs, or γ codes too wide for `u64`, so untrusted decode paths can
    // surface a typed error.

    /// Reads one bit, or `None` if the reader is exhausted.
    pub fn try_read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bits.len() {
            return None;
        }
        let b = self.bits.get(self.pos);
        self.pos += 1;
        Some(b)
    }

    /// Reads `width` bits MSB-first, or `None` if fewer remain.
    pub fn try_read_bits(&mut self, width: u32) -> Option<u64> {
        if width as usize > self.remaining() || width > 64 {
            return None;
        }
        Some(self.read_bits(width))
    }

    /// Reads a unary code, or `None` if the run hits the end of the bits
    /// before its terminating 1.
    pub fn try_read_unary(&mut self) -> Option<u64> {
        let mut n = 0u64;
        loop {
            match self.try_read_bit() {
                Some(true) => return Some(n),
                Some(false) => n += 1,
                None => return None,
            }
        }
    }

    /// Reads an Elias-γ code, or `None` on exhaustion or a value that
    /// does not fit in a `u64` (unary prefix of 64 or more).
    pub fn try_read_gamma(&mut self) -> Option<u64> {
        let n = self.try_read_unary()?;
        if n >= 64 {
            return None;
        }
        let rest = if n == 0 {
            0
        } else {
            let width = u32::try_from(n).ok()?;
            self.try_read_bits(width)?
        };
        Some((1u64 << n) | rest)
    }

    /// Reads a γ-coded `value + 1` and returns `value`, or `None` on any
    /// malformed code.
    pub fn try_read_gamma0(&mut self) -> Option<u64> {
        self.try_read_gamma().map(|v| v - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut bv = BitVec::new();
        for i in 0..20 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 20);
        for i in 0..20 {
            assert_eq!(bv.get(i), i % 3 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range() {
        BitVec::new().get(0);
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(7, 3);
        w.write_bits(u64::MAX, 64);
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        assert_eq!(r.read_bits(4), 0b1011);
        assert_eq!(r.read_bits(3), 7);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn fixed_width_overflow_rejected() {
        BitWriter::new().write_bits(8, 3);
    }

    #[test]
    fn unary_roundtrip() {
        let mut w = BitWriter::new();
        for v in [0u64, 1, 5, 13] {
            w.write_unary(v);
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for v in [0u64, 1, 5, 13] {
            assert_eq!(r.read_unary(), v);
        }
    }

    #[test]
    fn gamma_roundtrip() {
        let values = [1u64, 2, 3, 4, 5, 7, 8, 100, 1_000_000, u64::MAX >> 1];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_gamma(v);
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for &v in &values {
            assert_eq!(r.read_gamma(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn gamma_known_codes() {
        // gamma(1) = "1", gamma(2) = "010", gamma(3) = "011".
        let mut w = BitWriter::new();
        w.write_gamma(1);
        assert_eq!(w.len(), 1);
        let mut w = BitWriter::new();
        w.write_gamma(2);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn gamma0_allows_zero() {
        let mut w = BitWriter::new();
        w.write_gamma0(0);
        w.write_gamma0(41);
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        assert_eq!(r.read_gamma0(), 0);
        assert_eq!(r.read_gamma0(), 41);
    }

    #[test]
    fn delta_roundtrip() {
        let values = [1u64, 2, 15, 16, 17, 4095, 1 << 40];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_delta(v);
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for &v in &values {
            assert_eq!(r.read_delta(), v);
        }
    }

    #[test]
    fn delta_shorter_than_gamma_for_large() {
        let mut wg = BitWriter::new();
        wg.write_gamma(1 << 30);
        let mut wd = BitWriter::new();
        wd.write_delta(1 << 30);
        assert!(wd.len() < wg.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_zero_rejected() {
        BitWriter::new().write_gamma(0);
    }

    #[test]
    fn mixed_stream() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_gamma(9);
        w.write_unary(3);
        w.write_bits(5, 3);
        w.write_delta(100);
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        assert!(r.read_bit());
        assert_eq!(r.read_gamma(), 9);
        assert_eq!(r.read_unary(), 3);
        assert_eq!(r.read_bits(3), 5);
        assert_eq!(r.read_delta(), 100);
        assert_eq!(r.remaining(), 0);
    }
}
