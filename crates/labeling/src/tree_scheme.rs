//! The `O(log² n)`-bit tree distance labeling (Peleg-style), realized as
//! our centroid hub labeling plus the bit encoding — matching the
//! `Θ(log² n)` bits-per-label bound the paper quotes for trees.

use hl_graph::{Distance, Graph, GraphError};

use hl_core::tree::centroid_labeling;

use crate::hub_scheme::{decode_distance, encode_labeling};
use crate::scheme::{BitLabel, DistanceLabelingScheme};

/// Centroid-decomposition tree scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeScheme;

impl DistanceLabelingScheme for TreeScheme {
    fn name(&self) -> &'static str {
        "tree-centroid"
    }

    fn encode(&self, g: &Graph) -> Result<Vec<BitLabel>, GraphError> {
        let labeling = centroid_labeling(g)?;
        Ok(encode_labeling(&labeling))
    }

    fn decode(&self, u: &BitLabel, v: &BitLabel) -> Distance {
        decode_distance(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{verify_scheme, SchemeStats};
    use hl_graph::generators;

    #[test]
    fn exact_on_trees() {
        for g in [
            generators::path(33),
            generators::balanced_binary_tree(5),
            generators::random_tree(80, 5),
            generators::caterpillar(8, 3),
        ] {
            assert_eq!(verify_scheme(&TreeScheme, &g).unwrap(), 0);
        }
    }

    #[test]
    fn rejects_non_trees() {
        let g = generators::cycle(6);
        assert!(TreeScheme.encode(&g).is_err());
    }

    #[test]
    fn polylog_label_size() {
        // ~log n hubs, each costing O(log n) bits: label size must stay far
        // below the n-bit trivial regime.
        let g = generators::random_tree(512, 7);
        let labels = TreeScheme.encode(&g).unwrap();
        let stats = SchemeStats::of(&labels);
        assert!(stats.max_bits < 512, "max bits = {}", stats.max_bits);
        // log2(512) = 9 hubs max, each well under 40 bits.
        assert!(stats.average_bits < 9.0 * 40.0);
    }
}
