//! Bit-level distance labeling schemes.
//!
//! A *distance labeling* assigns each vertex a binary string such that the
//! exact distance between any pair is a function of their two labels alone.
//! This crate provides the bit plumbing ([`bits`]), the scheme abstraction
//! ([`scheme`]), and three concrete schemes:
//!
//! * [`hub_scheme`] — hub labelings compressed into γ-coded bit labels
//!   (the route every state-of-the-art construction takes, per §1.1 of the
//!   paper);
//! * [`full_vector`] — the trivial `n·log(diam)`-bit baseline;
//! * [`tree_scheme`] — the `O(log² n)`-bit centroid scheme for trees.
//!
//! The Sum-Index reduction (Theorem 1.6) consumes these labels as protocol
//! messages: any scheme with `L`-bit labels yields a Sum-Index protocol
//! with `L + O(log n)`-bit messages, which is how the paper converts
//! communication lower bounds into labeling lower bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod compact;
pub mod full_vector;
pub mod hub_scheme;
pub mod scheme;
pub mod tree_scheme;

pub use bits::{BitReader, BitVec, BitWriter};
pub use scheme::{BitLabel, DistanceLabelingScheme, SchemeStats};
