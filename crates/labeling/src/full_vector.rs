//! The trivial distance labeling: every vertex stores its full distance
//! row. `n·⌈log(diam+2)⌉` bits per label — the baseline all sublinear
//! schemes are measured against.

use hl_graph::dijkstra::shortest_path_distances;
use hl_graph::{Distance, Graph, GraphError, INFINITY};

use crate::bits::{BitReader, BitWriter};
use crate::scheme::{BitLabel, DistanceLabelingScheme};

/// Full-distance-vector scheme.
///
/// Label format: γ(id+1), γ(n+1), γ(width+1), then `n` fixed-width
/// entries (`diam+1` encodes "unreachable"). Decoding uses only the *first*
/// label's vector, indexed by the second label's id.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullVectorScheme;

impl DistanceLabelingScheme for FullVectorScheme {
    fn name(&self) -> &'static str {
        "full-vector"
    }

    fn encode(&self, g: &Graph) -> Result<Vec<BitLabel>, GraphError> {
        let n = g.num_nodes();
        // Width: enough for max finite distance + the sentinel.
        let mut rows = Vec::with_capacity(n);
        let mut max_d = 0u64;
        for v in 0..n {
            let d = shortest_path_distances(g, v as u32);
            for &x in &d {
                if x != INFINITY {
                    max_d = max_d.max(x);
                }
            }
            rows.push(d);
        }
        let sentinel = max_d + 1;
        let width = 64 - sentinel.leading_zeros();
        let mut labels = Vec::with_capacity(n);
        for (v, row) in rows.iter().enumerate() {
            let mut w = BitWriter::new();
            w.write_gamma0(v as u64);
            w.write_gamma0(n as u64);
            w.write_gamma0(width as u64);
            for &x in row {
                w.write_bits(if x == INFINITY { sentinel } else { x }, width);
            }
            w.write_bits(sentinel, width.max(1)); // trailing sentinel value for decoding
            labels.push(BitLabel::new(w.into_bits()));
        }
        Ok(labels)
    }

    fn decode(&self, u: &BitLabel, v: &BitLabel) -> Distance {
        // Read v's id, then index u's row.
        let mut rv = BitReader::new(v.bits());
        let v_id = rv.read_gamma0();
        let mut ru = BitReader::new(u.bits());
        let _u_id = ru.read_gamma0();
        let n = ru.read_gamma0();
        let width = ru.read_gamma0() as u32;
        debug_assert!(v_id < n);
        for _ in 0..v_id {
            ru.read_bits(width);
        }
        let raw = ru.read_bits(width);
        // Recover the sentinel: it is stored after the row; but cheaper, the
        // sentinel is the max encodable "diam+1" — we re-read it from the
        // trailing slot.
        for _ in v_id + 1..n {
            ru.read_bits(width);
        }
        let sentinel = ru.read_bits(width.max(1));
        if raw == sentinel {
            INFINITY
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{verify_scheme, SchemeStats};
    use hl_graph::generators;

    #[test]
    fn exact_on_families() {
        for g in [
            generators::path(9),
            generators::grid(4, 5),
            generators::weighted_grid(4, 4, 7),
            generators::connected_gnm(25, 12, 1),
        ] {
            assert_eq!(verify_scheme(&FullVectorScheme, &g).unwrap(), 0);
        }
    }

    #[test]
    fn exact_on_disconnected() {
        let g = hl_graph::builder::graph_from_edges(6, &[(0, 1), (3, 4)]).unwrap();
        assert_eq!(verify_scheme(&FullVectorScheme, &g).unwrap(), 0);
    }

    #[test]
    fn label_sizes_linear_in_n() {
        let g = generators::path(50);
        let labels = FullVectorScheme.encode(&g).unwrap();
        let stats = SchemeStats::of(&labels);
        // width = ceil(log2(50)) = 6 bits, 51 slots, plus headers.
        assert!(stats.average_bits >= 50.0 * 6.0);
        assert!(stats.average_bits <= 50.0 * 8.0 + 40.0);
    }
}
