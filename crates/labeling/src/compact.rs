//! Compact hub-label encodings.
//!
//! Going from hubsets to *bit* labels is where the `log n` factors hide —
//! the paper's §1.1 notes that the sublinear distance labelings of
//! ADKP16/GKU16 hinge on "careful encoding of distances from a vertex
//! to its hubs". This module implements the standard tricks and lets the
//! experiments measure what each saves:
//!
//! * **fixed-width** ids and distances sized to the instance
//!   (`⌈log n⌉` / `⌈log(diam+1)⌉` bits) instead of universal γ-codes;
//! * **split near/far**: hubs at distance `< D` store their distance in
//!   `⌈log D⌉` bits, far hubs in full width — profitable exactly when most
//!   hubs are near, which is how the ADKP16-style constructions arrange
//!   their hubsets;
//! * **gap+split**: γ-gap-coded ids (sorted hubs compress well) combined
//!   with the near/far distance split — the layout that usually wins;
//! * a per-label **best-of** chooser with a 2-bit tag.

use hl_graph::{Distance, NodeId};

use hl_core::label::{HubLabel, HubLabeling};

use crate::bits::{BitReader, BitWriter};
use crate::scheme::BitLabel;

/// Encoding parameters shared by encoder and decoder (public protocol
/// constants, not counted into label size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactParams {
    /// Bits per hub id: `⌈log₂ n⌉`.
    pub id_bits: u32,
    /// Bits per full-width distance: `⌈log₂(diam + 1)⌉`.
    pub dist_bits: u32,
    /// Near/far threshold `D` (near distances use `⌈log₂ D⌉` bits).
    pub near_threshold: Distance,
}

impl CompactParams {
    /// Derives parameters for a graph with `n` vertices and the given
    /// weighted diameter, with near threshold `D`.
    ///
    /// # Panics
    ///
    /// Panics if `near_threshold == 0`.
    pub fn new(n: usize, diameter: Distance, near_threshold: Distance) -> Self {
        assert!(near_threshold > 0, "near threshold must be positive");
        CompactParams {
            id_bits: width_for(n.saturating_sub(1) as u64),
            dist_bits: width_for(diameter),
            near_threshold,
        }
    }

    fn near_bits(&self) -> u32 {
        width_for(self.near_threshold - 1)
    }
}

fn width_for(max_value: u64) -> u32 {
    (64 - max_value.leading_zeros()).max(1)
}

const TAG_GAMMA: u64 = 0;
const TAG_FIXED: u64 = 1;
const TAG_SPLIT: u64 = 2;
const TAG_GAP_SPLIT: u64 = 3;

/// Encodes a label with the cheapest of the four layouts (2-bit tag).
///
/// # Example
///
/// ```
/// use hl_core::label::HubLabel;
/// use hl_labeling::compact::{encode_compact, decode_compact, CompactParams};
///
/// let params = CompactParams::new(100, 50, 8);
/// let label = HubLabel::from_pairs(vec![(3, 2), (40, 17)]);
/// let encoded = encode_compact(&label, &params);
/// assert_eq!(decode_compact(&encoded, &params), label);
/// ```
pub fn encode_compact(label: &HubLabel, params: &CompactParams) -> BitLabel {
    let candidates = [
        (TAG_GAMMA, encode_gamma_body(label)),
        (TAG_FIXED, encode_fixed_body(label, params)),
        (TAG_SPLIT, encode_split_body(label, params)),
        (TAG_GAP_SPLIT, encode_gap_split_body(label, params)),
    ];
    let [first, rest @ ..] = candidates;
    let (tag, body) = rest.into_iter().fold(
        first,
        |best, c| if c.1.len() < best.1.len() { c } else { best },
    );
    let mut w = BitWriter::new();
    w.write_bits(tag, 2);
    let mut r = BitReader::new(&body);
    for _ in 0..body.len() {
        w.write_bit(r.read_bit());
    }
    BitLabel::new(w.into_bits())
}

/// Decodes a compact label.
pub fn decode_compact(label: &BitLabel, params: &CompactParams) -> HubLabel {
    let mut r = BitReader::new(label.bits());
    // `read_bits(2)` yields a value in 0..=3, and the three explicit arms
    // cover 0..=2, so the wildcard is exactly TAG_GAP_SPLIT (3).
    match r.read_bits(2) {
        TAG_GAMMA => decode_gamma_body(&mut r),
        TAG_FIXED => decode_fixed_body(&mut r, params),
        TAG_SPLIT => decode_split_body(&mut r, params),
        _ => decode_gap_split_body(&mut r, params),
    }
}

/// Encodes a whole labeling compactly.
pub fn encode_labeling_compact(labeling: &HubLabeling, params: &CompactParams) -> Vec<BitLabel> {
    (0..labeling.num_nodes() as NodeId)
        .map(|v| encode_compact(labeling.label(v), params))
        .collect()
}

fn encode_gamma_body(label: &HubLabel) -> crate::bits::BitVec {
    // Same layout as hub_scheme: γ count, gap-coded ids, γ distances.
    let mut w = BitWriter::new();
    w.write_gamma0(label.len() as u64);
    let mut prev: Option<NodeId> = None;
    for &h in label.hubs() {
        match prev {
            None => w.write_gamma0(h as u64),
            Some(p) => w.write_gamma((h - p) as u64),
        }
        prev = Some(h);
    }
    for &d in label.distances() {
        w.write_gamma0(d);
    }
    w.into_bits()
}

fn decode_gamma_body(r: &mut BitReader<'_>) -> HubLabel {
    let k = r.read_gamma0() as usize;
    let mut hubs = Vec::with_capacity(k);
    let mut cur = 0u64;
    for i in 0..k {
        cur = if i == 0 {
            r.read_gamma0()
        } else {
            cur + r.read_gamma()
        };
        hubs.push(cur as NodeId);
    }
    let pairs: Vec<(NodeId, Distance)> = hubs.iter().map(|&h| (h, r.read_gamma0())).collect();
    HubLabel::from_pairs(pairs)
}

fn encode_fixed_body(label: &HubLabel, params: &CompactParams) -> crate::bits::BitVec {
    let mut w = BitWriter::new();
    w.write_gamma0(label.len() as u64);
    for (h, d) in label.iter() {
        w.write_bits(h as u64, params.id_bits);
        w.write_bits(d, params.dist_bits);
    }
    w.into_bits()
}

fn decode_fixed_body(r: &mut BitReader<'_>, params: &CompactParams) -> HubLabel {
    let k = r.read_gamma0() as usize;
    let pairs: Vec<(NodeId, Distance)> = (0..k)
        .map(|_| {
            let h = r.read_bits(params.id_bits) as NodeId;
            let d = r.read_bits(params.dist_bits);
            (h, d)
        })
        .collect();
    HubLabel::from_pairs(pairs)
}

fn encode_split_body(label: &HubLabel, params: &CompactParams) -> crate::bits::BitVec {
    let mut w = BitWriter::new();
    w.write_gamma0(label.len() as u64);
    let nb = params.near_bits();
    for (h, d) in label.iter() {
        w.write_bits(h as u64, params.id_bits);
        if d < params.near_threshold {
            w.write_bit(true);
            w.write_bits(d, nb);
        } else {
            w.write_bit(false);
            w.write_bits(d, params.dist_bits);
        }
    }
    w.into_bits()
}

fn decode_split_body(r: &mut BitReader<'_>, params: &CompactParams) -> HubLabel {
    let k = r.read_gamma0() as usize;
    let nb = params.near_bits();
    let pairs: Vec<(NodeId, Distance)> = (0..k)
        .map(|_| {
            let h = r.read_bits(params.id_bits) as NodeId;
            let d = if r.read_bit() {
                r.read_bits(nb)
            } else {
                r.read_bits(params.dist_bits)
            };
            (h, d)
        })
        .collect();
    HubLabel::from_pairs(pairs)
}

fn encode_gap_split_body(label: &HubLabel, params: &CompactParams) -> crate::bits::BitVec {
    let mut w = BitWriter::new();
    w.write_gamma0(label.len() as u64);
    let nb = params.near_bits();
    let mut prev: Option<NodeId> = None;
    for &h in label.hubs() {
        match prev {
            None => w.write_gamma0(h as u64),
            Some(p) => w.write_gamma((h - p) as u64),
        }
        prev = Some(h);
    }
    for &d in label.distances() {
        if d < params.near_threshold {
            w.write_bit(true);
            w.write_bits(d, nb);
        } else {
            w.write_bit(false);
            w.write_bits(d, params.dist_bits);
        }
    }
    w.into_bits()
}

fn decode_gap_split_body(r: &mut BitReader<'_>, params: &CompactParams) -> HubLabel {
    let k = r.read_gamma0() as usize;
    let nb = params.near_bits();
    let mut hubs = Vec::with_capacity(k);
    let mut cur = 0u64;
    for i in 0..k {
        cur = if i == 0 {
            r.read_gamma0()
        } else {
            cur + r.read_gamma()
        };
        hubs.push(cur as NodeId);
    }
    let pairs: Vec<(NodeId, Distance)> = hubs
        .iter()
        .map(|&h| {
            let d = if r.read_bit() {
                r.read_bits(nb)
            } else {
                r.read_bits(params.dist_bits)
            };
            (h, d)
        })
        .collect();
    HubLabel::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeStats;
    use hl_core::pll::PrunedLandmarkLabeling;
    use hl_core::random_threshold::{random_threshold_labeling, RandomThresholdParams};
    use hl_graph::properties::diameter_exact;
    use hl_graph::{generators, Graph};

    fn roundtrip(g: &Graph, labeling: &HubLabeling, d: Distance) {
        let params = CompactParams::new(g.num_nodes(), diameter_exact(g), d);
        for v in 0..g.num_nodes() as NodeId {
            let enc = encode_compact(labeling.label(v), &params);
            assert_eq!(
                &decode_compact(&enc, &params),
                labeling.label(v),
                "vertex {v}"
            );
        }
    }

    #[test]
    fn roundtrip_all_layouts() {
        let g = generators::grid(7, 7);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        for d in [1u64, 2, 4, 12] {
            roundtrip(&g, &hl, d);
        }
    }

    #[test]
    fn roundtrip_weighted() {
        let g = generators::weighted_grid(5, 5, 3);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        roundtrip(&g, &hl, 8);
    }

    #[test]
    fn roundtrip_empty_label() {
        let params = CompactParams::new(10, 5, 2);
        let empty = HubLabel::new();
        assert_eq!(
            decode_compact(&encode_compact(&empty, &params), &params),
            empty
        );
    }

    #[test]
    fn compact_never_larger_than_gamma_plus_tag() {
        let g = generators::connected_gnm(60, 30, 5);
        let hl = PrunedLandmarkLabeling::by_degree(&g).into_labeling();
        let params = CompactParams::new(60, diameter_exact(&g), 4);
        for v in 0..60u32 {
            let gamma_bits = crate::hub_scheme::encode_label(hl.label(v)).num_bits();
            let compact_bits = encode_compact(hl.label(v), &params).num_bits();
            assert!(compact_bits <= gamma_bits + 2, "vertex {v}");
        }
    }

    #[test]
    fn split_helps_near_heavy_labelings() {
        // Random-threshold hubsets are mostly near hubs — the split layout
        // should win for them on a long path (large diameter, so full-width
        // distances are expensive).
        let g = generators::path(200);
        let (hl, _) = random_threshold_labeling(
            &g,
            RandomThresholdParams {
                threshold: 6,
                seed: 1,
            },
        )
        .unwrap();
        let params = CompactParams::new(200, diameter_exact(&g), 6);
        let compact = SchemeStats::of(&encode_labeling_compact(&hl, &params));
        let gamma = SchemeStats::of(&crate::hub_scheme::encode_labeling(&hl));
        assert!(
            compact.total_bits < gamma.total_bits,
            "compact {} vs gamma {}",
            compact.total_bits,
            gamma.total_bits
        );
    }

    #[test]
    fn params_reject_zero_threshold() {
        let result = std::panic::catch_unwind(|| CompactParams::new(10, 5, 0));
        assert!(result.is_err());
    }

    #[test]
    fn width_for_values() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 2);
        assert_eq!(width_for(255), 8);
        assert_eq!(width_for(256), 9);
    }
}
