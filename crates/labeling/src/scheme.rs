//! The distance-labeling abstraction: per-vertex bit labels from which any
//! pairwise distance can be decoded *without access to the graph*.

use hl_graph::{Distance, Graph, GraphError};

use crate::bits::BitVec;

/// An encoded per-vertex label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitLabel {
    bits: BitVec,
}

impl BitLabel {
    /// Wraps raw bits into a label.
    pub fn new(bits: BitVec) -> Self {
        BitLabel { bits }
    }

    /// Label size in bits — the quantity every bound in the paper is about.
    pub fn num_bits(&self) -> usize {
        self.bits.len()
    }

    /// Borrow the raw bits.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }
}

/// A distance labeling scheme: an encoder producing one [`BitLabel`] per
/// vertex and a stateless decoder mapping two labels to the exact distance.
///
/// Decoders must return [`hl_graph::INFINITY`] for disconnected pairs.
pub trait DistanceLabelingScheme {
    /// Human-readable scheme name for experiment tables.
    fn name(&self) -> &'static str;

    /// Encodes the graph into per-vertex labels.
    ///
    /// # Errors
    ///
    /// Implementations surface graph errors (overflow, invalid input
    /// class — e.g. the tree scheme on a non-tree).
    fn encode(&self, g: &Graph) -> Result<Vec<BitLabel>, GraphError>;

    /// Decodes the exact distance from two labels.
    fn decode(&self, u: &BitLabel, v: &BitLabel) -> Distance;
}

/// Size statistics of an encoded labeling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeStats {
    /// Number of labels.
    pub num_labels: usize,
    /// Total bits across labels.
    pub total_bits: usize,
    /// Average bits per label.
    pub average_bits: f64,
    /// Largest single label.
    pub max_bits: usize,
}

impl SchemeStats {
    /// Computes statistics over a label set.
    pub fn of(labels: &[BitLabel]) -> Self {
        let total: usize = labels.iter().map(|l| l.num_bits()).sum();
        SchemeStats {
            num_labels: labels.len(),
            total_bits: total,
            average_bits: if labels.is_empty() {
                0.0
            } else {
                total as f64 / labels.len() as f64
            },
            max_bits: labels.iter().map(|l| l.num_bits()).max().unwrap_or(0),
        }
    }
}

/// Verifies a scheme end-to-end on a graph: encodes, then decodes every
/// pair and compares against APSP ground truth. Returns the number of
/// violations (0 = exact).
///
/// # Errors
///
/// Propagates errors from encoding or the APSP computation.
pub fn verify_scheme(scheme: &dyn DistanceLabelingScheme, g: &Graph) -> Result<usize, GraphError> {
    let labels = scheme.encode(g)?;
    let m = hl_graph::apsp::DistanceMatrix::compute(g)?;
    let mut violations = 0;
    for u in 0..g.num_nodes() {
        for v in u..g.num_nodes() {
            if scheme.decode(&labels[u], &labels[v]) != m.distance(u as u32, v as u32) {
                violations += 1;
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;

    #[test]
    fn stats_of_labels() {
        let mut w1 = BitWriter::new();
        w1.write_bits(3, 8);
        let mut w2 = BitWriter::new();
        w2.write_bits(3, 4);
        let labels = vec![BitLabel::new(w1.into_bits()), BitLabel::new(w2.into_bits())];
        let s = SchemeStats::of(&labels);
        assert_eq!(s.num_labels, 2);
        assert_eq!(s.total_bits, 12);
        assert_eq!(s.max_bits, 8);
        assert!((s.average_bits - 6.0).abs() < 1e-9);
    }

    #[test]
    fn stats_of_empty() {
        let s = SchemeStats::of(&[]);
        assert_eq!(s.total_bits, 0);
        assert_eq!(s.average_bits, 0.0);
    }
}
