//! Randomized property tests for the bit codecs and label encodings,
//! driven by seeded [`Xorshift64`] streams (offline-friendly stand-in for
//! the original `proptest` strategies).

use hl_core::label::HubLabel;
use hl_graph::rng::Xorshift64;
use hl_labeling::bits::{BitReader, BitWriter};
use hl_labeling::hub_scheme::{decode_label, encode_label};

const CASES: u64 = 64;

#[test]
fn gamma_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(case);
        let count = rng.gen_index(100);
        let values: Vec<u64> = (0..count)
            .map(|_| rng.gen_range_u64(1, u64::MAX / 2))
            .collect();
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_gamma(v);
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for &v in &values {
            assert_eq!(r.read_gamma(), v);
        }
        assert_eq!(r.remaining(), 0);
    }
}

#[test]
fn delta_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(1000 + case);
        let count = rng.gen_index(100);
        let values: Vec<u64> = (0..count)
            .map(|_| rng.gen_range_u64(1, u64::MAX / 2))
            .collect();
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_delta(v);
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for &v in &values {
            assert_eq!(r.read_delta(), v);
        }
    }
}

#[test]
fn mixed_codes_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(2000 + case);
        let count = rng.gen_index(60);
        let ops: Vec<(u8, u64)> = (0..count)
            .map(|_| (rng.gen_index(4) as u8, rng.gen_range_u64(1, 1 << 40)))
            .collect();
        let mut w = BitWriter::new();
        for &(kind, v) in &ops {
            match kind {
                0 => w.write_gamma(v),
                1 => w.write_delta(v),
                2 => w.write_unary(v % 64),
                _ => w.write_bits(v & 0xFFFF, 16),
            }
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for &(kind, v) in &ops {
            let got = match kind {
                0 => r.read_gamma(),
                1 => r.read_delta(),
                2 => r.read_unary(),
                _ => r.read_bits(16),
            };
            let expect = match kind {
                2 => v % 64,
                3 => v & 0xFFFF,
                _ => v,
            };
            assert_eq!(got, expect);
        }
    }
}

#[test]
fn hub_label_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(3000 + case);
        let count = rng.gen_index(80);
        let pairs: Vec<(u32, u64)> = (0..count)
            .map(|_| (rng.gen_index(10_000) as u32, rng.gen_u64_below(1 << 30)))
            .collect();
        let label = HubLabel::from_pairs(pairs);
        let decoded = decode_label(&encode_label(&label));
        assert_eq!(decoded, label);
    }
}

#[test]
fn encoding_size_monotone_in_hub_count() {
    for k in 0usize..50 {
        // More hubs never encode smaller (ids are increasing).
        let small: Vec<(u32, u64)> = (0..k as u32).map(|i| (i, i as u64)).collect();
        let large: Vec<(u32, u64)> = (0..k as u32 + 1).map(|i| (i, i as u64)).collect();
        let a = encode_label(&HubLabel::from_pairs(small)).num_bits();
        let b = encode_label(&HubLabel::from_pairs(large)).num_bits();
        assert!(b >= a);
    }
}

#[test]
fn compact_roundtrip_arbitrary() {
    use hl_labeling::compact::{decode_compact, encode_compact, CompactParams};
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(4000 + case);
        let count = rng.gen_index(60);
        let pairs: Vec<(u32, u64)> = (0..count)
            .map(|_| (rng.gen_index(5_000) as u32, rng.gen_u64_below(100_000)))
            .collect();
        let near = rng.gen_range_u64(1, 64);
        let label = HubLabel::from_pairs(pairs);
        let max_d = label.distances().iter().copied().max().unwrap_or(0);
        let params = CompactParams::new(5_000, max_d, near);
        let decoded = decode_compact(&encode_compact(&label, &params), &params);
        assert_eq!(decoded, label);
    }
}

#[test]
fn compact_never_beaten_by_gamma_by_more_than_tag() {
    use hl_labeling::compact::{encode_compact, CompactParams};
    for case in 0..CASES {
        let mut rng = Xorshift64::seed_from_u64(5000 + case);
        let count = rng.gen_index(40);
        let pairs: Vec<(u32, u64)> = (0..count)
            .map(|_| (rng.gen_index(2_000) as u32, rng.gen_u64_below(10_000)))
            .collect();
        let label = HubLabel::from_pairs(pairs);
        let max_d = label.distances().iter().copied().max().unwrap_or(0);
        let params = CompactParams::new(2_000, max_d, 8);
        let compact = encode_compact(&label, &params).num_bits();
        let gamma = encode_label(&label).num_bits();
        assert!(compact <= gamma + 2);
    }
}
