//! Property-based tests for the bit codecs and label encodings.

use proptest::prelude::*;

use hl_core::label::HubLabel;
use hl_labeling::bits::{BitReader, BitWriter};
use hl_labeling::hub_scheme::{decode_label, encode_label};

proptest! {
    #[test]
    fn gamma_roundtrip(values in proptest::collection::vec(1u64..u64::MAX / 2, 0..100)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_gamma(v);
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for &v in &values {
            prop_assert_eq!(r.read_gamma(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn delta_roundtrip(values in proptest::collection::vec(1u64..u64::MAX / 2, 0..100)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_delta(v);
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for &v in &values {
            prop_assert_eq!(r.read_delta(), v);
        }
    }

    #[test]
    fn mixed_codes_roundtrip(ops in proptest::collection::vec((0u8..4, 1u64..1 << 40), 0..60)) {
        let mut w = BitWriter::new();
        for &(kind, v) in &ops {
            match kind {
                0 => w.write_gamma(v),
                1 => w.write_delta(v),
                2 => w.write_unary(v % 64),
                _ => w.write_bits(v & 0xFFFF, 16),
            }
        }
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        for &(kind, v) in &ops {
            let got = match kind {
                0 => r.read_gamma(),
                1 => r.read_delta(),
                2 => r.read_unary(),
                _ => r.read_bits(16),
            };
            let expect = match kind {
                2 => v % 64,
                3 => v & 0xFFFF,
                _ => v,
            };
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn hub_label_roundtrip(pairs in proptest::collection::vec((0u32..10_000, 0u64..1 << 30), 0..80)) {
        let label = HubLabel::from_pairs(pairs);
        let decoded = decode_label(&encode_label(&label));
        prop_assert_eq!(decoded, label);
    }

    #[test]
    fn encoding_size_monotone_in_hub_count(k in 0usize..50) {
        // More hubs never encode smaller (ids are increasing).
        let small: Vec<(u32, u64)> = (0..k as u32).map(|i| (i, i as u64)).collect();
        let large: Vec<(u32, u64)> = (0..k as u32 + 1).map(|i| (i, i as u64)).collect();
        let a = encode_label(&HubLabel::from_pairs(small)).num_bits();
        let b = encode_label(&HubLabel::from_pairs(large)).num_bits();
        prop_assert!(b >= a);
    }
}

proptest! {
    #[test]
    fn compact_roundtrip_arbitrary(
        pairs in proptest::collection::vec((0u32..5_000, 0u64..100_000), 0..60),
        near in 1u64..64,
    ) {
        use hl_labeling::compact::{decode_compact, encode_compact, CompactParams};
        let label = HubLabel::from_pairs(pairs);
        let max_d = label.distances().iter().copied().max().unwrap_or(0);
        let params = CompactParams::new(5_000, max_d, near);
        let decoded = decode_compact(&encode_compact(&label, &params), &params);
        prop_assert_eq!(decoded, label);
    }

    #[test]
    fn compact_never_beaten_by_gamma_by_more_than_tag(
        pairs in proptest::collection::vec((0u32..2_000, 0u64..10_000), 0..40),
    ) {
        use hl_labeling::compact::{encode_compact, CompactParams};
        use hl_labeling::hub_scheme::encode_label;
        let label = HubLabel::from_pairs(pairs);
        let max_d = label.distances().iter().copied().max().unwrap_or(0);
        let params = CompactParams::new(2_000, max_d, 8);
        let compact = encode_compact(&label, &params).num_bits();
        let gamma = encode_label(&label).num_bits();
        prop_assert!(compact <= gamma + 2);
    }
}
