//! End-to-end lint tests: the seeded-violation fixture crate, waiver
//! honoring, the real workspace's cleanliness, and the `hublint` CLI.
//!
//! The fixture crate under `tests/fixtures/violations/` is invisible to
//! cargo (the workspace's `crates/*` glob matches only direct children)
//! and to workspace-level lint runs (everything under `tests/` is test
//! context), so it can seed one violation per rule without tripping
//! either build.

use std::path::{Path, PathBuf};
use std::process::Command;

use hl_lint::lint_workspace;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn fixture_crate_trips_every_rule_at_exact_lines() {
    let report = lint_workspace(&fixture_root()).expect("lint fixture");
    let got: Vec<(&str, &str, u32)> = report
        .violations
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("offline-deps", "Cargo.toml", 9),
            ("untrusted-length-alloc", "src/alloc.rs", 3),
            ("cast-truncation", "src/cast.rs", 3),
            ("no-unsafe-attr", "src/lib.rs", 1),
            ("no-panic", "src/lib.rs", 2),
            ("no-print", "src/lib.rs", 6),
            ("exit-in-lib", "src/lib.rs", 10),
            ("lock-order", "src/locks.rs", 15),
            ("swallowed-result", "src/swallow.rs", 7),
            ("swallowed-result", "src/swallow.rs", 11),
        ]
    );
}

#[test]
fn fixture_waivers_are_honored_and_reported() {
    let report = lint_workspace(&fixture_root()).expect("lint fixture");
    let waived: Vec<(&str, &str, u32)> = report
        .waived
        .iter()
        .map(|(d, _)| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        waived,
        vec![
            ("cast-truncation", "src/cast.rs", 8),
            ("no-panic", "src/lib.rs", 14),
        ]
    );
    assert!(report
        .waived
        .iter()
        .all(|(_, w)| w.reason.contains("fixture")));
    assert!(report.unused_waivers.is_empty());
}

#[test]
fn fixture_bin_and_cfg_test_code_is_exempt() {
    let report = lint_workspace(&fixture_root()).expect("lint fixture");
    // src/main.rs prints and exits; the #[cfg(test)] module unwraps and
    // panics. None of that may surface.
    assert!(report.violations.iter().all(|d| d.file != "src/main.rs"));
    assert!(report
        .violations
        .iter()
        .filter(|d| d.file == "src/lib.rs")
        .all(|d| d.line < 17));
}

#[test]
fn real_workspace_is_clean_and_server_needs_no_waivers() {
    let report = lint_workspace(&workspace_root()).expect("lint workspace");
    assert!(
        report.violations.is_empty(),
        "workspace must lint clean: {:#?}",
        report.violations
    );
    assert!(
        report
            .waived
            .iter()
            .all(|(_, w)| !w.file.starts_with("crates/server/")),
        "crates/server must hold the no-panic invariant without waivers: {:#?}",
        report.waived
    );
}

#[test]
fn cli_reports_fixture_violations_with_exit_code_1() {
    let out = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("run hublint");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("src/lib.rs:2: [no-panic]"), "{text}");
    assert!(text.contains("Cargo.toml:9: [offline-deps]"), "{text}");
    assert!(text.contains("src/cast.rs:3: [cast-truncation]"), "{text}");
    assert!(text.contains("src/locks.rs:15: [lock-order]"), "{text}");
    assert!(text.contains("hublint: 10 violation(s)"), "{text}");
}

#[test]
fn cli_json_mode_has_violations_waivers_and_summary() {
    let out = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--json")
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("run hublint");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"rule\": \"no-print\""), "{text}");
    assert!(text.contains("\"rule\": \"exit-in-lib\""), "{text}");
    assert!(text.contains("\"rule\": \"swallowed-result\""), "{text}");
    assert!(
        text.contains("\"rule\": \"untrusted-length-alloc\""),
        "{text}"
    );
    assert!(
        text.contains("\"reason\": \"fixture demonstrates an honored waiver\""),
        "{text}"
    );
    assert!(text.contains("\"summary\": {\"violations\": 10"), "{text}");
}

#[test]
fn cli_clean_workspace_exits_0_and_usage_error_exits_2() {
    let ok = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run hublint");
    assert_eq!(
        ok.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    let usage = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--no-such-flag")
        .output()
        .expect("run hublint");
    assert_eq!(usage.status.code(), Some(2));
}

/// A scratch directory under the target-adjacent temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("hublint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("mkdir");
    for entry in std::fs::read_dir(from).expect("read_dir") {
        let entry = entry.expect("dir entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_tree(&src, &dst);
        } else {
            std::fs::copy(&src, &dst).expect("copy file");
        }
    }
}

#[test]
fn baseline_round_trip_suppresses_every_finding() {
    let scratch = Scratch::new("roundtrip");
    let baseline_path = scratch.0.join("baseline.json");

    // Step 1: capture the fixture's findings as JSON.
    let capture = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--json")
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("run hublint --json");
    assert_eq!(capture.status.code(), Some(1));
    std::fs::write(&baseline_path, &capture.stdout).expect("write baseline");

    // Step 2: feed the report back as the baseline — everything known.
    let gated = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--root")
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline_path)
        .arg("--diff")
        .output()
        .expect("run hublint --diff");
    let text = String::from_utf8_lossy(&gated.stdout);
    assert_eq!(gated.status.code(), Some(0), "{text}");
    assert!(text.contains("0 violation(s)"), "{text}");
    assert!(text.contains("10 baselined"), "{text}");
}

#[test]
fn diff_gate_fails_on_a_newly_introduced_narrowing_cast() {
    let scratch = Scratch::new("diffgate");
    let tree = scratch.0.join("violations");
    copy_tree(&fixture_root(), &tree);
    let baseline_path = scratch.0.join("baseline.json");

    let capture = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--json")
        .arg("--root")
        .arg(&tree)
        .output()
        .expect("run hublint --json");
    std::fs::write(&baseline_path, &capture.stdout).expect("write baseline");

    // Introduce a fresh narrowing cast on a decoded value.
    let cast_rs = tree.join("src/cast.rs");
    let mut src = std::fs::read_to_string(&cast_rs).expect("read cast.rs");
    src.push_str(
        "\npub fn regression(buf: [u8; 8]) -> u16 {\n    u64::from_le_bytes(buf) as u16\n}\n",
    );
    std::fs::write(&cast_rs, src).expect("write cast.rs");

    let gated = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--root")
        .arg(&tree)
        .arg("--baseline")
        .arg(&baseline_path)
        .arg("--diff")
        .output()
        .expect("run hublint --diff");
    let text = String::from_utf8_lossy(&gated.stdout);
    assert_eq!(gated.status.code(), Some(1), "{text}");
    // Only the new finding survives the baseline; the backlog stays quiet.
    assert!(text.contains("1 violation(s)"), "{text}");
    assert!(text.contains("[cast-truncation]"), "{text}");
    assert!(text.contains("as u16"), "{text}");
}

#[test]
fn diff_without_baseline_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--root")
        .arg(fixture_root())
        .arg("--diff")
        .output()
        .expect("run hublint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn workspace_baseline_file_is_empty_and_matches_a_clean_tree() {
    // The committed baseline must stay empty: decode-path findings are
    // fixed at the source, never suppressed.
    let baseline = workspace_root().join("hublint-baseline.json");
    let contents = std::fs::read_to_string(&baseline).expect("read hublint-baseline.json");
    assert!(
        contents.contains("\"violations\": []"),
        "committed baseline must contain no suppressions: {contents}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--root")
        .arg(workspace_root())
        .arg("--baseline")
        .arg(&baseline)
        .arg("--diff")
        .output()
        .expect("run hublint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
