//! End-to-end lint tests: the seeded-violation fixture crate, waiver
//! honoring, the real workspace's cleanliness, and the `hublint` CLI.
//!
//! The fixture crate under `tests/fixtures/violations/` is invisible to
//! cargo (the workspace's `crates/*` glob matches only direct children)
//! and to workspace-level lint runs (everything under `tests/` is test
//! context), so it can seed one violation per rule without tripping
//! either build.

use std::path::{Path, PathBuf};
use std::process::Command;

use hl_lint::lint_workspace;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn fixture_crate_trips_every_rule_at_exact_lines() {
    let report = lint_workspace(&fixture_root()).expect("lint fixture");
    let got: Vec<(&str, &str, u32)> = report
        .violations
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("offline-deps", "Cargo.toml", 9),
            ("no-unsafe-attr", "src/lib.rs", 1),
            ("no-panic", "src/lib.rs", 2),
            ("no-print", "src/lib.rs", 6),
            ("exit-in-lib", "src/lib.rs", 10),
        ]
    );
}

#[test]
fn fixture_waiver_is_honored_and_reported() {
    let report = lint_workspace(&fixture_root()).expect("lint fixture");
    assert_eq!(report.waived.len(), 1);
    let (d, w) = &report.waived[0];
    assert_eq!(
        (d.rule, d.file.as_str(), d.line),
        ("no-panic", "src/lib.rs", 14)
    );
    assert!(w.reason.contains("fixture"));
    assert!(report.unused_waivers.is_empty());
}

#[test]
fn fixture_bin_and_cfg_test_code_is_exempt() {
    let report = lint_workspace(&fixture_root()).expect("lint fixture");
    // src/main.rs prints and exits; the #[cfg(test)] module unwraps and
    // panics. None of that may surface.
    assert!(report.violations.iter().all(|d| d.file != "src/main.rs"));
    assert!(report.violations.iter().all(|d| d.line < 17));
}

#[test]
fn real_workspace_is_clean_and_server_needs_no_waivers() {
    let report = lint_workspace(&workspace_root()).expect("lint workspace");
    assert!(
        report.violations.is_empty(),
        "workspace must lint clean: {:#?}",
        report.violations
    );
    assert!(
        report
            .waived
            .iter()
            .all(|(_, w)| !w.file.starts_with("crates/server/")),
        "crates/server must hold the no-panic invariant without waivers: {:#?}",
        report.waived
    );
}

#[test]
fn cli_reports_fixture_violations_with_exit_code_1() {
    let out = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("run hublint");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("src/lib.rs:2: [no-panic]"), "{text}");
    assert!(text.contains("Cargo.toml:9: [offline-deps]"), "{text}");
    assert!(text.contains("hublint: 5 violation(s)"), "{text}");
}

#[test]
fn cli_json_mode_has_violations_waivers_and_summary() {
    let out = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--json")
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("run hublint");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"rule\": \"no-print\""), "{text}");
    assert!(text.contains("\"rule\": \"exit-in-lib\""), "{text}");
    assert!(
        text.contains("\"reason\": \"fixture demonstrates an honored waiver\""),
        "{text}"
    );
    assert!(text.contains("\"summary\": {\"violations\": 5"), "{text}");
}

#[test]
fn cli_clean_workspace_exits_0_and_usage_error_exits_2() {
    let ok = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run hublint");
    assert_eq!(
        ok.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    let usage = Command::new(env!("CARGO_BIN_EXE_hublint"))
        .arg("--no-such-flag")
        .output()
        .expect("run hublint");
    assert_eq!(usage.status.code(), Some(2));
}
