/// A Result-returning function the fixtures below discard.
pub fn fallible() -> Result<(), String> {
    Err("fixture".to_string())
}

pub fn drops_via_let() {
    let _ = fallible();
}

pub fn drops_via_ok() {
    fallible().ok();
}
