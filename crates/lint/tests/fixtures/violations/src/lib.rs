pub fn panics(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn prints() {
    println!("hello");
}

pub fn exits() {
    std::process::exit(2);
}

pub fn waived(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(no-panic): fixture demonstrates an honored waiver
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        None::<u32>.unwrap();
        panic!("fine in tests");
    }
}

pub mod alloc;
pub mod cast;
pub mod locks;
pub mod swallow;
