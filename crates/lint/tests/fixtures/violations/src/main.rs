fn main() {
    println!("fixture bin: prints and exits are fine here");
    std::process::exit(0);
}
