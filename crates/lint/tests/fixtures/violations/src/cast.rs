/// Truncates a decoded u64 header field: cast-truncation fires on line 3.
pub fn bad_cast(buf: [u8; 8]) -> u32 {
    u64::from_le_bytes(buf) as u32
}

/// The same narrowing, waived with a justification.
pub fn waived_cast(buf: [u8; 8]) -> u32 {
    u64::from_le_bytes(buf) as u32 // lint:allow(cast-truncation): fixture keeps the narrowing to exercise the waiver path
}
