//! Fixture: two locks acquired in both orders — lock-order reports the
//! cycle once, at the earliest nested acquisition (line 15).

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    /// Locks `a`, then `b`.
    pub fn ab(&self) -> u32 {
        let g = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let h = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g + *h
    }

    /// Locks `b`, then `a`: the other half of the cycle.
    pub fn ba(&self) -> u32 {
        let g = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let h = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g - *h
    }
}
