/// Allocates from a decoded length with no cap check: fires on line 3.
pub fn bad_alloc(buf: [u8; 4]) -> Vec<u8> {
    Vec::with_capacity(u32::from_le_bytes(buf) as usize)
}

/// The same allocation behind a cap check: clean.
pub fn checked_alloc(buf: [u8; 4]) -> Vec<u8> {
    let n = u32::from_le_bytes(buf) as usize;
    if n > 4096 {
        return Vec::new();
    }
    Vec::with_capacity(n)
}
