//! A lightweight item parser over the token stream.
//!
//! The semantic rules (cast-truncation, swallowed-result, lock-order,
//! untrusted-length-alloc) need more than token patterns: they need to
//! know which functions return `Result`, which struct fields are
//! `Mutex`es, and where each function body begins and ends. This module
//! recovers exactly that — and nothing more — from [`Tokenized`] output:
//! function *signatures* plus opaque body token ranges, and struct
//! *field* names with flattened type idents. It is not a Rust parser;
//! generics, lifetimes and attributes are skipped, bodies are never
//! descended into here, and `#[cfg(test)]` items are excluded the same
//! way the token rules exclude them.

use crate::rules::{cfg_test_item_end, ident_at, matching_close, punct_at};
use crate::tokenizer::{Tok, TokKind, Tokenized};

/// One parsed function: signature facts plus its body token range.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` self type, if any.
    pub self_ty: Option<String>,
    /// `true` when the first parameter is (some form of) `self`.
    pub has_self_param: bool,
    /// `true` when the return type mentions `Result`.
    pub returns_result: bool,
    /// Token index range `[open_brace, close_brace]` of the body.
    /// `None` for body-less trait method declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One named struct field with the identifiers of its type, flattened
/// (`Vec<Mutex<LruShard>>` → `["Vec", "Mutex", "LruShard"]`).
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// All identifiers appearing in the field's type, in order.
    pub ty_idents: Vec<String>,
    /// 1-based line of the field name.
    pub line: u32,
}

/// One struct with named fields (tuple and unit structs are skipped —
/// no rule needs them).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Named fields.
    pub fields: Vec<FieldDef>,
}

/// Everything the semantic rules need from one file.
#[derive(Debug, Clone, Default)]
pub struct FileAst {
    /// Functions (free, impl and trait) outside `#[cfg(test)]`.
    pub fns: Vec<FnDef>,
    /// Braced structs outside `#[cfg(test)]`.
    pub structs: Vec<StructDef>,
}

/// Parses one tokenized file into item facts.
pub fn parse_file(tokens: &Tokenized) -> FileAst {
    let mut ast = FileAst::default();
    let mut test_mods = Vec::new();
    parse_items(
        &tokens.tokens,
        0,
        tokens.tokens.len(),
        None,
        &mut ast,
        &mut test_mods,
    );
    ast
}

fn parse_items(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    self_ty: Option<&str>,
    ast: &mut FileAst,
    test_mods: &mut Vec<String>,
) {
    while i < end {
        if let Some(skip) = cfg_test_item_end(toks, i, test_mods) {
            i = skip;
            continue;
        }
        match ident_at(toks, i) {
            Some("fn") => i = parse_fn(toks, i, end, self_ty, ast),
            Some("struct") => i = parse_struct(toks, i, end, ast),
            Some("impl") | Some("trait") => {
                let Some(open) = find_punct(toks, i + 1, end, '{') else {
                    i += 1;
                    continue;
                };
                let Some(close) = matching_close(toks, open, '{', '}') else {
                    break;
                };
                let ty = if ident_at(toks, i) == Some("impl") {
                    impl_self_ty(toks, i + 1, open)
                } else {
                    // `trait Name` / `trait Name: Bound` — the name is next.
                    ident_at(toks, i + 1).map(str::to_string)
                };
                parse_items(
                    toks,
                    open + 1,
                    close.min(end),
                    ty.as_deref(),
                    ast,
                    test_mods,
                );
                i = close + 1;
            }
            Some("mod") => {
                // Inline `mod x { … }` recurses; `mod x;` is just skipped.
                if punct_at(toks, i + 2) == Some('{') {
                    let Some(close) = matching_close(toks, i + 2, '{', '}') else {
                        break;
                    };
                    parse_items(toks, i + 3, close.min(end), None, ast, test_mods);
                    i = close + 1;
                } else {
                    i += 3;
                }
            }
            Some("enum") | Some("union") => {
                // Skip the whole item; no rule needs enum variants.
                match find_punct(toks, i + 1, end, '{')
                    .and_then(|o| matching_close(toks, o, '{', '}'))
                {
                    Some(close) => i = close + 1,
                    None => i += 1,
                }
            }
            Some("type") | Some("use") | Some("const") | Some("static") => {
                // Skip to the terminating `;` at brace depth 0, so `fn`
                // appearing in a fn-pointer type alias is never mistaken
                // for an item.
                i = skip_to_semi(toks, i + 1, end);
            }
            Some("macro_rules") => {
                // `macro_rules! name { … }` — the body is token soup.
                match find_punct(toks, i + 1, end, '{')
                    .and_then(|o| matching_close(toks, o, '{', '}'))
                {
                    Some(close) => i = close + 1,
                    None => i += 1,
                }
            }
            _ => i += 1,
        }
    }
}

/// Parses a `fn` item starting at `i` (the `fn` keyword); returns the
/// index just past it.
fn parse_fn(toks: &[Tok], i: usize, end: usize, self_ty: Option<&str>, ast: &mut FileAst) -> usize {
    let line = toks[i].line;
    let Some(name) = ident_at(toks, i + 1) else {
        return i + 1;
    };
    let name = name.to_string();

    // Find the parameter list: the first `(` at angle-bracket depth 0
    // (skipping generic parameters, where `Fn(..)` bounds sit at depth ≥ 1).
    let mut j = i + 2;
    let mut angle = 0usize;
    let open_paren = loop {
        if j >= end {
            return j;
        }
        match punct_at(toks, j) {
            Some('<') => angle += 1,
            Some('>') => angle = angle.saturating_sub(1),
            Some('(') if angle == 0 => break j,
            Some('{') | Some(';') => return j, // malformed; bail out
            _ => {}
        }
        j += 1;
    };
    let Some(close_paren) = matching_close(toks, open_paren, '(', ')') else {
        return open_paren + 1;
    };

    // `self` in the first parameter slot (before the first top-level `,`).
    let mut has_self_param = false;
    let mut depth = 0usize;
    for k in open_paren + 1..close_paren {
        match punct_at(toks, k) {
            Some('(') | Some('[') | Some('<') => depth += 1,
            Some(')') | Some(']') | Some('>') => depth = depth.saturating_sub(1),
            Some(',') if depth == 0 => break,
            _ => {
                if ident_at(toks, k) == Some("self") {
                    has_self_param = true;
                }
            }
        }
    }

    // Return type: idents between `->` and the body `{` / `;` / `where`.
    let mut returns_result = false;
    let mut k = close_paren + 1;
    if punct_at(toks, k) == Some('-') && punct_at(toks, k + 1) == Some('>') {
        k += 2;
        while k < end {
            match &toks[k].kind {
                TokKind::Punct('{') | TokKind::Punct(';') => break,
                TokKind::Ident(s) if s == "where" => break,
                TokKind::Ident(s) if s == "Result" => returns_result = true,
                _ => {}
            }
            k += 1;
        }
    }

    // Body: first `{` at brace depth 0 before a `;` (trait declarations
    // end at `;` without a body). Where-clauses contain no braces.
    let mut body = None;
    let mut b = close_paren + 1;
    let after = loop {
        if b >= end {
            break b;
        }
        match punct_at(toks, b) {
            Some(';') => break b + 1,
            Some('{') => {
                let Some(close) = matching_close(toks, b, '{', '}') else {
                    break end;
                };
                body = Some((b, close));
                break close + 1;
            }
            _ => b += 1,
        }
    };

    ast.fns.push(FnDef {
        name,
        self_ty: self_ty.map(str::to_string),
        has_self_param,
        returns_result,
        body,
        line,
    });
    after
}

/// Parses a `struct` item starting at `i`; returns the index just past it.
fn parse_struct(toks: &[Tok], i: usize, end: usize, ast: &mut FileAst) -> usize {
    let Some(name) = ident_at(toks, i + 1) else {
        return i + 1;
    };
    let name = name.to_string();
    // Walk to `{` (named fields), `(` (tuple — skip to `;`) or `;` (unit).
    let mut j = i + 2;
    let mut angle = 0usize;
    loop {
        if j >= end {
            return j;
        }
        match punct_at(toks, j) {
            Some('<') => angle += 1,
            Some('>') => angle = angle.saturating_sub(1),
            Some(';') if angle == 0 => return j + 1,
            Some('(') if angle == 0 => return skip_to_semi(toks, j, end),
            Some('{') if angle == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let open = j;
    let Some(close) = matching_close(toks, open, '{', '}') else {
        return end;
    };

    let mut fields = Vec::new();
    let mut k = open + 1;
    while k < close {
        // Skip attributes and visibility: `#[…]`, `pub`, `pub(crate)`.
        if punct_at(toks, k) == Some('#') && punct_at(toks, k + 1) == Some('[') {
            match matching_close(toks, k + 1, '[', ']') {
                Some(e) => k = e + 1,
                None => break,
            }
            continue;
        }
        if ident_at(toks, k) == Some("pub") {
            k += 1;
            if punct_at(toks, k) == Some('(') {
                match matching_close(toks, k, '(', ')') {
                    Some(e) => k = e + 1,
                    None => break,
                }
            }
            continue;
        }
        // `name : TYPE ,` — collect the type's idents up to the next
        // top-level comma.
        let (Some(fname), Some(':')) = (ident_at(toks, k), punct_at(toks, k + 1)) else {
            k += 1;
            continue;
        };
        let line = toks[k].line;
        let mut ty_idents = Vec::new();
        let mut t = k + 2;
        let mut depth = 0usize;
        while t < close {
            match &toks[t].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => {
                    depth = depth.saturating_sub(1)
                }
                TokKind::Punct(',') if depth == 0 => break,
                TokKind::Ident(s) => ty_idents.push(s.clone()),
                _ => {}
            }
            t += 1;
        }
        fields.push(FieldDef {
            name: fname.to_string(),
            ty_idents,
            line,
        });
        k = t + 1;
    }
    ast.structs.push(StructDef { name, fields });
    close + 1
}

/// The self type of an `impl` header: the last depth-0 ident after `for`
/// if present (`impl Display for WireError` → `WireError`), otherwise the
/// first depth-0 ident after the generics (`impl<T> Foo<T>` → `Foo`).
fn impl_self_ty(toks: &[Tok], start: usize, open_brace: usize) -> Option<String> {
    let mut angle = 0usize;
    let mut after_for = false;
    let mut head: Option<String> = None;
    let mut tail: Option<String> = None;
    for tok in toks.iter().take(open_brace).skip(start) {
        match &tok.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = angle.saturating_sub(1),
            TokKind::Ident(s) if angle == 0 => {
                if s == "for" {
                    after_for = true;
                    tail = None;
                } else if s == "where" {
                    break;
                } else if after_for {
                    tail = Some(s.clone());
                } else if s != "dyn" && s != "mut" {
                    head.get_or_insert_with(|| s.clone());
                    tail = Some(s.clone());
                }
            }
            _ => {}
        }
    }
    if after_for {
        tail
    } else {
        // `crate::foo::Bar` → Bar (the last path segment).
        tail.or(head)
    }
}

fn find_punct(toks: &[Tok], start: usize, end: usize, want: char) -> Option<usize> {
    (start..end.min(toks.len())).find(|&k| punct_at(toks, k) == Some(want))
}

/// Skips to just past the next `;` at brace/paren/bracket depth 0.
fn skip_to_semi(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut k = start;
    while k < end {
        match punct_at(toks, k) {
            Some('{') | Some('(') | Some('[') => depth += 1,
            Some('}') | Some(')') | Some(']') => depth = depth.saturating_sub(1),
            Some(';') if depth == 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn parse(src: &str) -> FileAst {
        parse_file(&tokenize(src))
    }

    #[test]
    fn free_fn_signature_facts() {
        let a = parse("pub fn read(path: &str) -> Result<Vec<u8>, Error> { body() }\nfn plain(x: u32) -> u32 { x }");
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].name, "read");
        assert!(a.fns[0].returns_result);
        assert!(!a.fns[0].has_self_param);
        assert!(a.fns[0].self_ty.is_none());
        assert!(a.fns[0].body.is_some());
        assert!(!a.fns[1].returns_result);
    }

    #[test]
    fn impl_methods_get_self_ty_and_self_param() {
        let a = parse("impl<T> Store<T> { fn get(&self, k: u64) -> Result<T, E> { x } fn make() -> Self { y } }");
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].self_ty.as_deref(), Some("Store"));
        assert!(a.fns[0].has_self_param);
        assert!(a.fns[0].returns_result);
        assert!(!a.fns[1].has_self_param);
    }

    #[test]
    fn trait_impl_takes_type_after_for() {
        let a = parse("impl fmt::Display for WireError { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { ok } }");
        assert_eq!(a.fns[0].self_ty.as_deref(), Some("WireError"));
        assert!(a.fns[0].returns_result, "fmt::Result counts as Result");
    }

    #[test]
    fn trait_decl_without_body() {
        let a = parse("trait Codec { fn encode(&self) -> Vec<u8>; fn decode(b: &[u8]) -> Result<Self, E> { d(b) } }");
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].self_ty.as_deref(), Some("Codec"));
        assert!(a.fns[0].body.is_none());
        assert!(a.fns[1].body.is_some());
    }

    #[test]
    fn struct_fields_with_flattened_types() {
        let a = parse("pub struct Cache { pub shards: Vec<Mutex<Shard>>, mask: u64, #[doc(hidden)] pub(crate) tag: String }");
        assert_eq!(a.structs.len(), 1);
        let s = &a.structs[0];
        assert_eq!(s.name, "Cache");
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].name, "shards");
        assert_eq!(s.fields[0].ty_idents, vec!["Vec", "Mutex", "Shard"]);
        assert_eq!(s.fields[2].name, "tag");
    }

    #[test]
    fn tuple_and_unit_structs_are_skipped_cleanly() {
        let a = parse("struct P(u32, u32);\nstruct U;\nfn after() {}");
        assert!(a.structs.is_empty());
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].name, "after");
    }

    #[test]
    fn cfg_test_items_are_excluded() {
        let a = parse("fn live() {}\n#[cfg(test)]\nmod tests { fn helper() -> Result<(), E> { x } }\nfn live2() {}");
        let names: Vec<&str> = a.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live", "live2"]);
    }

    #[test]
    fn fn_pointer_type_alias_is_not_an_item_fn() {
        let a = parse("type Hook = fn(u32) -> u32;\nfn real() {}");
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].name, "real");
    }

    #[test]
    fn generic_fn_bound_paren_is_not_the_param_list() {
        let a = parse("fn apply<F: Fn(u32) -> u32>(f: F, x: u32) -> u32 { f(x) }");
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].name, "apply");
        assert!(!a.fns[0].has_self_param);
        assert!(!a.fns[0].returns_result);
    }

    #[test]
    fn inline_mod_items_are_found() {
        let a = parse("mod inner { pub fn f() -> Result<(), E> { g() } }");
        assert_eq!(a.fns.len(), 1);
        assert!(a.fns[0].returns_result);
    }

    #[test]
    fn body_range_brackets_the_braces() {
        let t = tokenize("fn f() { a(); }");
        let a = parse_file(&t);
        let (open, close) = a.fns[0].body.expect("has body");
        assert_eq!(punct_of(&t.tokens[open]), Some('{'));
        assert_eq!(punct_of(&t.tokens[close]), Some('}'));
        assert!(close > open);
    }

    fn punct_of(t: &Tok) -> Option<char> {
        match t.kind {
            TokKind::Punct(c) => Some(c),
            _ => None,
        }
    }
}
