//! Findings baseline: suppress known findings so CI gates on new ones.
//!
//! A baseline file is simply a previous `hublint --json` report committed
//! to the repository. `--baseline <file>` subtracts its violations from
//! the current run as a **multiset keyed on (rule, file, message)** —
//! deliberately ignoring line numbers, so unrelated edits that shift a
//! known finding up or down a file do not break the gate, while a *new*
//! finding of the same rule in the same file still fails (the count
//! exceeds the baseline's).
//!
//! The parser below reads exactly the subset of JSON that
//! [`crate::output::render_json`] emits (an object with a `"violations"`
//! array of flat objects with string/number fields) and tolerates
//! unknown keys, so older or newer report shapes keep working.

use std::collections::HashMap;

/// One suppressed finding from a baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule identifier, e.g. `cast-truncation`.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// Full diagnostic message.
    pub message: String,
}

/// Parses the `"violations"` array out of a `hublint --json` report.
///
/// Returns an error describing the first malformed construct; an empty
/// report (`"violations": []`) yields an empty list.
pub fn parse_baseline(src: &str) -> Result<Vec<BaselineEntry>, String> {
    let bytes = src.as_bytes();
    let key = b"\"violations\"";
    let mut at = None;
    let mut i = 0;
    while i + key.len() <= bytes.len() {
        if &bytes[i..i + key.len()] == key {
            at = Some(i + key.len());
            break;
        }
        // Skip over string literals so a message containing the word
        // "violations" cannot confuse the scan.
        if bytes[i] == b'"' {
            i += 1;
            skip_string_body(bytes, &mut i)?;
        } else {
            i += 1;
        }
    }
    let Some(mut i) = at else {
        return Err("baseline file has no \"violations\" array".to_string());
    };
    skip_ws(bytes, &mut i);
    if bytes.get(i) != Some(&b':') {
        return Err("expected ':' after \"violations\"".to_string());
    }
    i += 1;
    skip_ws(bytes, &mut i);
    if bytes.get(i) != Some(&b'[') {
        return Err("expected '[' to open the violations array".to_string());
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        skip_ws(bytes, &mut i);
        match bytes.get(i) {
            Some(b']') => return Ok(out),
            Some(b',') => {
                i += 1;
                continue;
            }
            Some(b'{') => {
                i += 1;
                out.push(parse_entry(bytes, &mut i)?);
            }
            _ => return Err("malformed violations array".to_string()),
        }
    }
}

/// Parses one flat `{ "key": value, … }` object; collects string fields.
fn parse_entry(bytes: &[u8], i: &mut usize) -> Result<BaselineEntry, String> {
    let mut rule = None;
    let mut file = None;
    let mut message = None;
    loop {
        skip_ws(bytes, i);
        match bytes.get(*i) {
            Some(b'}') => {
                *i += 1;
                break;
            }
            Some(b',') => {
                *i += 1;
                continue;
            }
            Some(b'"') => {
                let key = parse_string(bytes, i)?;
                skip_ws(bytes, i);
                if bytes.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' after key \"{key}\""));
                }
                *i += 1;
                skip_ws(bytes, i);
                match bytes.get(*i) {
                    Some(b'"') => {
                        let val = parse_string(bytes, i)?;
                        match key.as_str() {
                            "rule" => rule = Some(val),
                            "file" => file = Some(val),
                            "message" => message = Some(val),
                            _ => {}
                        }
                    }
                    Some(c) if c.is_ascii_digit() || *c == b'-' => {
                        while bytes.get(*i).is_some_and(|c| {
                            c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                        }) {
                            *i += 1;
                        }
                    }
                    Some(b't') | Some(b'f') | Some(b'n') => {
                        while bytes.get(*i).is_some_and(|c| c.is_ascii_alphabetic()) {
                            *i += 1;
                        }
                    }
                    _ => return Err(format!("unsupported value for key \"{key}\"")),
                }
            }
            _ => return Err("malformed violation object".to_string()),
        }
    }
    match (rule, file, message) {
        (Some(rule), Some(file), Some(message)) => Ok(BaselineEntry {
            rule,
            file,
            message,
        }),
        _ => Err("violation object missing rule/file/message".to_string()),
    }
}

/// Parses a JSON string literal starting at `"` into its unescaped value.
fn parse_string(bytes: &[u8], i: &mut usize) -> Result<String, String> {
    if bytes.get(*i) != Some(&b'"') {
        return Err("expected string".to_string());
    }
    *i += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*i) {
            None => return Err("unterminated string in baseline".to_string()),
            Some(b'"') => {
                *i += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf-8 in baseline".to_string());
            }
            Some(b'\\') => {
                *i += 1;
                match bytes.get(*i) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*i + 1..*i + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let s =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let code =
                            u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
                        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *i += 4;
                    }
                    _ => return Err("unknown escape in baseline string".to_string()),
                }
                *i += 1;
            }
            Some(&c) => {
                out.push(c);
                *i += 1;
            }
        }
    }
}

/// Advances past the body of a string whose opening `"` was consumed.
fn skip_string_body(bytes: &[u8], i: &mut usize) -> Result<(), String> {
    loop {
        match bytes.get(*i) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *i += 1;
                return Ok(());
            }
            Some(b'\\') => *i += 2,
            Some(_) => *i += 1,
        }
    }
}

fn skip_ws(bytes: &[u8], i: &mut usize) {
    while bytes.get(*i).is_some_and(|c| c.is_ascii_whitespace()) {
        *i += 1;
    }
}

/// Splits `violations` into (new, baselined): each baseline entry
/// suppresses at most one matching violation (multiset semantics).
pub fn split_by_baseline(
    violations: Vec<crate::rules::Diagnostic>,
    entries: &[BaselineEntry],
) -> (Vec<crate::rules::Diagnostic>, Vec<crate::rules::Diagnostic>) {
    let mut budget: HashMap<(String, String, String), usize> = HashMap::new();
    for e in entries {
        *budget
            .entry((e.rule.clone(), e.file.clone(), e.message.clone()))
            .or_insert(0) += 1;
    }
    let mut fresh = Vec::new();
    let mut baselined = Vec::new();
    for d in violations {
        let key = (d.rule.to_string(), d.file.clone(), d.message.clone());
        let hit = match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        };
        if hit {
            baselined.push(d);
        } else {
            fresh.push(d);
        }
    }
    (fresh, baselined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn diag(rule: &'static str, file: &str, line: u32, message: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message: message.to_string(),
        }
    }

    #[test]
    fn parses_render_json_shape() {
        let src = r#"{
  "violations": [
    { "rule": "no-panic", "file": "src/lib.rs", "line": 3, "message": "panic! in library code" },
    { "rule": "cast-truncation", "file": "src/a.rs", "line": 9, "message": "narrowing `as u32` on `n`" }
  ],
  "waivers": [],
  "summary": { "violations": 2, "waived": 0 }
}"#;
        let entries = parse_baseline(src).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "no-panic");
        assert_eq!(entries[1].file, "src/a.rs");
    }

    #[test]
    fn unescapes_message_strings() {
        let src =
            r#"{ "violations": [ { "rule": "r", "file": "f", "message": "say \"hi\" & more" } ] }"#;
        let entries = parse_baseline(src).expect("parses");
        assert_eq!(entries[0].message, "say \"hi\" & more");
    }

    #[test]
    fn missing_array_is_an_error() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("not json at all").is_err());
    }

    #[test]
    fn multiset_semantics_suppress_counted_matches_only() {
        let entries = vec![BaselineEntry {
            rule: "no-panic".to_string(),
            file: "src/lib.rs".to_string(),
            message: "m".to_string(),
        }];
        // Two identical findings, one baselined slot: one stays new.
        let v = vec![
            diag("no-panic", "src/lib.rs", 3, "m"),
            diag("no-panic", "src/lib.rs", 9, "m"),
        ];
        let (fresh, base) = split_by_baseline(v, &entries);
        assert_eq!(base.len(), 1);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn line_shifts_do_not_defeat_the_baseline() {
        let entries = vec![BaselineEntry {
            rule: "no-print".to_string(),
            file: "src/lib.rs".to_string(),
            message: "m".to_string(),
        }];
        let (fresh, base) =
            split_by_baseline(vec![diag("no-print", "src/lib.rs", 99, "m")], &entries);
        assert!(fresh.is_empty());
        assert_eq!(base.len(), 1);
    }
}
