//! A small, tolerant Rust tokenizer for lint purposes.
//!
//! The rules in this crate fire on *token* patterns (`. unwrap (`,
//! `panic !`, `process :: exit`), never on raw text, so occurrences inside
//! string literals, char literals and comments are invisible to them. The
//! tricky lexical corners that make naive regex linting wrong are all
//! handled here:
//!
//! - raw strings `r"…"` / `r#"…"#` (any number of hashes), where `\` is
//!   not an escape and an embedded `"` does not close the literal;
//! - byte and C strings `b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`;
//! - char literals, including `'"'`, `'\''` and `'\u{1F600}'`;
//! - lifetimes (`'a`, `'static`, `'_`) which share their sigil with char
//!   literals;
//! - nested block comments `/* /* */ */`;
//! - raw identifiers `r#type` (which share their prefix with raw strings).
//!
//! The tokenizer never fails: malformed input (an unterminated string at
//! EOF, say) is consumed to the end of the file. It does not need to be a
//! full lexer — numbers, operators and punctuation are kept only precisely
//! enough that the interesting identifiers land on the right lines.

/// The kinds of significant (non-comment) tokens the rules look at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers are stored without `r#`).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `#`, `[`, `{`, `:`, …).
    Punct(char),
    /// Any string literal (normal, raw, byte, C). Contents are discarded.
    Str,
    /// A char or byte-char literal. Contents are discarded.
    Char,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A numeric literal (integer or the digits around a float's dot).
    Num,
}

/// One significant token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// One comment with enough context to host waiver directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommentTok {
    /// Full comment text including the `//` or `/* */` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
    /// `true` when nothing but whitespace precedes the comment on its line.
    pub starts_line: bool,
}

/// The output of [`tokenize`]: significant tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Tokenized {
    /// Significant tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order (for waiver extraction).
    pub comments: Vec<CommentTok>,
}

/// Tokenizes `src`. Never fails; see the module docs for guarantees.
pub fn tokenize(src: &str) -> Tokenized {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    /// Whether a token or comment has already started on the current line.
    line_has_content: bool,
    out: Tokenized,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            line_has_content: false,
            out: Tokenized::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.line_has_content = false;
        }
        c.into()
    }

    fn push(&mut self, kind: TokKind, line: u32) {
        self.out.tokens.push(Tok { kind, line });
    }

    fn run(mut self) -> Tokenized {
        while let Some(c) = self.peek(0) {
            if c == '\n' || c.is_whitespace() {
                self.bump();
                continue;
            }
            let starts_line = !self.line_has_content;
            self.line_has_content = true;
            let line = self.line;
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(line, starts_line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, starts_line),
                '"' => self.string_literal(line),
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, starts_line: bool) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(CommentTok {
            text,
            line,
            end_line: line,
            starts_line,
        });
    }

    fn block_comment(&mut self, line: u32, starts_line: bool) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(CommentTok {
            text,
            line,
            end_line: self.line,
            starts_line,
        });
    }

    /// Consumes a normal (escaped) string literal whose opening `"` is at
    /// the cursor.
    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump(); // whatever is escaped, including `"` and `\`
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::Str, line);
    }

    /// Consumes a raw string literal: the cursor sits on `r` (the caller
    /// already stripped any `b`/`c` prefix) and `hashes` hash signs follow
    /// before the opening quote.
    fn raw_string_literal(&mut self, line: u32, hashes: usize) {
        self.bump(); // the `r`
        for _ in 0..hashes {
            self.bump();
        }
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, line);
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    /// The cursor sits on the opening `'`.
    fn char_or_lifetime(&mut self, line: u32) {
        if self.peek(1) == Some('\\') {
            // Escaped char literal: skip `'`, `\`, the escape head, then
            // scan to the closing quote (covers `'\''` and `'\u{…}'`).
            self.bump();
            self.bump();
            self.bump();
            while let Some(c) = self.bump() {
                if c == '\'' {
                    break;
                }
            }
            self.push(TokKind::Char, line);
        } else if self.peek(2) == Some('\'') && self.peek(1) != Some('\'') {
            // Plain one-char literal, including `'"'` and `'('`.
            self.bump();
            self.bump();
            self.bump();
            self.push(TokKind::Char, line);
        } else {
            // Lifetime: `'` followed by an identifier (or `'_`).
            self.bump();
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, line);
        }
    }

    fn number(&mut self, line: u32) {
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, line);
    }

    /// An identifier — unless it is the prefix of a string/char literal
    /// (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `b'…'`) or a raw
    /// identifier (`r#type`).
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let c = self.peek(0).unwrap_or(' ');

        // Raw string prefixes: optional b/c, then r, then hashes, then `"`.
        let raw_at = match c {
            'r' => Some(0),
            'b' | 'c' if self.peek(1) == Some('r') => Some(1),
            _ => None,
        };
        if let Some(off) = raw_at {
            let mut hashes = 0usize;
            while self.peek(off + 1 + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(off + 1 + hashes) == Some('"') {
                for _ in 0..off {
                    self.bump(); // the b/c prefix
                }
                self.raw_string_literal(line, hashes);
                return;
            }
            // `r#ident` (raw identifier): strip `r#` and lex the name.
            if off == 0 && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                self.bump();
                self.bump();
                self.ident(line);
                return;
            }
        }

        // Normal-string / byte-char prefixes.
        if (c == 'b' || c == 'c') && self.peek(1) == Some('"') {
            self.bump();
            self.string_literal(line);
            return;
        }
        if c == 'b' && self.peek(1) == Some('\'') {
            self.bump();
            self.char_or_lifetime(line);
            return;
        }

        self.ident(line);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident(name), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn plain_tokens_with_lines() {
        let t = tokenize("let x = 1;\nfoo.bar();\n");
        let lines: Vec<u32> = t.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines[0], 1);
        assert!(t.tokens.iter().any(|t| t.line == 2));
        assert_eq!(idents("let x = 1;"), vec!["let", "x"]);
    }

    #[test]
    fn string_contents_are_invisible() {
        assert_eq!(idents(r#"let s = "call unwrap() here";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_string_with_hashes_and_embedded_quote() {
        // r#"…"# — the embedded quote must not close the literal.
        let src = "let s = r#\"she said \"unwrap()\" loudly\"#; after";
        assert_eq!(idents(src), vec!["let", "s", "after"]);
    }

    #[test]
    fn raw_string_backslash_is_not_escape() {
        // In r"…\" the backslash does not escape the closing quote.
        let src = "let s = r\"tail\\\"; x";
        assert_eq!(idents(src), vec!["let", "s", "x"]);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(
            idents(r#"let s = b"unwrap()"; done"#),
            vec!["let", "s", "done"]
        );
        assert_eq!(
            idents("let s = br#\"panic!\"#; done"),
            vec!["let", "s", "done"]
        );
        assert_eq!(idents(r#"let s = c"exit"; done"#), vec!["let", "s", "done"]);
    }

    #[test]
    fn char_literal_with_double_quote() {
        // '"' must be a char literal, not the start of a string.
        let src = "let c = '\"'; let after = 1;";
        assert_eq!(idents(src), vec!["let", "c", "let", "after"]);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let c = '\''; trailing";
        assert_eq!(idents(src), vec!["let", "c", "trailing"]);
    }

    #[test]
    fn unicode_escape_char_literal() {
        let src = r"let c = '\u{1F600}'; trailing";
        assert_eq!(idents(src), vec!["let", "c", "trailing"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str, y: &'static u8, z: &'_ i8) {}";
        let t = tokenize(src);
        let lifetimes = t
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 4, "<'a> declaration plus 'a, 'static, '_ uses");
        assert!(idents(src).contains(&"str".to_string()));
    }

    #[test]
    fn lifetime_then_char_literal_mix() {
        // `'a` is a lifetime even when a real char literal follows.
        let src = "let x: &'a u8 = &1; let c = 'q';";
        let t = tokenize(src);
        assert_eq!(
            t.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
        assert_eq!(
            t.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            1
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "before /* outer /* inner unwrap() */ still outer */ after";
        assert_eq!(idents(src), vec!["before", "after"]);
        let t = tokenize(src);
        assert_eq!(t.comments.len(), 1);
        assert!(t.comments[0].text.contains("inner unwrap()"));
    }

    #[test]
    fn block_comment_line_spans() {
        let src = "a\n/* one\ntwo\nthree */\nb";
        let t = tokenize(src);
        assert_eq!(t.comments[0].line, 2);
        assert_eq!(t.comments[0].end_line, 4);
        assert_eq!(t.tokens[1].line, 5);
    }

    #[test]
    fn line_comment_capture_and_position() {
        let src = "code(); // trailing note\n// lint:allow(no-panic): reason\nmore();";
        let t = tokenize(src);
        assert_eq!(t.comments.len(), 2);
        assert!(!t.comments[0].starts_line);
        assert!(t.comments[1].starts_line);
        assert_eq!(t.comments[1].line, 2);
        assert!(t.comments[1].text.contains("lint:allow"));
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_raw_string() {
        assert_eq!(
            idents("let r#type = 1; r#match"),
            vec!["let", "type", "match"]
        );
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panicking() {
        let t = tokenize("let s = \"never closed...");
        assert!(t.tokens.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn hash_bang_attr_tokens() {
        let t = tokenize("#![forbid(unsafe_code)]");
        let kinds: Vec<&TokKind> = t.tokens.iter().map(|t| &t.kind).collect();
        assert_eq!(kinds[0], &TokKind::Punct('#'));
        assert_eq!(kinds[1], &TokKind::Punct('!'));
        assert!(matches!(kinds[3], TokKind::Ident(s) if s == "forbid"));
    }
}
