//! Rendering: human-readable `file:line` lines and a `--json` mode.
//!
//! JSON is emitted by hand — the lint crate, like the rest of the
//! workspace, has zero external dependencies.

use std::fmt::Write as _;

use crate::engine::LintReport;

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as plain text, one `file:line: [rule] message` per
/// violation, followed by the active-waiver summary.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.violations {
        let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
    }
    if !report.waived.is_empty() {
        let _ = writeln!(out, "active waivers ({}):", report.waived.len());
        for (d, w) in &report.waived {
            let _ = writeln!(
                out,
                "  {}:{}: [{}] waived: {}",
                d.file, d.line, d.rule, w.reason
            );
        }
    }
    for w in &report.unused_waivers {
        let _ = writeln!(
            out,
            "warning: {}:{}: unused waiver for {}",
            w.file,
            w.applies_to,
            w.rules.join(", ")
        );
    }
    let _ = writeln!(
        out,
        "hublint: {} violation(s), {} waived, {} baselined, {} file(s), {} manifest(s)",
        report.violations.len(),
        report.waived.len(),
        report.baselined.len(),
        report.files_scanned,
        report.manifests_scanned
    );
    out
}

/// Renders the report as a JSON document.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, d) in report.violations.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        );
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"waivers\": [");
    for (i, (d, w)) in report.waived.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&w.reason)
        );
    }
    if !report.waived.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"summary\": {{\"violations\": {}, \"waived\": {}, \"baselined\": {}, \"unused_waivers\": {}, \"files_scanned\": {}, \"manifests_scanned\": {}}}\n}}",
        report.violations.len(),
        report.waived.len(),
        report.baselined.len(),
        report.unused_waivers.len(),
        report.files_scanned,
        report.manifests_scanned
    );
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;
    use crate::waivers::Waiver;

    fn sample() -> LintReport {
        LintReport {
            violations: vec![Diagnostic {
                rule: "no-panic",
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "say \"no\"".into(),
            }],
            waived: vec![(
                Diagnostic {
                    rule: "no-print",
                    file: "crates/y/src/lib.rs".into(),
                    line: 3,
                    message: "m".into(),
                },
                Waiver {
                    rules: vec!["no-print".into()],
                    applies_to: 3,
                    reason: "harness output".into(),
                    file: "crates/y/src/lib.rs".into(),
                },
            )],
            baselined: Vec::new(),
            unused_waivers: Vec::new(),
            files_scanned: 2,
            manifests_scanned: 1,
        }
    }

    #[test]
    fn text_has_file_line_rule() {
        let t = render_text(&sample());
        assert!(t.contains("crates/x/src/lib.rs:7: [no-panic]"));
        assert!(t.contains("active waivers (1):"));
        assert!(t.contains("waived: harness output"));
        assert!(t.contains("1 violation(s), 1 waived"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let j = render_json(&sample());
        assert!(j.contains("\"rule\": \"no-panic\""));
        assert!(j.contains("say \\\"no\\\""));
        assert!(j.contains("\"summary\": {\"violations\": 1"));
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let j = render_json(&LintReport::default());
        assert!(j.contains("\"violations\": [],"));
        assert!(j.contains("\"violations\": 0"));
    }
}
