//! The `offline-deps` rule: a line-oriented `Cargo.toml` scanner.
//!
//! The workspace must build with no network access, so every dependency in
//! every manifest has to resolve inside the repository: either an inline
//! table with a `path` key, or `workspace = true` delegating to
//! `[workspace.dependencies]` (which is itself scanned and must be
//! path-only). Anything else — a bare version string, a `git` source, a
//! registry table — would reach for crates.io and is flagged.
//!
//! This is deliberately not a full TOML parser: manifests here are simple,
//! and a line-oriented scan that understands section headers, `key = value`
//! lines and dotted `key.workspace = true` shorthand covers all of them.
//! Comment lines (`#`) are ignored.

use crate::rules::Diagnostic;

/// Dependency-carrying sections: `[dependencies]`, `[dev-dependencies]`,
/// `[build-dependencies]`, `[workspace.dependencies]` and their
/// `[target.'…'.dependencies]` variants.
fn is_dependency_section(header: &str) -> bool {
    header == "workspace.dependencies"
        || header
            .rsplit('.')
            .next()
            .is_some_and(|last| last.ends_with("dependencies"))
}

/// A `[dependencies.foo]`-style per-dependency table; returns `foo`.
fn dependency_table_name(header: &str) -> Option<&str> {
    let (prefix, name) = header.rsplit_once('.')?;
    if is_dependency_section(prefix) {
        Some(name)
    } else {
        None
    }
}

fn value_is_offline(value: &str) -> bool {
    let v = value.trim();
    // Inline table with a local path, or deferral to workspace deps.
    (v.starts_with('{') && v.contains("path")) || v.contains("workspace = true")
}

/// Scans one manifest; `file` is the workspace-relative path for reporting.
pub fn scan_manifest(contents: &str, file: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut section = String::new();
    // State for a `[dependencies.foo]` table spanning multiple lines.
    let mut table: Option<(String, u32, bool)> = None;

    let flush_table = |table: &mut Option<(String, u32, bool)>, out: &mut Vec<Diagnostic>| {
        if let Some((name, line, offline)) = table.take() {
            if !offline {
                out.push(Diagnostic {
                    rule: "offline-deps",
                    file: file.to_string(),
                    line,
                    message: format!(
                        "dependency table '{name}' has no path key; only path dependencies build offline"
                    ),
                });
            }
        }
    };

    for (idx, raw) in contents.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            flush_table(&mut table, &mut out);
            section = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim()
                .to_string();
            if let Some(name) = dependency_table_name(&section) {
                table = Some((name.to_string(), line_no, false));
            }
            continue;
        }
        if let Some((_, _, offline)) = table.as_mut() {
            // Inside `[dependencies.foo]`: look for `path = …`.
            if line.starts_with("path") && line.contains('=') {
                *offline = true;
            }
            if line.starts_with("workspace") && line.contains("true") {
                *offline = true;
            }
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        // `hl-graph.workspace = true` shorthand.
        if key.ends_with(".workspace") && value.contains("true") {
            continue;
        }
        if !value_is_offline(value) {
            out.push(Diagnostic {
                rule: "offline-deps",
                file: file.to_string(),
                line: line_no,
                message: format!(
                    "dependency '{key}' is not a path dependency; the workspace must build offline"
                ),
            });
        }
    }
    flush_table(&mut table, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let m = "[dependencies]\nhl-graph = { path = \"../graph\" }\nhl-core.workspace = true\nhl-rs = { workspace = true }\n";
        assert!(scan_manifest(m, "Cargo.toml").is_empty());
    }

    #[test]
    fn version_string_dep_flagged_with_line() {
        let m = "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1.0\"\n";
        let d = scan_manifest(m, "Cargo.toml");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 5);
        assert!(d[0].message.contains("serde"));
    }

    #[test]
    fn git_dep_flagged() {
        let m = "[dev-dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(scan_manifest(m, "Cargo.toml").len(), 1);
    }

    #[test]
    fn workspace_dependencies_section_scanned() {
        let m =
            "[workspace.dependencies]\nhl-graph = { path = \"crates/graph\" }\nrand = \"0.8\"\n";
        let d = scan_manifest(m, "Cargo.toml");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("rand"));
    }

    #[test]
    fn dotted_dependency_table_with_path_passes() {
        let m = "[dependencies.hl-graph]\npath = \"../graph\"\n\n[package]\nname = \"x\"\n";
        assert!(scan_manifest(m, "Cargo.toml").is_empty());
    }

    #[test]
    fn dotted_dependency_table_with_version_flagged() {
        let m = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let d = scan_manifest(m, "Cargo.toml");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn non_dependency_sections_ignored() {
        let m = "[package]\nversion = \"1.2.3\"\n[features]\ndefault = []\n";
        assert!(scan_manifest(m, "Cargo.toml").is_empty());
    }
}
