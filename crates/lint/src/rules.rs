//! The rule engine: token-pattern rules over classified source files.
//!
//! Nine rules, mirroring the workspace's hard invariants. Five are
//! token-pattern rules implemented here:
//!
//! | rule             | scope            | fires on |
//! |------------------|------------------|----------|
//! | `no-panic`       | library code     | `.unwrap(`, `.expect(`, `panic!`, `todo!`, `unimplemented!` |
//! | `no-print`       | library code     | `println!`, `eprintln!`, `print!`, `eprint!`, `dbg!` |
//! | `exit-in-lib`    | library code     | `process::exit` (and `use std::process::exit`) |
//! | `no-unsafe-attr` | crate roots      | missing `#![forbid(unsafe_code)]` |
//! | `offline-deps`   | manifests        | any non-`path` dependency |
//!
//! and four are semantic dataflow rules implemented in [`crate::resolve`]
//! over the [`crate::ast`] item layer:
//!
//! | rule                     | scope        | fires on |
//! |--------------------------|--------------|----------|
//! | `cast-truncation`        | library code | narrowing `as` on decode-tainted values |
//! | `swallowed-result`       | library code | `let _ =` / `.ok();` on workspace `Result` calls |
//! | `lock-order`             | workspace    | cycles in the lock-acquisition graph |
//! | `untrusted-length-alloc` | library code | allocations sized by unchecked decoded lengths |
//!
//! "Library code" is everything under a crate's `src/` except `src/bin/`
//! and `src/main.rs`; files under `tests/`, `benches/` and `examples/` are
//! exempt, as are `#[cfg(test)]` modules (inline blocks and out-of-line
//! `#[cfg(test)] mod x;` files).

use crate::tokenizer::{Tok, TokKind, Tokenized};

/// How a file participates in the lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileContext {
    /// Library source: all line rules apply.
    Lib,
    /// Binary source (`src/bin/`, `src/main.rs`): panics/prints/exit allowed.
    Bin,
    /// Tests, benches, examples, `#[cfg(test)]` module files: exempt.
    Test,
}

/// One finding, before waiver resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule name (`no-panic`, …).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// All known line-level and file-level rule names (for waiver validation).
pub const RULE_NAMES: [&str; 9] = [
    "no-panic",
    "no-print",
    "exit-in-lib",
    "no-unsafe-attr",
    "offline-deps",
    "cast-truncation",
    "swallowed-result",
    "lock-order",
    "untrusted-length-alloc",
];

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
const PRINT_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

/// Output of scanning one source file.
#[derive(Debug, Default)]
pub struct SourceScan {
    /// Rule findings (not yet waiver-filtered).
    pub diagnostics: Vec<Diagnostic>,
    /// Module names declared as `#[cfg(test)] mod name;` — their backing
    /// files (`name.rs` / `name/mod.rs`) are test context.
    pub test_mod_files: Vec<String>,
}

/// Runs the line-level rules over one tokenized file.
pub fn scan_source(tokens: &Tokenized, ctx: FileContext, file: &str) -> SourceScan {
    let mut scan = SourceScan::default();
    let toks = &tokens.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        // `#[cfg(test)]` — skip the attributed item entirely, but still
        // record out-of-line test modules so their files are exempted.
        if let Some(skip_to) = cfg_test_item_end(toks, i, &mut scan.test_mod_files) {
            i = skip_to;
            continue;
        }
        if ctx == FileContext::Lib {
            check_at(toks, i, file, &mut scan.diagnostics);
        }
        i += 1;
    }
    scan
}

pub(crate) fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

pub(crate) fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn check_at(toks: &[Tok], i: usize, file: &str, out: &mut Vec<Diagnostic>) {
    let Some(name) = ident_at(toks, i) else {
        return;
    };
    let line = toks[i].line;

    // `.unwrap(` / `.expect(` — method-call position only, so idents like
    // `unwrap_or_else` or an `#[expect(…)]` attribute never match.
    if PANIC_METHODS.contains(&name)
        && i > 0
        && punct_at(toks, i - 1) == Some('.')
        && punct_at(toks, i + 1) == Some('(')
    {
        out.push(Diagnostic {
            rule: "no-panic",
            file: file.to_string(),
            line,
            message: format!(
                ".{name}() can panic; return a typed error instead (or waive with a reason)"
            ),
        });
        return;
    }

    let is_macro = punct_at(toks, i + 1) == Some('!');
    if is_macro && PANIC_MACROS.contains(&name) {
        out.push(Diagnostic {
            rule: "no-panic",
            file: file.to_string(),
            line,
            message: format!("{name}! panics; corruption must be a typed error, never a panic"),
        });
        return;
    }
    if is_macro && PRINT_MACROS.contains(&name) {
        out.push(Diagnostic {
            rule: "no-print",
            file: file.to_string(),
            line,
            message: format!("{name}! in library code; output belongs to the metrics/CLI layers"),
        });
        return;
    }

    // `process :: exit`
    if name == "process"
        && punct_at(toks, i + 1) == Some(':')
        && punct_at(toks, i + 2) == Some(':')
        && ident_at(toks, i + 3) == Some("exit")
    {
        out.push(Diagnostic {
            rule: "exit-in-lib",
            file: file.to_string(),
            line,
            message: "std::process::exit outside a bin main; return an error up the stack"
                .to_string(),
        });
    }
}

/// If `i` starts a `#[cfg(test)]`-attributed item, returns the token index
/// just past that item (skipping it). Also records `mod name;` targets.
pub(crate) fn cfg_test_item_end(
    toks: &[Tok],
    i: usize,
    test_mods: &mut Vec<String>,
) -> Option<usize> {
    // Match `# [ cfg ( … test … ) ]` — also covers `cfg(all(test, …))`.
    if punct_at(toks, i) != Some('#') || punct_at(toks, i + 1) != Some('[') {
        return None;
    }
    if ident_at(toks, i + 2) != Some("cfg") {
        return None;
    }
    let attr_end = matching_close(toks, i + 1, '[', ']')?;
    // `cfg(test)` / `cfg(all(test, …))` gate the item to test builds;
    // `cfg(not(test))` is live library code and must stay linted.
    let ident_in_attr = |name: &str| {
        toks[i + 2..attr_end]
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == name))
    };
    if !ident_in_attr("test") || ident_in_attr("not") {
        return None;
    }

    // Skip any further attributes on the same item.
    let mut j = attr_end + 1;
    while punct_at(toks, j) == Some('#') && punct_at(toks, j + 1) == Some('[') {
        j = matching_close(toks, j + 1, '[', ']')? + 1;
    }

    // Out-of-line `mod name;`: exempt the module's file instead.
    if ident_at(toks, j) == Some("mod") && punct_at(toks, j + 2) == Some(';') {
        if let Some(name) = ident_at(toks, j + 1) {
            test_mods.push(name.to_string());
        }
        return Some(j + 3);
    }

    // Otherwise skip to the end of the item's brace block (or its `;` for
    // block-less items), whichever comes first at nesting depth zero.
    let mut k = j;
    while k < toks.len() {
        match punct_at(toks, k) {
            Some(';') => return Some(k + 1),
            Some('{') => return Some(matching_close(toks, k, '{', '}')? + 1),
            _ => k += 1,
        }
    }
    Some(k)
}

/// Index of the `close` punct matching the `open` punct at `start`.
pub(crate) fn matching_close(toks: &[Tok], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = start;
    while k < toks.len() {
        match punct_at(toks, k) {
            Some(c) if c == open => depth += 1,
            Some(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Checks a crate root (`src/lib.rs`) for `#![forbid(unsafe_code)]`.
pub fn check_unsafe_attr(tokens: &Tokenized, file: &str) -> Option<Diagnostic> {
    let toks = &tokens.tokens;
    for i in 0..toks.len() {
        if punct_at(toks, i) == Some('#')
            && punct_at(toks, i + 1) == Some('!')
            && punct_at(toks, i + 2) == Some('[')
            && ident_at(toks, i + 3) == Some("forbid")
            && punct_at(toks, i + 4) == Some('(')
            && ident_at(toks, i + 5) == Some("unsafe_code")
        {
            return None;
        }
    }
    Some(Diagnostic {
        rule: "no-unsafe-attr",
        file: file.to_string(),
        line: 1,
        message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn lint(src: &str) -> Vec<Diagnostic> {
        scan_source(&tokenize(src), FileContext::Lib, "x.rs").diagnostics
    }

    #[test]
    fn flags_unwrap_and_expect_calls() {
        let d = lint("fn f() { a.unwrap(); b.expect(\"msg\"); }");
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == "no-panic"));
    }

    #[test]
    fn ignores_unwrap_or_family() {
        assert!(
            lint("fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }")
                .is_empty()
        );
    }

    #[test]
    fn ignores_expect_attribute_and_strings() {
        assert!(lint("#[expect(dead_code)] fn f() { let s = \".unwrap()\"; }").is_empty());
    }

    #[test]
    fn flags_panic_macros() {
        let d = lint("fn f() { panic!(\"boom\"); todo!(); unimplemented!() }");
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn panic_path_without_bang_is_fine() {
        assert!(lint("use std::panic; fn f() { panic::catch_unwind(|| 1).ok(); }").is_empty());
    }

    #[test]
    fn flags_prints_and_exit() {
        let d = lint("fn f() { println!(\"x\"); std::process::exit(1); }");
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].rule, "no-print");
        assert_eq!(d[1].rule, "exit-in-lib");
    }

    #[test]
    fn bin_and_test_contexts_are_exempt() {
        let src = "fn main() { x.unwrap(); println!(\"ok\"); }";
        let t = tokenize(src);
        assert!(scan_source(&t, FileContext::Bin, "b.rs")
            .diagnostics
            .is_empty());
        assert!(scan_source(&t, FileContext::Test, "t.rs")
            .diagnostics
            .is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}\nfn tail() { y.unwrap(); }";
        let d = lint(src);
        assert_eq!(d.len(), 1, "only the unwrap after the test module: {d:?}");
        assert_eq!(d[0].line, 7);
    }

    #[test]
    fn cfg_test_out_of_line_mod_is_recorded() {
        let t = tokenize("#[cfg(test)]\nmod proptests;\nfn f() { a.unwrap(); }");
        let s = scan_source(&t, FileContext::Lib, "x.rs");
        assert_eq!(s.test_mod_files, vec!["proptests"]);
        assert_eq!(s.diagnostics.len(), 1);
    }

    #[test]
    fn unsafe_attr_detection() {
        assert!(
            check_unsafe_attr(&tokenize("#![forbid(unsafe_code)]\npub fn f() {}"), "l.rs")
                .is_none()
        );
        let d = check_unsafe_attr(&tokenize("pub fn f() {}"), "l.rs");
        assert!(d.is_some_and(|d| d.rule == "no-unsafe-attr"));
        // A mention inside a comment or string must not satisfy the rule.
        let d = check_unsafe_attr(
            &tokenize("// #![forbid(unsafe_code)]\nlet s = \"#![forbid(unsafe_code)]\";"),
            "l.rs",
        );
        assert!(d.is_some());
    }
}
