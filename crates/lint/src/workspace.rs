//! Workspace discovery: members, crate roots, and file classification.
//!
//! Discovery follows the root `Cargo.toml` rather than walking the whole
//! tree, so stray fixture crates (for example under a member's `tests/`
//! directory) are never mistaken for workspace code. Only `members`
//! entries of the simple forms used here — literal paths and a trailing
//! `/*` glob — are supported.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::FileContext;

/// One discovered workspace crate.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from the manifest.
    pub name: String,
    /// Directory containing the crate's `Cargo.toml`, workspace-relative.
    pub dir: PathBuf,
    /// Whether the crate has a library target (`src/lib.rs`).
    pub has_lib: bool,
}

/// The discovered workspace: the root plus every member crate.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute path of the workspace root.
    pub root: PathBuf,
    /// Member crates (including the root package when the root manifest
    /// has a `[package]` section).
    pub crates: Vec<CrateInfo>,
}

/// Everything discovery can trip over.
#[derive(Debug)]
pub enum DiscoverError {
    /// Filesystem failure, with the path involved.
    Io(PathBuf, io::Error),
    /// The root manifest is missing or not a workspace.
    NotAWorkspace(PathBuf),
}

impl std::fmt::Display for DiscoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoverError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            DiscoverError::NotAWorkspace(p) => {
                write!(f, "{}: no [workspace] manifest found", p.display())
            }
        }
    }
}

impl std::error::Error for DiscoverError {}

fn read(path: &Path) -> Result<String, DiscoverError> {
    fs::read_to_string(path).map_err(|e| DiscoverError::Io(path.to_path_buf(), e))
}

/// Extracts `members = [ "…", … ]` entries from a manifest.
fn members_of(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_workspace = line == "[workspace]";
            in_members = false;
            continue;
        }
        if in_workspace && line.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                out.push(piece.to_string());
            }
            if line.contains(']') {
                in_members = false;
            }
        }
    }
    out
}

/// The `name = "…"` of a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Discovers the workspace rooted at `root` (which must hold the
/// `[workspace]` manifest).
pub fn discover(root: &Path) -> Result<Workspace, DiscoverError> {
    let root_manifest_path = root.join("Cargo.toml");
    let root_manifest = read(&root_manifest_path)?;
    if !root_manifest.contains("[workspace]") {
        return Err(DiscoverError::NotAWorkspace(root_manifest_path));
    }

    let mut dirs: Vec<PathBuf> = Vec::new();
    for member in members_of(&root_manifest) {
        if let Some(prefix) = member.strip_suffix("/*") {
            let base = root.join(prefix);
            let entries = fs::read_dir(&base).map_err(|e| DiscoverError::Io(base.clone(), e))?;
            let mut found: Vec<PathBuf> = Vec::new();
            for entry in entries {
                let entry = entry.map_err(|e| DiscoverError::Io(base.clone(), e))?;
                let path = entry.path();
                if path.join("Cargo.toml").is_file() {
                    found.push(PathBuf::from(prefix).join(entry.file_name()));
                }
            }
            found.sort();
            dirs.extend(found);
        } else {
            dirs.push(PathBuf::from(member));
        }
    }
    // The root package itself, when the root manifest is not virtual.
    if package_name(&root_manifest).is_some() {
        dirs.push(PathBuf::new());
    }

    let mut crates = Vec::new();
    for dir in dirs {
        let manifest_path = root.join(&dir).join("Cargo.toml");
        let manifest = read(&manifest_path)?;
        let Some(name) = package_name(&manifest) else {
            continue;
        };
        let has_lib = root.join(&dir).join("src/lib.rs").is_file();
        crates.push(CrateInfo { name, dir, has_lib });
    }
    Ok(Workspace {
        root: root.to_path_buf(),
        crates,
    })
}

/// Recursively lists `.rs` files under `dir` (relative to the crate dir),
/// skipping `target/` and hidden directories.
pub fn rust_files(crate_abs: &Path) -> Result<Vec<PathBuf>, DiscoverError> {
    let mut out = Vec::new();
    let mut stack = vec![crate_abs.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue, // e.g. the dir does not exist: nothing to lint
        };
        for entry in entries {
            let entry = entry.map_err(|e| DiscoverError::Io(dir.clone(), e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                // The root package's crates/ subtree belongs to the members.
                if name == "crates" && dir == *crate_abs {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Classifies a file by its path within its crate.
pub fn classify(rel_in_crate: &Path) -> FileContext {
    let mut components = rel_in_crate.components().map(|c| c.as_os_str());
    let first = components.next().map(|c| c.to_string_lossy().to_string());
    let second = components.next().map(|c| c.to_string_lossy().to_string());
    match first.as_deref() {
        Some("tests") | Some("benches") | Some("examples") => FileContext::Test,
        Some("src") => match second.as_deref() {
            Some("bin") => FileContext::Bin,
            Some("main.rs") => FileContext::Bin,
            _ => FileContext::Lib,
        },
        // build.rs and other stray top-level files: treat like bin code.
        _ => FileContext::Bin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parsing_single_line_and_multi_line() {
        let single = "[workspace]\nmembers = [\"crates/*\"]\n";
        assert_eq!(members_of(single), vec!["crates/*"]);
        let multi = "[workspace]\nmembers = [\n  \"a\",\n  \"b/c\",\n]\n";
        assert_eq!(members_of(multi), vec!["a", "b/c"]);
    }

    #[test]
    fn package_name_extraction() {
        let m = "[package]\nname = \"hl-lint\"\nversion = \"0.1\"\n";
        assert_eq!(package_name(m), Some("hl-lint".to_string()));
        assert_eq!(package_name("[workspace]\n"), None);
    }

    #[test]
    fn classification() {
        assert_eq!(classify(Path::new("src/lib.rs")), FileContext::Lib);
        assert_eq!(classify(Path::new("src/store.rs")), FileContext::Lib);
        assert_eq!(classify(Path::new("src/bin/hubserve.rs")), FileContext::Bin);
        assert_eq!(classify(Path::new("src/main.rs")), FileContext::Bin);
        assert_eq!(classify(Path::new("tests/cli.rs")), FileContext::Test);
        assert_eq!(classify(Path::new("benches/b.rs")), FileContext::Test);
        assert_eq!(classify(Path::new("examples/e.rs")), FileContext::Test);
        assert_eq!(
            classify(Path::new("tests/fixtures/bad/src/lib.rs")),
            FileContext::Test
        );
    }

    #[test]
    fn discovers_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = discover(&root).expect("discover workspace");
        let names: Vec<&str> = ws.crates.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"hl-graph"));
        assert!(names.contains(&"hl-server"));
        assert!(names.contains(&"hl-lint"));
        assert!(names.contains(&"hub-labeling"), "root package found");
    }
}
