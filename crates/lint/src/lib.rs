//! `hublint` — dependency-free static analysis for the hub-labeling
//! workspace.
//!
//! The workspace carries two invariants the compiler cannot enforce:
//!
//! 1. **Panic-freedom in library code.** Corruption and bad input must be
//!    *typed errors, never wrong answers and never panics* — the serving
//!    paths in particular may not `unwrap()` their way into an abort.
//! 2. **Offline builds.** Everything builds with no network access, so no
//!    manifest may name a crates.io or git dependency.
//!
//! `hublint` enforces both (plus `#![forbid(unsafe_code)]` coverage, a
//! print ban in libraries, and a `process::exit` ban outside bin mains)
//! with a token-level scan: a small Rust tokenizer (raw strings, char
//! literals, nested block comments, lifetimes) feeds a rule engine, so
//! rules never fire inside strings or comments. Justified exceptions are
//! declared per line with `// lint:allow(rule): reason` and surfaced in
//! the lint summary.
//!
//! On top of the token scan sits a semantic layer ([`ast`] + [`resolve`]):
//! a lightweight item parser extracts function signatures, struct fields,
//! and body token ranges; a workspace join over those facts powers four
//! dataflow rules — `cast-truncation`, `swallowed-result`, `lock-order`,
//! and `untrusted-length-alloc`. A committed findings baseline
//! ([`baseline`]) lets CI gate on *new* findings only (`--baseline` /
//! `--diff`).
//!
//! See `DESIGN.md` ("Static analysis") for the rule catalog and the
//! reasoning behind this layering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod baseline;
pub mod engine;
pub mod manifest;
pub mod output;
pub mod resolve;
pub mod rules;
pub mod tokenizer;
pub mod waivers;
pub mod workspace;

pub use engine::{lint_workspace, LintReport};
pub use rules::{Diagnostic, FileContext};
pub use workspace::DiscoverError;
