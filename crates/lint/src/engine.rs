//! Orchestration: discover the workspace, run every rule, apply waivers.

use std::fs;
use std::path::Path;

use crate::ast::parse_file;
use crate::manifest::scan_manifest;
use crate::resolve::{semantic_scan, SemFile};
use crate::rules::{check_unsafe_attr, scan_source, Diagnostic, FileContext};
use crate::tokenizer::tokenize;
use crate::waivers::{apply_waivers, extract_waivers, Waiver};
use crate::workspace::{classify, discover, rust_files, DiscoverError};

/// The complete result of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived waiver resolution, in path order.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics silenced by a waiver, with the waiver that did it.
    pub waived: Vec<(Diagnostic, Waiver)>,
    /// Violations suppressed by the `--baseline` file (known backlog).
    pub baselined: Vec<Diagnostic>,
    /// Well-formed waivers that matched no diagnostic (likely stale).
    pub unused_waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests scanned.
    pub manifests_scanned: usize,
}

impl LintReport {
    /// `true` when the workspace is clean (unused waivers do not count).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, DiscoverError> {
    let ws = discover(root)?;
    let mut report = LintReport::default();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();
    // Library files across every crate, kept for the workspace-level
    // semantic pass (cross-crate fact join).
    let mut sem_files: Vec<SemFile> = Vec::new();

    // Manifests: the workspace root plus every member.
    let root_manifest = root.join("Cargo.toml");
    let mut manifest_paths = vec![root_manifest];
    for c in &ws.crates {
        if !c.dir.as_os_str().is_empty() {
            manifest_paths.push(root.join(&c.dir).join("Cargo.toml"));
        }
    }
    manifest_paths.dedup();
    for path in manifest_paths {
        let contents = fs::read_to_string(&path).map_err(|e| DiscoverError::Io(path.clone(), e))?;
        diagnostics.extend(scan_manifest(&contents, &rel_path(root, &path)));
        report.manifests_scanned += 1;
    }

    for c in &ws.crates {
        let crate_abs = root.join(&c.dir);
        let files = rust_files(&crate_abs)?;

        // Pass 1: tokenize everything, collecting out-of-line
        // `#[cfg(test)] mod x;` declarations so pass 2 can exempt their
        // files. Tokenized sources are kept so each file is read once.
        let mut parsed = Vec::new();
        let mut test_mod_names: Vec<String> = Vec::new();
        for path in files {
            let src = fs::read_to_string(&path).map_err(|e| DiscoverError::Io(path.clone(), e))?;
            let rel_in_crate = path.strip_prefix(&crate_abs).unwrap_or(&path).to_path_buf();
            let ctx = classify(&rel_in_crate);
            let tokens = tokenize(&src);
            if ctx == FileContext::Lib {
                // Cheap pre-pass: only the skip logic, to learn mod names.
                let scan = scan_source(&tokens, FileContext::Test, "");
                test_mod_names.extend(scan.test_mod_files);
            }
            parsed.push((path, rel_in_crate, ctx, tokens));
        }

        // Pass 2: run the rules with final contexts.
        for (path, rel_in_crate, mut ctx, tokens) in parsed {
            let rel = rel_path(root, &path);
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_default();
            let is_test_mod_file = test_mod_names.iter().any(|m| {
                *m == stem
                    || (stem == "mod" && rel_in_crate.parent().is_some_and(|p| p.ends_with(m)))
            });
            if ctx == FileContext::Lib && is_test_mod_file {
                ctx = FileContext::Test;
            }

            let scan = scan_source(&tokens, ctx, &rel);
            diagnostics.extend(scan.diagnostics);

            if ctx == FileContext::Lib {
                let wscan = extract_waivers(&tokens.comments, &rel);
                diagnostics.extend(wscan.errors);
                waivers.extend(wscan.waivers);
            }

            if c.has_lib && rel_in_crate == Path::new("src/lib.rs") {
                if let Some(d) = check_unsafe_attr(&tokens, &rel) {
                    diagnostics.push(d);
                }
            }
            if ctx == FileContext::Lib {
                let ast = parse_file(&tokens);
                sem_files.push(SemFile {
                    rel,
                    toks: tokens.tokens,
                    ast,
                });
            }
            report.files_scanned += 1;
        }
    }

    diagnostics.extend(semantic_scan(&sem_files));

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let (violations, waived, used) = apply_waivers(diagnostics, &waivers);
    report.violations = violations;
    report.waived = waived;
    report.unused_waivers = waivers
        .into_iter()
        .zip(used)
        .filter_map(|(w, u)| if u { None } else { Some(w) })
        .collect();
    Ok(report)
}
