//! `hublint` — lint the workspace for panic-freedom and offline-build
//! invariants.
//!
//! ```text
//! hublint [--json] [--root <dir>] [--baseline <report.json> [--diff]]
//! ```
//!
//! Scans the workspace rooted at `--root` (default: the current
//! directory, walking upward to the nearest `[workspace]` manifest) and
//! reports violations as `file:line: [rule] message` lines, or as a JSON
//! document with `--json`.
//!
//! `--baseline <file>` subtracts the violations recorded in a previous
//! `hublint --json` report: known findings are counted as "baselined"
//! and only *new* findings affect the exit code. `--diff` is an explicit
//! alias documenting that intent in CI scripts; it requires `--baseline`.
//!
//! Exit codes match `hubserve`: 0 clean, 1 violations found (or a runtime
//! failure such as an unreadable file), 2 usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hl_lint::baseline::{parse_baseline, split_by_baseline};
use hl_lint::lint_workspace;
use hl_lint::output::{render_json, render_text};

const USAGE: &str = "usage: hublint [--json] [--root <dir>] [--baseline <report.json> [--diff]]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut diff = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--diff" => diff = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if diff && baseline.is_none() {
        eprintln!("hublint: --diff requires --baseline <report.json>");
        return usage();
    }

    let baseline_entries = match &baseline {
        None => Vec::new(),
        Some(path) => {
            let contents = match std::fs::read_to_string(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("hublint: cannot read baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match parse_baseline(&contents) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!("hublint: malformed baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("hublint: cannot determine current directory: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "hublint: no [workspace] Cargo.toml at or above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match lint_workspace(&root) {
        Ok(mut report) => {
            if !baseline_entries.is_empty() {
                let violations = std::mem::take(&mut report.violations);
                let (fresh, baselined) = split_by_baseline(violations, &baseline_entries);
                report.violations = fresh;
                report.baselined = baselined;
            }
            if json {
                print!("{}", render_json(&report));
            } else {
                print!("{}", render_text(&report));
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("hublint: {e}");
            ExitCode::FAILURE
        }
    }
}
