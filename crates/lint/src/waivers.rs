//! Per-line waivers: `// lint:allow(rule[, rule…]): reason`.
//!
//! A waiver on its own line covers the *next* line; a trailing waiver
//! covers its *own* line. The reason is mandatory — a waiver without one
//! is itself a violation (`waiver-syntax`), as is a waiver naming an
//! unknown rule. Every honored waiver is reported in the lint summary so
//! the full set of exceptions stays reviewable in one place.

use crate::rules::{Diagnostic, RULE_NAMES};
use crate::tokenizer::CommentTok;

/// One parsed waiver directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rules this waiver silences.
    pub rules: Vec<String>,
    /// The line the waiver applies to (not the line it is written on).
    pub applies_to: u32,
    /// Mandatory justification.
    pub reason: String,
    /// Workspace-relative file.
    pub file: String,
}

/// Waivers plus any malformed-directive diagnostics found in one file.
#[derive(Debug, Default)]
pub struct WaiverScan {
    /// Well-formed waivers.
    pub waivers: Vec<Waiver>,
    /// Malformed directives (missing reason, unknown rule).
    pub errors: Vec<Diagnostic>,
}

/// Extracts waiver directives from a file's comments.
pub fn extract_waivers(comments: &[CommentTok], file: &str) -> WaiverScan {
    let mut scan = WaiverScan::default();
    for c in comments {
        // Doc comments (`///`, `//!`, `/**`, `/*!`) are documentation —
        // a directive there describes the syntax, it does not waive code.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[at + "lint:allow(".len()..];
        let err = |message: String| Diagnostic {
            rule: "waiver-syntax",
            file: file.to_string(),
            line: c.line,
            message,
        };
        let Some(close) = rest.find(')') else {
            scan.errors
                .push(err("unclosed rule list in lint:allow(...)".to_string()));
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            scan.errors
                .push(err("lint:allow() names no rules".to_string()));
            continue;
        }
        if let Some(bad) = rules.iter().find(|r| !RULE_NAMES.contains(&r.as_str())) {
            scan.errors
                .push(err(format!("lint:allow names unknown rule '{bad}'")));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':').map(str::trim) else {
            scan.errors.push(err(
                "lint:allow(rule) must be followed by ': reason'".to_string()
            ));
            continue;
        };
        if reason.is_empty() {
            scan.errors.push(err(
                "lint:allow requires a non-empty reason after ':'".to_string()
            ));
            continue;
        }
        let applies_to = if c.starts_line {
            c.end_line + 1
        } else {
            c.line
        };
        scan.waivers.push(Waiver {
            rules,
            applies_to,
            reason: reason.to_string(),
            file: file.to_string(),
        });
    }
    scan
}

/// Splits diagnostics into surviving violations and `(diagnostic, waiver)`
/// pairs, and marks which waivers were used.
pub fn apply_waivers(
    diagnostics: Vec<Diagnostic>,
    waivers: &[Waiver],
) -> (Vec<Diagnostic>, Vec<(Diagnostic, Waiver)>, Vec<bool>) {
    let mut used = vec![false; waivers.len()];
    let mut surviving = Vec::new();
    let mut waived = Vec::new();
    for d in diagnostics {
        let hit = waivers.iter().position(|w| {
            w.file == d.file && w.applies_to == d.line && w.rules.iter().any(|r| r == d.rule)
        });
        match hit {
            Some(idx) => {
                used[idx] = true;
                waived.push((d, waivers[idx].clone()));
            }
            None => surviving.push(d),
        }
    }
    (surviving, waived, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn waivers_of(src: &str) -> WaiverScan {
        extract_waivers(&tokenize(src).comments, "f.rs")
    }

    #[test]
    fn trailing_waiver_applies_to_its_own_line() {
        let s = waivers_of("let x = f(); // lint:allow(no-panic): provably in range\n");
        assert_eq!(s.errors.len(), 0);
        assert_eq!(s.waivers.len(), 1);
        assert_eq!(s.waivers[0].applies_to, 1);
        assert_eq!(s.waivers[0].reason, "provably in range");
    }

    #[test]
    fn own_line_waiver_applies_to_next_line() {
        let s = waivers_of("// lint:allow(no-print): harness output\nprintln!(\"x\");\n");
        assert_eq!(s.waivers[0].applies_to, 2);
    }

    #[test]
    fn multi_rule_waiver() {
        let s = waivers_of("// lint:allow(no-panic, no-print): demo\nx();\n");
        assert_eq!(s.waivers[0].rules, vec!["no-panic", "no-print"]);
    }

    #[test]
    fn missing_reason_is_an_error() {
        assert_eq!(waivers_of("// lint:allow(no-panic):\nx();").errors.len(), 1);
        assert_eq!(waivers_of("// lint:allow(no-panic)\nx();").errors.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let s = waivers_of("// lint:allow(no-such-rule): because\nx();");
        assert_eq!(s.errors.len(), 1);
        assert!(s.errors[0].message.contains("no-such-rule"));
    }

    #[test]
    fn waiver_application_and_usage_tracking() {
        let diags = vec![
            Diagnostic {
                rule: "no-panic",
                file: "f.rs".into(),
                line: 2,
                message: "m".into(),
            },
            Diagnostic {
                rule: "no-panic",
                file: "f.rs".into(),
                line: 9,
                message: "m".into(),
            },
        ];
        let s = waivers_of("// lint:allow(no-panic): fine here\nx.unwrap();\n");
        let (surviving, waived, used) = apply_waivers(diags, &s.waivers);
        assert_eq!(surviving.len(), 1);
        assert_eq!(surviving[0].line, 9);
        assert_eq!(waived.len(), 1);
        assert_eq!(used, vec![true]);
    }
}
